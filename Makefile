PYTHON ?= python
PYTHONPATH := src

export PYTHONPATH

.PHONY: test test-slow fuzz-smoke fault-smoke fuzz fuzz-corpus corpus-replay corpus-minimize lint ruff verify-examples profile profile-json bench cache-smoke history report

# Tier-1 suite (what CI runs).
test:
	$(PYTHON) -m pytest -x -q

# Tier-1 plus the raised-budget hypothesis variants.
test-slow:
	$(PYTHON) -m pytest -x -q --runslow

# The fixed-seed differential fuzzing pass that ships inside tier-1,
# plus a deterministic smoke-tier coverage-guided run (ephemeral
# corpus, fixed master seed).
fuzz-smoke:
	$(PYTHON) -m pytest -q -m fuzz_smoke
	$(PYTHON) -m repro fuzz run --tier smoke --budget 40 --master-seed 1

# Fault-injection matrix: crashing/hanging/erroring workers against
# the repro.exec runtime (docs/resilience.md).
fault-smoke:
	$(PYTHON) -m pytest -q -m fault_smoke

# Long-run fuzzing: many seeds, bigger DFGs, parallel workers.
# Failures shrink automatically and land in artifacts/ as repro
# scripts.  Tune with e.g. `make fuzz SEEDS=1000 JOBS=8`.
SEEDS ?= 200
JOBS ?= 4
OPS ?= 14
fuzz:
	$(PYTHON) -m repro fuzz --seeds $(SEEDS) --jobs $(JOBS) --ops $(OPS)

# Coverage-guided corpus fuzzing: mutate recipes, keep whatever lights
# new coverage in $(CORPUS), shrink failures into artifacts/.  Tune
# with e.g. `make fuzz-corpus TIER=deep JOBS=8 MASTER_SEED=3`.
CORPUS ?= .repro-corpus
TIER ?= standard
MASTER_SEED ?= 1
fuzz-corpus:
	$(PYTHON) -m repro fuzz run --corpus $(CORPUS) --tier $(TIER) \
		--master-seed $(MASTER_SEED) --jobs $(JOBS)

# Re-run every corpus entry (the checked-in regression corpus by
# default): each must synthesize clean, fingerprints must match.
corpus-replay:
	$(PYTHON) -m repro fuzz replay --corpus tests/corpus --jobs $(JOBS)

# Drop local-corpus entries that no longer add coverage.
corpus-minimize:
	$(PYTHON) -m repro fuzz minimize --corpus $(CORPUS) --jobs $(JOBS)

# Whole-pipeline linter (docs/static-analysis.md).  Fails only on
# error-severity findings (exit 2): warnings are legitimate on honest
# sources (e.g. diffeq's folded-away temporaries).  Also asserts that
# both seeded demos still trip the linter, and replays the fuzz
# corpus through the interval analysis (every simulated value must
# stay inside its inferred range).
lint:
	$(PYTHON) -m repro lint examples/sqrt.hls
	$(PYTHON) -m repro lint --workloads; test $$? -lt 2
	! $(PYTHON) -m repro lint examples/lint_demo.hls > /dev/null
	! $(PYTHON) -m repro lint examples/range_demo.hls > /dev/null
	$(PYTHON) -m pytest -q tests/test_ranges.py -k soundness

# Python-source lint (config in pyproject.toml: syntax errors and
# pyflakes-class defects only).  Skips quietly when ruff is not on
# PATH — the container image does not ship it; CI installs it.
ruff:
	@if command -v ruff >/dev/null 2>&1; then \
		ruff check src tests benchmarks; \
	else \
		echo "ruff not installed; skipping"; \
	fi

# Per-stage timing of the paper's sqrt example (span tracing on).
profile:
	$(PYTHON) -m repro profile examples/sqrt.hls --fu 2

profile-json:
	$(PYTHON) -m repro profile examples/sqrt.hls --fu 2 --format json

# Full perf harness; writes BENCH_dse.json (incl. stage breakdowns).
bench:
	$(PYTHON) benchmarks/perf/run_bench.py

# Run-ledger views (docs/observability.md).  Tune with e.g.
# `make report LEDGER=.repro-ledger`.
LEDGER ?= .repro-ledger
history:
	$(PYTHON) -m repro history --ledger $(LEDGER)

# Exit codes: 0 clean, 1 warnings only, 2 regression.
report:
	$(PYTHON) -m repro report --ledger $(LEDGER)

# Cross-process smoke of the persistent design store: a cold sweep
# populates a throwaway store, a warm sweep must hit it and produce
# identical rows (docs/performance.md).
cache-smoke:
	$(PYTHON) benchmarks/perf/cache_smoke.py

# Stage contracts + full differential matrix on the example sources.
verify-examples:
	$(PYTHON) -c "from repro.workloads import SQRT_SOURCE; open('/tmp/sqrt.bsl','w').write(SQRT_SOURCE)"
	$(PYTHON) -m repro verify /tmp/sqrt.bsl --differential
