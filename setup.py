"""Setup shim for environments without the `wheel` package.

`pip install -e . --no-build-isolation` uses the legacy setup.py
develop path when this file exists, which works fully offline.
"""

from setuptools import setup

setup()
