"""A2 — allocator shoot-out: registers and multiplexing per family.

§3.2's techniques compared on the same schedules: clique partitioning,
left-edge, conflict-graph coloring and the three greedy policies.
Shape assertions: left-edge and coloring meet the max-live register
lower bound, clique matches the peak-usage FU bound, and
interconnect-aware greedy never loses to cost-blind greedy on mux
inputs.
"""

from conftest import print_table
from repro.allocation import (
    CliqueAllocator,
    ColoringRegisterAllocator,
    GreedyDatapathAllocator,
    LeftEdgeRegisterAllocator,
    RuleBasedAllocator,
    allocate_buses,
    compute_lifetimes,
    estimate_interconnect,
    minimum_registers,
)
from repro.scheduling import (
    ListScheduler,
    ResourceConstraints,
    SchedulingProblem,
    TypedFUModel,
)
from repro.workloads import (
    RandomDFGSpec,
    ewf_cdfg,
    fig6_cdfg,
    random_dfg,
)

UNIT = TypedFUModel(single_cycle=True)


def schedules():
    out = {}
    out["fig6"] = SchedulingProblem.from_block(
        fig6_cdfg().blocks()[0], UNIT, ResourceConstraints({"add": 2})
    )
    out["ewf"] = SchedulingProblem.from_block(
        ewf_cdfg().blocks()[0], UNIT,
        ResourceConstraints({"add": 2, "mul": 1}),
    )
    for seed in (5, 9):
        cdfg = random_dfg(RandomDFGSpec(ops=20, seed=seed))
        out[f"rand{seed}"] = SchedulingProblem.from_block(
            cdfg.blocks()[0], UNIT,
            ResourceConstraints({"add": 2, "mul": 2}),
        )
    return {
        name: ListScheduler(problem).schedule()
        for name, problem in out.items()
    }


FACTORIES = [
    ("clique", CliqueAllocator),
    ("left-edge", LeftEdgeRegisterAllocator),
    ("coloring", ColoringRegisterAllocator),
    ("greedy/local", lambda s: GreedyDatapathAllocator(s, "local")),
    ("greedy/global", lambda s: GreedyDatapathAllocator(s, "global")),
    ("greedy/blind", lambda s: GreedyDatapathAllocator(s, "blind")),
    ("rules (DAA)", RuleBasedAllocator),
]


def run_shootout():
    table = {}
    for name, schedule in schedules().items():
        schedule.validate()
        bound = minimum_registers(compute_lifetimes(schedule))
        row = {"min-regs": bound}
        for label, factory in FACTORIES:
            allocation = factory(schedule).allocate()
            allocation.validate()
            estimate = estimate_interconnect(allocation)
            row[label] = {
                "fus": sum(
                    allocation.fu_count(cls)
                    for cls in {"add", "mul", "fu"}
                ),
                "regs": allocation.register_count,
                "muxin": estimate.mux_inputs,
                "buses": allocate_buses(estimate).bus_count,
            }
        table[name] = row
    return table


def test_ablation_allocators(benchmark):
    table = benchmark(run_shootout)

    rows = []
    for name, row in table.items():
        rows.append(f"{name} (max-live register bound {row['min-regs']}):")
        for label, _ in FACTORIES:
            cell = row[label]
            rows.append(
                f"   {label:>13}: FUs={cell['fus']:2d} "
                f"regs={cell['regs']:2d} mux-inputs={cell['muxin']:2d} "
                f"buses={cell['buses']:2d}"
            )
    rows.append("[shape: left-edge/coloring hit the register bound; "
                "aware greedy <= blind greedy on mux inputs]")
    print_table("A2 — allocator shoot-out", rows)

    for name, row in table.items():
        bound = row["min-regs"]
        assert row["left-edge"]["regs"] == bound, name
        assert row["coloring"]["regs"] == bound, name
        assert row["clique"]["regs"] >= bound, name

    # Interconnect-aware greedy dominates cost-blind greedy in
    # aggregate (a greedy heuristic may lose a point on an adversarial
    # random graph; the paper's crafted example is strict).
    aware_total = sum(
        row["greedy/local"]["muxin"] for row in table.values()
    )
    blind_total = sum(
        row["greedy/blind"]["muxin"] for row in table.values()
    )
    assert aware_total < blind_total
    assert (
        table["fig6"]["greedy/local"]["muxin"]
        < table["fig6"]["greedy/blind"]["muxin"]
    )
