"""Shared helpers for the benchmark harness.

Every file in this directory regenerates one artifact of the paper's
evaluation (a figure or an in-text result) and prints the rows/series
the paper reports, while pytest-benchmark times the underlying
computation.  Run with::

    pytest benchmarks/ --benchmark-only -s
"""

from __future__ import annotations


def print_table(title: str, rows: list[str]) -> None:
    """Uniform table rendering for bench output."""
    print()
    print(f"== {title} ==")
    for row in rows:
        print(f"   {row}")
