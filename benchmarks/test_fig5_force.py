"""F5 — Figure 5: the force-directed distribution graph.

"Addition a1 must be scheduled in step 1, so it contributes 1 to that
step.  Similarly addition a2 adds 1 to control step 2.  Addition a3
could be scheduled in either step 2 or step 3, so it contributes 1/2 to
each. … a3 would first be scheduled into step 3, since that would have
the greatest effect in balancing the graph."  (Paper steps are
1-based; ours are 0-based.)
"""

from conftest import print_table
from repro.ir import OpKind
from repro.scheduling import (
    ForceDirectedScheduler,
    SchedulingProblem,
    TypedFUModel,
    compute_time_frames,
)
from repro.scheduling.force_directed import distribution_graph
from repro.workloads import fig5_cdfg

DEADLINE = 3


def run_fds():
    cdfg = fig5_cdfg()
    problem = SchedulingProblem.from_block(
        cdfg.blocks()[0], TypedFUModel(single_cycle=True),
        time_limit=DEADLINE,
    )
    frames = compute_time_frames(problem, DEADLINE)
    graph = distribution_graph(problem, frames, "add")
    schedule = ForceDirectedScheduler(problem, deadline=DEADLINE).schedule()
    schedule.validate()
    final_frames = compute_time_frames(problem, DEADLINE)
    del final_frames
    return problem, frames, graph, schedule


def test_fig5_force_directed(benchmark):
    problem, frames, graph, schedule = benchmark(run_fds)

    adds = [op.id for op in problem.ops if op.kind is OpKind.ADD]
    a1, a2, a3 = adds

    rows = [
        f"time frames: a1={list(frames.frame(a1))} "
        f"a2={list(frames.frame(a2))} a3={list(frames.frame(a3))}",
        f"add distribution graph: {graph}   [paper: [1, 1.5, 0.5]]",
        f"balancing placed a3 at step {schedule.start[a3]} "
        "[paper: step 3 (0-based 2)]",
        f"adders needed: {schedule.resource_usage()['add']}",
    ]
    print_table("Fig. 5 — distribution graph", rows)

    assert list(frames.frame(a1)) == [0]
    assert list(frames.frame(a2)) == [1]
    assert list(frames.frame(a3)) == [1, 2]
    assert graph == [1.0, 1.5, 0.5]
    assert schedule.start[a3] == 2
    # Balanced [1,1,1]: one adder suffices within the deadline.
    assert schedule.resource_usage()["add"] == 1
