"""F6 — Figure 6: greedy, interconnect-aware datapath allocation.

"Assignments are made so as to minimize interconnect … a2 was assigned
to adder2 since the increase in multiplexing cost required by that
allocation was zero.  a4 was assigned to adder1 because there was
already a connection from the register to that adder. … if we had
assigned … without checking for interconnection costs, then the final
multiplexing would have been more expensive."
"""

from conftest import print_table
from repro.allocation import (
    GreedyDatapathAllocator,
    estimate_interconnect,
)
from repro.scheduling import (
    ListScheduler,
    ResourceConstraints,
    SchedulingProblem,
    TypedFUModel,
)
from repro.workloads import fig6_cdfg


def run_allocations():
    cdfg = fig6_cdfg()
    problem = SchedulingProblem.from_block(
        cdfg.blocks()[0],
        TypedFUModel(single_cycle=True),
        ResourceConstraints({"add": 2}),
    )
    schedule = ListScheduler(problem).schedule()
    schedule.validate()
    results = {}
    for selection in ("local", "global", "blind"):
        allocation = GreedyDatapathAllocator(schedule,
                                             selection).allocate()
        allocation.validate()
        results[selection] = (
            allocation,
            estimate_interconnect(allocation),
        )
    return schedule, results


def test_fig6_greedy_allocation(benchmark):
    schedule, results = benchmark(run_allocations)

    rows = []
    for selection in ("local", "global", "blind"):
        allocation, estimate = results[selection]
        rows.append(
            f"{selection:>6}: adders={allocation.fu_count('add')}, "
            f"registers={allocation.register_count}, "
            f"mux inputs={estimate.mux_inputs}, "
            f"muxes={estimate.mux_count}"
        )
    rows.append(
        "[paper: cost-aware assignment strictly cheaper than cost-blind]"
    )
    print_table("Fig. 6 — greedy datapath allocation", rows)

    local, local_est = results["local"]
    global_, global_est = results["global"]
    blind, blind_est = results["blind"]

    # All policies share the same two adders (the figure's structure).
    for allocation, _ in results.values():
        assert allocation.fu_count("add") == 2

    # The paper's point: ignoring interconnect costs is more expensive.
    assert local_est.mux_inputs < blind_est.mux_inputs
    # Global (EMUCS-style) selection is at least as good as local.
    assert global_est.mux_inputs <= local_est.mux_inputs
