"""A5 — controller implementation costs: hardwired FSM vs microcode.

§2: "If hardwired control is chosen, a control step corresponds to a
state in the controlling finite state machine … If microcoded control
is chosen instead … the microprogram can be optimized using encoding
techniques for the microcontrol word."

We synthesize sqrt (optimized and unrolled variants) and compare:
state-register bits per encoding, estimated next-state logic terms,
and microcode ROM sizes in the horizontal vs dictionary-encoded
formats.
"""

from conftest import print_table
from repro.controller import (
    MicrocodeGenerator,
    encode_states,
    minimize_next_state_logic,
)
from repro.core import SynthesisOptions, synthesize
from repro.scheduling import ResourceConstraints
from repro.workloads import SQRT_SOURCE


def run_costs():
    designs = {
        "sqrt/2fu": synthesize(
            SQRT_SOURCE, constraints=ResourceConstraints({"fu": 2})
        ),
        "sqrt/1fu": synthesize(
            SQRT_SOURCE,
            options=SynthesisOptions(
                constraints=ResourceConstraints({"fu": 1}),
                optimize_ir=False,
            ),
        ),
        "sqrt/unrolled": synthesize(
            SQRT_SOURCE,
            options=SynthesisOptions(
                constraints=ResourceConstraints({"fu": 2}),
                unroll=True,
            ),
        ),
    }
    table = {}
    for name, design in designs.items():
        encodings = {
            style: encode_states(design.fsm, style)
            for style in ("binary", "gray", "onehot")
        }
        microcode = MicrocodeGenerator(design).generate()
        logic = {
            style: minimize_next_state_logic(design.fsm,
                                             encodings[style])
            for style in ("binary", "gray")
        }
        table[name] = (design, encodings, microcode, logic)
    return table


def test_controller_cost(benchmark):
    table = benchmark(run_costs)

    rows = []
    for name, (design, encodings, microcode, logic) in table.items():
        binary = encodings["binary"]
        onehot = encodings["onehot"]
        rows.append(
            f"{name}: {design.state_count} states | "
            f"FSM flip-flops: binary={binary.flipflops} "
            f"gray={encodings['gray'].flipflops} "
            f"one-hot={onehot.flipflops}"
        )
        rows.append(
            f"{'':>{len(name)}}  two-level next-state logic (QM): "
            f"binary {logic['binary'].naive_terms}->"
            f"{logic['binary'].terms} terms "
            f"({logic['binary'].literals} literals), "
            f"gray {logic['gray'].naive_terms}->"
            f"{logic['gray'].terms} terms "
            f"({logic['gray'].literals} literals)"
        )
        rows.append(
            f"{'':>{len(name)}}  microcode: word={microcode.horizontal_width}"
            f"+{microcode.sequencing_width} bits, ROM "
            f"horizontal={microcode.horizontal_rom_bits}b, "
            f"dictionary-encoded={microcode.encoded_rom_bits}b "
            f"({microcode.nanostore_words} nanowords)"
        )
    rows.append("[shape: one-hot trades flip-flops for decode; "
                "dictionary encoding shrinks the microstore when states "
                "repeat control patterns]")
    print_table("A5 — controller cost (FSM vs microcode)", rows)

    for name, (design, encodings, microcode, logic) in table.items():
        assert encodings["onehot"].flipflops == design.state_count
        assert encodings["binary"].flipflops <= encodings[
            "onehot"
        ].flipflops
        assert microcode.states == design.state_count
        assert microcode.nanostore_words <= microcode.states
        assert logic["binary"].terms <= logic["binary"].naive_terms
    # The serialized controller has more states than the parallel one.
    assert (
        table["sqrt/1fu"][0].state_count
        > table["sqrt/2fu"][0].state_count
    )
