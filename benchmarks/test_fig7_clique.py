"""F7 — Figure 7: clique partitioning of the compatibility graph.

"Figure 7 shows the graph of operations from the example shown in
Figure 6.  One clique is highlighted, showing that the three operations
can share the same adder, just as in the greedy example."
"""

from conftest import print_table
from repro.allocation import (
    CliqueAllocator,
    clique_partition,
    exact_minimum_clique_cover,
    fu_compatibility_graph,
)
from repro.scheduling import (
    ASAPScheduler,
    ResourceConstraints,
    SchedulingProblem,
    TypedFUModel,
)
from repro.workloads import fig6_cdfg


def run_clique():
    cdfg = fig6_cdfg()
    problem = SchedulingProblem.from_block(
        cdfg.blocks()[0],
        TypedFUModel(single_cycle=True),
        ResourceConstraints({"add": 2}),
    )
    # ASAP reproduces the figure's 3-step arrangement:
    # step 1: a1, a2; step 2: a3; step 3: a4.
    schedule = ASAPScheduler(problem).schedule()
    schedule.validate()
    graph = fu_compatibility_graph(schedule)
    cliques = clique_partition(graph)
    exact = exact_minimum_clique_cover(graph)
    allocation = CliqueAllocator(schedule).allocate()
    allocation.validate()
    return schedule, graph, cliques, exact, allocation


def test_fig7_clique_partitioning(benchmark):
    schedule, graph, cliques, exact, allocation = benchmark(run_clique)

    rows = [
        f"compatibility graph: {graph.number_of_nodes()} ops, "
        f"{graph.number_of_edges()} compatibility arcs",
        f"greedy cliques: {[sorted(c) for c in cliques]} "
        "[paper: one 3-op clique shares an adder]",
        f"adders allocated: {allocation.fu_count('add')}",
        f"optimal cover size: {len(exact)} (greedy: {len(cliques)})",
    ]
    print_table("Fig. 7 — clique formulation", rows)

    # 4 additions; a1/a2 share a step (no edge), everything else
    # compatible: 5 arcs.
    assert graph.number_of_nodes() == 4
    assert graph.number_of_edges() == 5

    # The highlighted 3-op clique exists and greedy finds it.
    sizes = sorted(len(clique) for clique in cliques)
    assert sizes == [1, 3]
    # Two adders, same as the greedy allocation of Fig. 6.
    assert allocation.fu_count("add") == 2
    # The greedy heuristic is optimal on this instance.
    assert len(cliques) == len(exact)
