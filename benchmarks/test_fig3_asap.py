"""F3 — Figure 3: ASAP scheduling blocks the critical path.

"operation 1 is scheduled ahead of operation 2, which is on the
critical path, so that operation 2 is scheduled later than is
necessary, forcing a longer than optimal schedule."
"""

from conftest import print_table
from repro.ir import OpKind
from repro.scheduling import (
    ASAPScheduler,
    ResourceConstraints,
    SchedulingProblem,
    TypedFUModel,
)
from repro.workloads import fig3_cdfg

CONSTRAINTS = ResourceConstraints({"mul": 1, "add": 1})


def run_asap():
    cdfg = fig3_cdfg()
    problem = SchedulingProblem.from_block(
        cdfg.blocks()[0], TypedFUModel(single_cycle=True), CONSTRAINTS
    )
    schedule = ASAPScheduler(problem).schedule()
    schedule.validate()
    return problem, schedule


def test_fig3_asap(benchmark):
    problem, schedule = benchmark(run_asap)

    muls = [op.id for op in problem.ops if op.kind is OpKind.MUL]
    non_critical, critical = muls

    rows = [
        f"ASAP schedule length: {schedule.length} steps "
        "[paper: suboptimal, 1 longer than list]",
        f"non-critical mul scheduled at step "
        f"{schedule.start[non_critical]}, critical mul at step "
        f"{schedule.start[critical]}",
    ]
    print_table("Fig. 3 — ASAP scheduling", rows)

    # The fixed selection order puts the non-critical mul first...
    assert schedule.start[non_critical] == 0
    # ...delaying the critical chain and losing a step: 4 instead of 3.
    assert schedule.start[critical] == 1
    assert schedule.length == 4
