"""A6 — if-conversion: trading controller complexity for datapath work.

§4 lists "trading off complexity between the control and the data
paths" among the open system-level problems.  This bench quantifies the
trade on a saturating clip kernel: the branching design needs more FSM
states and a branch per arm, while the if-converted design executes
both arms' ops unconditionally and selects with multiplexers —
fewer states and cycles, more datapath activity.
"""

from conftest import print_table
from repro.core import SynthesisOptions, synthesize_cdfg
from repro.estimation import estimate_area
from repro.lang import compile_source
from repro.scheduling import ResourceConstraints
from repro.sim import RTLSimulator, check_equivalence
from repro.transforms import IfConversion

CLIP = """
procedure clip(input v: int<16>; input lo: int<16>; input hi: int<16>;
               output o: int<16>);
begin
  o := v;
  if o < lo then o := lo;
  if o > hi then o := hi;
end
"""

VECTORS = [
    {"v": 50, "lo": 0, "hi": 100},
    {"v": -20, "lo": 0, "hi": 100},
    {"v": 500, "lo": 0, "hi": 100},
]


def build_pair():
    options = SynthesisOptions(
        constraints=ResourceConstraints({"fu": 2})
    )
    branching = synthesize_cdfg(compile_source(CLIP), options)

    converted_cdfg = compile_source(CLIP)
    assert IfConversion().run(converted_cdfg)
    converted = synthesize_cdfg(converted_cdfg, options)

    for design in (branching, converted):
        assert check_equivalence(design, vectors=VECTORS).equivalent

    def worst_cycles(design):
        worst = 0
        for vector in VECTORS:
            simulator = RTLSimulator(design)
            simulator.run(vector)
            worst = max(worst, simulator.cycles)
        return worst

    return (
        branching,
        converted,
        worst_cycles(branching),
        worst_cycles(converted),
    )


def test_ablation_if_conversion(benchmark):
    branching, converted, branch_cycles, mux_cycles = benchmark(
        build_pair
    )

    branch_area = estimate_area(branching)
    mux_area = estimate_area(converted)
    rows = [
        f"{'variant':>12} | states | worst cycles | controller area | "
        f"mux area",
        f"{'branching':>12} | {branching.state_count:6d} | "
        f"{branch_cycles:12d} | {branch_area.controller:15.0f} | "
        f"{branch_area.multiplexers:8.0f}",
        f"{'if-converted':>12} | {converted.state_count:6d} | "
        f"{mux_cycles:12d} | {mux_area.controller:15.0f} | "
        f"{mux_area.multiplexers:8.0f}",
        "[shape: conversion cuts states and worst-case cycles at the "
        "cost of datapath selection logic]",
    ]
    print_table("A6 — if-conversion trade-off (clip kernel)", rows)

    assert converted.state_count < branching.state_count
    assert mux_cycles <= branch_cycles
    # Both designs compute the same function (already equivalence
    # checked inside the build).
