"""F2 — Figure 2 and the §2 schedule arithmetic: 23 vs 10 control steps.

The paper's two design points for the sqrt example:

* trivial case, one universal FU (register moves cost a step, every
  operation serialized): **3 + 4x5 = 23** control steps, on the
  *unoptimized* graph;
* optimized graph (×0.5 → free shift, +1 → increment, exit test →
  ``I = 0`` on a two-bit counter) with **two** FUs: **2 + 4x2 = 10**.
"""

from conftest import print_table
from repro.ir import OpKind
from repro.scheduling import (
    ListScheduler,
    ResourceConstraints,
    SchedulingProblem,
    UniversalFUModel,
    total_steps,
)
from repro.transforms import PassManager, TripCountAnalysis, optimize
from repro.workloads import sqrt_cdfg

MODEL = UniversalFUModel(count_bare_moves=True)


def schedule_lengths(cdfg, fu_limit):
    lengths = {}
    for block in cdfg.blocks():
        problem = SchedulingProblem.from_block(
            block, MODEL, ResourceConstraints({"fu": fu_limit})
        )
        schedule = ListScheduler(problem).schedule()
        schedule.validate()
        lengths[block.id] = schedule.length
    return lengths


def run_both_points():
    serial = sqrt_cdfg()
    PassManager([TripCountAnalysis()]).run(serial)
    serial_lengths = schedule_lengths(serial, fu_limit=1)
    serial_total = total_steps(serial, serial_lengths)

    fast = sqrt_cdfg()
    optimize(fast)
    fast_lengths = schedule_lengths(fast, fu_limit=2)
    fast_total = total_steps(fast, fast_lengths)
    return serial, serial_lengths, serial_total, fast, fast_lengths, \
        fast_total


def test_fig2_schedule(benchmark):
    (serial, serial_lengths, serial_total,
     fast, fast_lengths, fast_total) = benchmark(run_both_points)

    serial_blocks = serial.blocks()
    fast_blocks = fast.blocks()
    rows = [
        "1 FU, unoptimized  : entry="
        f"{serial_lengths[serial_blocks[0].id]} steps, body="
        f"{serial_lengths[serial_blocks[1].id]} steps x 4 iterations "
        f"-> total {serial_total}   [paper: 3 + 4x5 = 23]",
        "2 FUs, optimized   : entry="
        f"{fast_lengths[fast_blocks[0].id]} steps, body="
        f"{fast_lengths[fast_blocks[1].id]} steps x 4 iterations "
        f"-> total {fast_total}   [paper: 2 + 4x2 = 10]",
    ]
    print_table("Fig. 2 — sqrt schedule lengths", rows)

    assert serial_lengths[serial_blocks[0].id] == 3
    assert serial_lengths[serial_blocks[1].id] == 5
    assert serial_total == 23

    assert fast_lengths[fast_blocks[0].id] == 2
    assert fast_lengths[fast_blocks[1].id] == 2
    assert fast_total == 10

    # The optimizations of Fig. 2's left half all happened:
    body = fast.loops()[0].test_block
    kinds = {op.kind for op in body.compute_ops()}
    assert OpKind.SHR in kinds       # x0.5 became a shift
    assert OpKind.INC in kinds       # +1 became an increment
    assert OpKind.EQ in kinds        # exit test became I = 0
    assert OpKind.GT not in kinds
    from repro.ir import IntType

    assert fast.variables["I"] == IntType(2, signed=False)
