"""T1 — end-to-end synthesis of the paper's sqrt example.

The complete §2 pipeline on the running example: compile, optimize,
schedule, allocate, bind, build the controller — then prove the RTL
equals the behavioral specification by co-simulation and check the
cycle counts against the paper's arithmetic (10 cycles at 2 FUs,
23 at 1 FU unoptimized).
"""

import math

from conftest import print_table
from repro.core import SynthesisOptions, synthesize
from repro.estimation import estimate_area, estimate_timing
from repro.scheduling import ResourceConstraints
from repro.sim import RTLSimulator, check_equivalence
from repro.workloads import SQRT_SOURCE


def run_flow():
    fast = synthesize(
        SQRT_SOURCE, constraints=ResourceConstraints({"fu": 2})
    )
    serial = synthesize(
        SQRT_SOURCE,
        options=SynthesisOptions(
            constraints=ResourceConstraints({"fu": 1}),
            optimize_ir=False,
        ),
    )
    report = check_equivalence(fast)
    fast_sim = RTLSimulator(fast)
    fast_sim.run({"X": 0.5})
    serial_sim = RTLSimulator(serial)
    serial_sim.run({"X": 0.5})
    return fast, serial, report, fast_sim.cycles, serial_sim.cycles


def test_sqrt_end_to_end(benchmark):
    fast, serial, report, fast_cycles, serial_cycles = benchmark(run_flow)

    area = estimate_area(fast)
    timing = estimate_timing(fast, fast_cycles)
    out = RTLSimulator(fast).run({"X": 0.25})

    rows = [
        f"RTL == behavior on {report.vectors} vectors "
        f"(corners + pseudorandom): {report.equivalent}",
        f"sqrt(0.25) from silicon model: {out['Y']:.6f} "
        f"(math.sqrt: {math.sqrt(0.25):.6f})",
        f"2-FU optimized design: {fast_cycles} cycles "
        "[paper: 2 + 4x2 = 10]",
        f"1-FU unoptimized design: {serial_cycles} cycles "
        "[paper: 3 + 4x5 = 23]",
        f"datapath: {fast.fu_count} FUs, {fast.register_count} "
        f"registers; controller: {fast.state_count} states",
        area.report(),
        timing.report(),
    ]
    print_table("T1 — sqrt end to end", rows)

    assert report.equivalent
    assert fast_cycles == 10
    assert serial_cycles == 23
    assert out["Y"] == math.sqrt(0.25)
    assert fast.state_count == 4
