"""F1 — Figure 1: the sqrt program's control-flow and data-flow graphs.

Reproduces the figure's content: the program compiles into a two-block
CDFG (initialization + loop body) whose data-flow graph encodes exactly
the essential orderings the paper points out — the multiplication must
precede the addition it feeds, while ``I + 1`` is independent of the
whole Y-chain and "may be done in parallel with those operations".
"""

import networkx as nx

from conftest import print_table
from repro.ir import OpKind, dependence_graph
from repro.workloads import sqrt_cdfg


def build():
    cdfg = sqrt_cdfg()
    cdfg.validate()
    return cdfg


def test_fig1_cdfg(benchmark):
    cdfg = benchmark(build)

    blocks = cdfg.blocks()
    assert len(blocks) == 2, "init block + loop body (Fig. 1 structure)"
    loop = cdfg.loops()[0]
    assert loop.test_in_body and loop.exit_on_true

    entry, body = blocks
    rows = []
    for block in blocks:
        graph = dependence_graph(block.ops)
        rows.append(
            f"{block.name}: {len(block.ops)} ops, "
            f"{graph.number_of_edges()} data-flow arcs"
        )

    # "the addition ... depends for its input on data produced by the
    # multiplication ... the multiplication must be done first."
    entry_graph = dependence_graph(entry.ops)
    mul = next(op for op in entry.ops if op.kind is OpKind.MUL)
    add = next(op for op in entry.ops if op.kind is OpKind.ADD)
    assert nx.has_path(entry_graph, mul.id, add.id)

    # "there is no dependence between the I + 1 operation ... and any of
    # the operations in the chain that calculates Y."
    body_graph = dependence_graph(body.ops)
    inc_add = next(
        op for op in body.ops
        if op.kind is OpKind.ADD
        and any(v.name == "I" for v in op.operands)
    )
    y_chain = [
        op for op in body.ops
        if op.kind in (OpKind.DIV, OpKind.MUL)
        or (op.kind is OpKind.ADD and op is not inc_add)
    ]
    for y_op in y_chain:
        assert not nx.has_path(body_graph, y_op.id, inc_add.id)
        assert not nx.has_path(body_graph, inc_add.id, y_op.id)
    rows.append(
        "I+1 is independent of the Y-chain "
        f"({len(y_chain)} ops) — may run in parallel  [paper: check]"
    )
    print_table("Fig. 1 — sqrt CDFG", rows)
