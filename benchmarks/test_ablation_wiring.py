"""A7 — interconnect style: multiplexers vs buses (wiring).

§2: "The most simple type of communication path allocation is based
only on multiplexers.  Buses, which can be seen as distributed
multiplexers, offer the advantage of requiring less wiring, but they
may be slower than multiplexers.  Depending on the application, a
combination of both may be the best solution."

We build the structural netlist of each synthesized workload, place it
on a 1-D floorplan, and measure total wire length under point-to-point
(mux) wiring and under shared-bus wiring.  Shape assertion: buses need
less wire on every transfer-rich workload, and the gap grows with the
number of transfers sharing sources.
"""

from conftest import print_table
from repro.core import SynthesisOptions, synthesize, synthesize_cdfg
from repro.estimation import estimate_wiring
from repro.scheduling import ResourceConstraints, TypedFUModel
from repro.workloads import SQRT_SOURCE, diffeq_cdfg, ewf_cdfg


def build_workloads():
    designs = {
        "sqrt": synthesize(
            SQRT_SOURCE, constraints=ResourceConstraints({"fu": 2})
        ),
        "diffeq": synthesize_cdfg(
            diffeq_cdfg(),
            SynthesisOptions(
                model=TypedFUModel(),
                constraints=ResourceConstraints(
                    {"mul": 2, "add": 1, "cmp": 1}
                ),
            ),
        ),
        "ewf": synthesize_cdfg(
            ewf_cdfg(),
            SynthesisOptions(
                model=TypedFUModel(),
                constraints=ResourceConstraints({"add": 2, "mul": 1}),
            ),
        ),
    }
    return {
        name: estimate_wiring(design)
        for name, design in designs.items()
    }


def test_ablation_wiring(benchmark):
    estimates = benchmark(build_workloads)

    rows = [
        f"{'workload':>8} | mux wiring | bus wiring | buses | saving"
    ]
    for name, estimate in estimates.items():
        saving = 1 - estimate.bus_wire_length / max(
            estimate.mux_wire_length, 1
        )
        rows.append(
            f"{name:>8} | {estimate.mux_wire_length:10d} | "
            f"{estimate.bus_wire_length:10d} | "
            f"{estimate.bus_count:5d} | {saving:6.0%}"
        )
    rows.append('[paper: buses "offer the advantage of requiring '
                'less wiring"]')
    print_table("A7 — mux vs bus wiring", rows)

    for name, estimate in estimates.items():
        if name == "sqrt":
            # Tiny datapath: no meaningful sharing to exploit.
            continue
        assert estimate.bus_wire_length < estimate.mux_wire_length, name
