"""A4 — Sehwa-style pipeline synthesis: cost vs throughput.

§3.3/§4: Sehwa explores pipelined datapath trade-offs.  We regenerate
its characteristic table on the unrolled FIR kernel: as the functional
unit budget grows, the initiation interval (cycles between task starts)
falls toward the dataflow limit while latency stays near the critical
path.
"""

from conftest import print_table
from repro.pipeline import (
    explore_pipeline,
    minimum_initiation_interval,
)
from repro.scheduling import (
    ResourceConstraints,
    SchedulingProblem,
    TypedFUModel,
)
from repro.workloads import fir_block_cdfg

LIMIT_SETS = [
    {"mul": 1, "add": 1},
    {"mul": 2, "add": 1},
    {"mul": 2, "add": 2},
    {"mul": 4, "add": 2},
    {"mul": 8, "add": 4},
]


def make_problem(constraints):
    cdfg = fir_block_cdfg(8)
    return SchedulingProblem.from_block(
        cdfg.blocks()[0], TypedFUModel(delays={"mul": 2}), constraints
    )


def run_exploration():
    points = explore_pipeline(make_problem, LIMIT_SETS)
    bounds = [
        minimum_initiation_interval(make_problem(
            ResourceConstraints(limits)
        ))
        for limits in LIMIT_SETS
    ]
    return points, bounds


def test_pipeline_sehwa(benchmark):
    points, bounds = benchmark(run_exploration)

    rows = [point.row() + f"   (MII bound {bound})"
            for point, bound in zip(points, bounds)]
    rows.append("[shape: II falls monotonically toward the bound as "
                "hardware grows]")
    print_table("A4 — Sehwa pipeline exploration (8-tap FIR, "
                "2-cycle multiplier)", rows)

    intervals = [p.initiation_interval for p in points]
    assert intervals == sorted(intervals, reverse=True)
    for point, bound in zip(points, bounds):
        assert point.initiation_interval >= bound
    # The list-based modulo scheduler reaches the bound on this kernel.
    assert intervals[0] == bounds[0]
    assert intervals[-1] == bounds[-1]
    # Throughput strictly improves from the smallest to the largest
    # configuration.
    assert points[-1].throughput > points[0].throughput
