"""Performance harness for the DSE fast path and the schedulers.

Times the *seed* implementation strategy (recompile per point, no
memoization, full-recompute force-directed loop) against the current
fast path (compile-once + shared scheduling structure + synthesis and
measurement caches; incremental force-directed frames) on the same
workloads, and writes the numbers to ``BENCH_dse.json`` at the repo
root.  Every comparison also checks that the two paths produce
identical results — a speedup that changes answers is a bug, not a
win.

Run it directly::

    PYTHONPATH=src python benchmarks/perf/run_bench.py            # full
    PYTHONPATH=src python benchmarks/perf/run_bench.py --budget smoke

The smoke budget (also exercised by ``tests/test_perf_smoke.py`` via
the ``perf-smoke`` marker) uses one repeat and trimmed workloads so it
stays test-suite fast; the full budget repeats each measurement and
keeps the minimum, which is robust against scheduler noise on busy
machines (noise only ever adds time).
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import sys
import time
from pathlib import Path

from repro import obs
from repro.core import clear_synthesis_cache, synthesize
from repro.core.engine import SynthesisOptions, synthesize_cdfg
from repro.estimation import estimate_area, estimate_timing
from repro.explore import explore_fu_range, search_for_latency
from repro.explore.dse import measure_cycles
from repro.lang import compile_source
from repro.scheduling import (
    ForceDirectedScheduler,
    ListScheduler,
    ResourceConstraints,
    SchedulingProblem,
    TypedFUModel,
    UniversalFUModel,
    set_problem_caching,
)
from repro.workloads import ewf_cdfg, fig5_cdfg
from repro.workloads.diffeq import DIFFEQ_SOURCE
from repro.workloads.random_dfg import RandomDFGSpec, random_dfg
from repro.workloads.sqrt import SQRT_SOURCE

REPO_ROOT = Path(__file__).resolve().parents[2]
OUTPUT = REPO_ROOT / "BENCH_dse.json"

BUDGETS = {
    "smoke": {"repeats": 1, "diffeq_limits": 4, "sqrt_limits": 3,
              "random_ops": 30, "search_max_units": 8},
    "full": {"repeats": 5, "diffeq_limits": 8, "sqrt_limits": 6,
             "random_ops": 60, "search_max_units": 16},
}


def _best_of(fn, repeats: int) -> float:
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def _point_rows(points) -> list[tuple]:
    return [
        (str(p.constraints), p.area, p.cycles, p.clock_ns) for p in points
    ]


# ----------------------------------------------------------------------
# Seed replicas: what the code did before the fast path existed.

def _seed_point(source: str, limit: int) -> tuple:
    cdfg = compile_source(source)
    options = SynthesisOptions(
        constraints=ResourceConstraints({"fu": limit})
    )
    design = synthesize_cdfg(cdfg, options)
    cycles = measure_cycles(design, None)
    timing = estimate_timing(design, cycles)
    return (str(options.constraints), estimate_area(design).total,
            cycles, timing.clock_ns)


def _seed_sweep(source: str, limits: list[int]) -> list[tuple]:
    return [_seed_point(source, limit) for limit in limits]


def _seed_search(source: str, target_cycles: int,
                 max_units: int) -> tuple | None:
    low, high = 1, max_units
    ceiling = _seed_point(source, high)
    if ceiling[2] > target_cycles:
        return None
    best = ceiling
    while low < high:
        middle = (low + high) // 2
        point = _seed_point(source, middle)
        if point[2] <= target_cycles:
            best, high = point, middle
        else:
            low = middle + 1
    return best


def _as_seed(fn):
    """Run ``fn`` with every post-seed cache disabled."""
    def wrapped():
        previous = set_problem_caching(False)
        try:
            return fn()
        finally:
            set_problem_caching(previous)
    return wrapped


def _fresh(fn):
    """Run ``fn`` against a cold synthesis cache (each repeat must do
    real work, not replay the previous repeat)."""
    def wrapped():
        clear_synthesis_cache()
        return fn()
    return wrapped


# ----------------------------------------------------------------------
# Benchmarks.

def _bench_sweep(name: str, source: str, limits: list[int],
                 repeats: int) -> dict:
    baseline_rows = _seed_sweep(source, limits)
    new_rows = _point_rows(
        _fresh(lambda: explore_fu_range(source, limits))().points
    )
    baseline_s = _best_of(
        _as_seed(lambda: _seed_sweep(source, limits)), repeats
    )
    new_s = _best_of(
        _fresh(lambda: explore_fu_range(source, limits)), repeats
    )
    return {
        "workload": name,
        "points": len(limits),
        "baseline_s": baseline_s,
        "new_s": new_s,
        "speedup": baseline_s / new_s,
        "equivalent": baseline_rows == new_rows,
    }


def _bench_search(source: str, target_cycles: int, max_units: int,
                  repeats: int) -> dict:
    baseline_row = _seed_search(source, target_cycles, max_units)
    point = _fresh(
        lambda: search_for_latency(source, target_cycles,
                                   max_units=max_units)
    )()
    new_row = (None if point is None else
               (str(point.constraints), point.area, point.cycles,
                point.clock_ns))
    baseline_s = _best_of(
        _as_seed(lambda: _seed_search(source, target_cycles, max_units)),
        repeats,
    )
    new_s = _best_of(
        _fresh(lambda: search_for_latency(source, target_cycles,
                                          max_units=max_units)),
        repeats,
    )
    return {
        "target_cycles": target_cycles,
        "max_units": max_units,
        "result": new_row and new_row[0],
        "baseline_s": baseline_s,
        "new_s": new_s,
        "speedup": baseline_s / new_s,
        "equivalent": baseline_row == new_row,
    }


def _bench_force_directed(name: str, problem_factory, repeats: int,
                          deadline: int | None = None) -> dict:
    def reference():
        previous = set_problem_caching(False)
        try:
            return ForceDirectedScheduler(
                problem_factory(), deadline=deadline, _reference=True
            ).schedule()
        finally:
            set_problem_caching(previous)

    def incremental():
        return ForceDirectedScheduler(
            problem_factory(), deadline=deadline
        ).schedule()

    identical = reference().start == incremental().start
    reference_s = _best_of(reference, repeats)
    incremental_s = _best_of(incremental, repeats)
    return {
        "workload": name,
        "reference_s": reference_s,
        "incremental_s": incremental_s,
        "speedup": reference_s / incremental_s,
        "identical_schedules": identical,
    }


def _bench_list(name: str, problem_factory, repeats: int) -> dict:
    def uncached():
        previous = set_problem_caching(False)
        try:
            return ListScheduler(problem_factory()).schedule()
        finally:
            set_problem_caching(previous)

    def cached():
        return ListScheduler(problem_factory()).schedule()

    identical = uncached().start == cached().start
    uncached_s = _best_of(uncached, repeats)
    cached_s = _best_of(cached, repeats)
    return {
        "workload": name,
        "baseline_s": uncached_s,
        "new_s": cached_s,
        "speedup": uncached_s / cached_s,
        "identical_schedules": identical,
    }


def _stage_breakdown(name: str, source: str, fu_limit: int = 2) -> dict:
    """Per-stage wall time of one traced synthesis run.

    Makes the perf trajectory attributable: instead of one opaque
    number per sweep, ``BENCH_dse.json`` records where each workload's
    synthesis time actually goes, stage by stage.
    """
    clear_synthesis_cache()
    obs.tracer().clear()
    with obs.tracing(True):
        synthesize(source, options=SynthesisOptions(
            constraints=ResourceConstraints({"fu": fu_limit})
        ))
    records = obs.tracer().records()
    total_us = sum(r.duration_us for r in records if r.parent is None)
    stages = {
        stage: {
            "calls": entry["calls"],
            "ms": entry["total_us"] / 1000.0,
            "share": (entry["total_us"] / total_us) if total_us else 0.0,
        }
        for stage, entry in obs.stage_totals(records).items()
    }
    obs.tracer().clear()
    return {
        "workload": name,
        "total_ms": total_us / 1000.0,
        "stages": stages,
    }


def _single_block_problem(cdfg, model, constraints=None,
                          time_limit=None) -> SchedulingProblem:
    blocks = [block for block in cdfg.blocks() if block.ops]
    return SchedulingProblem.from_block(blocks[0], model, constraints,
                                        time_limit=time_limit)


def run_benchmarks(budget: str = "full") -> dict:
    """Time seed vs fast paths; returns the report dict."""
    if budget not in BUDGETS:
        raise ValueError(f"unknown budget {budget!r}")
    knobs = BUDGETS[budget]
    repeats = knobs["repeats"]

    random_spec = RandomDFGSpec(ops=knobs["random_ops"], seed=42)
    typed = TypedFUModel()
    universal = UniversalFUModel()

    report = {
        "budget": budget,
        "repeats": repeats,
        "timer": "min over repeats of time.perf_counter",
        "python": platform.python_version(),
        "cpu_count": os.cpu_count(),
        "generated": time.strftime("%Y-%m-%dT%H:%M:%S%z"),
        "dse": {
            "diffeq_sweep": _bench_sweep(
                "diffeq", DIFFEQ_SOURCE,
                list(range(1, knobs["diffeq_limits"] + 1)), repeats,
            ),
            "sqrt_sweep": _bench_sweep(
                "sqrt", SQRT_SOURCE,
                list(range(1, knobs["sqrt_limits"] + 1)), repeats,
            ),
            "sqrt_search": _bench_search(
                SQRT_SOURCE, target_cycles=10,
                max_units=knobs["search_max_units"], repeats=repeats,
            ),
        },
        "stage_breakdown": {
            "sqrt": _stage_breakdown("sqrt", SQRT_SOURCE),
            "diffeq": _stage_breakdown("diffeq", DIFFEQ_SOURCE),
        },
        "schedulers": {
            "force_directed_fig5": _bench_force_directed(
                "fig5",
                lambda: _single_block_problem(
                    fig5_cdfg(), TypedFUModel(single_cycle=True),
                    time_limit=3,
                ),
                repeats, deadline=3,
            ),
            "force_directed_ewf": _bench_force_directed(
                "ewf",
                lambda: _single_block_problem(ewf_cdfg(), typed),
                repeats,
            ),
            "force_directed_random": _bench_force_directed(
                f"random_dfg(ops={random_spec.ops}, seed=42)",
                lambda: _single_block_problem(
                    random_dfg(random_spec), typed
                ),
                repeats,
            ),
            "list_random": _bench_list(
                f"random_dfg(ops={random_spec.ops}, seed=42)",
                lambda: _single_block_problem(
                    random_dfg(random_spec), universal,
                    ResourceConstraints({"fu": 4}),
                ),
                repeats,
            ),
        },
    }
    return report


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description="time the DSE fast path against the seed strategy"
    )
    parser.add_argument("--budget", choices=sorted(BUDGETS),
                        default="full")
    parser.add_argument("--output", default=str(OUTPUT),
                        help=f"report path (default {OUTPUT})")
    args = parser.parse_args(argv)

    report = run_benchmarks(args.budget)
    Path(args.output).write_text(json.dumps(report, indent=2) + "\n")

    for section in ("dse", "schedulers"):
        for name, entry in report[section].items():
            flag = entry.get("equivalent",
                             entry.get("identical_schedules"))
            print(f"{section}/{name}: {entry['speedup']:.2f}x "
                  f"(results identical: {flag})")
    for name, entry in report["stage_breakdown"].items():
        hottest = max(entry["stages"].items(),
                      key=lambda item: item[1]["ms"])
        print(f"stage_breakdown/{name}: {entry['total_ms']:.1f}ms "
              f"total, hottest stage {hottest[0]} "
              f"({hottest[1]['ms']:.1f}ms)")
    print(f"wrote {args.output}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
