"""Performance harness for the DSE fast path and the schedulers.

Times the *seed* implementation strategy (recompile per point, no
memoization, full-recompute force-directed loop) against the current
fast path (compile-once + shared scheduling structure + synthesis and
measurement caches; incremental force-directed frames) on the same
workloads, and writes the numbers to ``BENCH_dse.json`` at the repo
root.  Every comparison also checks that the two paths produce
identical results — a speedup that changes answers is a bug, not a
win.

Run it directly::

    PYTHONPATH=src python benchmarks/perf/run_bench.py            # full
    PYTHONPATH=src python benchmarks/perf/run_bench.py --budget smoke

The smoke budget (also exercised by ``tests/test_perf_smoke.py`` via
the ``perf-smoke`` marker) uses one repeat and trimmed workloads so it
stays test-suite fast; the full budget repeats each measurement and
keeps the minimum, which is robust against scheduler noise on busy
machines (noise only ever adds time).
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import subprocess
import sys
import tempfile
import time
from pathlib import Path

from repro import obs
from repro.obs import ledger as run_ledger
from repro.core import clear_synthesis_cache, resynthesize, synthesize
from repro.core.engine import SynthesisOptions, synthesize_cdfg
from repro.estimation import estimate_area, estimate_timing
from repro.explore import explore_fu_range, search_for_latency
from repro.explore.dse import measure_cycles
from repro.lang import compile_source
from repro.scheduling import (
    ForceDirectedScheduler,
    ListScheduler,
    ResourceConstraints,
    SchedulingProblem,
    TypedFUModel,
    UniversalFUModel,
    set_problem_caching,
)
from repro.ir.types import set_type_interning
from repro.transforms import optimize
from repro.workloads import ewf_cdfg, fig5_cdfg, fir_source
from repro.workloads.diffeq import DIFFEQ_SOURCE
from repro.workloads.random_dfg import RandomDFGSpec, random_dfg
from repro.workloads.sqrt import SQRT_SOURCE

REPO_ROOT = Path(__file__).resolve().parents[2]
OUTPUT = REPO_ROOT / "BENCH_dse.json"
STORE_WORKER = Path(__file__).resolve().with_name("_store_worker.py")

BUDGETS = {
    "smoke": {"repeats": 1, "diffeq_limits": 4, "sqrt_limits": 3,
              "random_ops": 30, "search_max_units": 8,
              "store_limits": 4, "fir_taps": 16,
              "directive_limits": 3},
    "full": {"repeats": 5, "diffeq_limits": 8, "sqrt_limits": 6,
             "random_ops": 60, "search_max_units": 16,
             "store_limits": 8, "fir_taps": 32,
             "directive_limits": 4},
}


def _best_of(fn, repeats: int) -> float:
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def _point_rows(points) -> list[tuple]:
    return [
        (str(p.constraints), p.area, p.cycles, p.clock_ns) for p in points
    ]


# ----------------------------------------------------------------------
# Seed replicas: what the code did before the fast path existed.

def _seed_point(source: str, limit: int) -> tuple:
    cdfg = compile_source(source)
    options = SynthesisOptions(
        constraints=ResourceConstraints({"fu": limit})
    )
    design = synthesize_cdfg(cdfg, options)
    cycles = measure_cycles(design, None)
    timing = estimate_timing(design, cycles)
    return (str(options.constraints), estimate_area(design).total,
            cycles, timing.clock_ns)


def _seed_sweep(source: str, limits: list[int]) -> list[tuple]:
    return [_seed_point(source, limit) for limit in limits]


def _seed_search(source: str, target_cycles: int,
                 max_units: int) -> tuple | None:
    low, high = 1, max_units
    ceiling = _seed_point(source, high)
    if ceiling[2] > target_cycles:
        return None
    best = ceiling
    while low < high:
        middle = (low + high) // 2
        point = _seed_point(source, middle)
        if point[2] <= target_cycles:
            best, high = point, middle
        else:
            low = middle + 1
    return best


def _as_seed(fn):
    """Run ``fn`` with every post-seed cache disabled."""
    def wrapped():
        previous = set_problem_caching(False)
        try:
            return fn()
        finally:
            set_problem_caching(previous)
    return wrapped


def _fresh(fn):
    """Run ``fn`` against a cold synthesis cache (each repeat must do
    real work, not replay the previous repeat)."""
    def wrapped():
        clear_synthesis_cache()
        return fn()
    return wrapped


# ----------------------------------------------------------------------
# Benchmarks.

def _bench_sweep(name: str, source: str, limits: list[int],
                 repeats: int) -> dict:
    baseline_rows = _seed_sweep(source, limits)
    new_rows = _point_rows(
        _fresh(lambda: explore_fu_range(source, limits))().points
    )
    baseline_s = _best_of(
        _as_seed(lambda: _seed_sweep(source, limits)), repeats
    )
    new_s = _best_of(
        _fresh(lambda: explore_fu_range(source, limits)), repeats
    )
    return {
        "workload": name,
        "points": len(limits),
        "baseline_s": baseline_s,
        "new_s": new_s,
        "speedup": baseline_s / new_s,
        "equivalent": baseline_rows == new_rows,
    }


def _bench_search(source: str, target_cycles: int, max_units: int,
                  repeats: int) -> dict:
    baseline_row = _seed_search(source, target_cycles, max_units)
    point = _fresh(
        lambda: search_for_latency(source, target_cycles,
                                   max_units=max_units)
    )()
    new_row = (None if point is None else
               (str(point.constraints), point.area, point.cycles,
                point.clock_ns))
    baseline_s = _best_of(
        _as_seed(lambda: _seed_search(source, target_cycles, max_units)),
        repeats,
    )
    new_s = _best_of(
        _fresh(lambda: search_for_latency(source, target_cycles,
                                          max_units=max_units)),
        repeats,
    )
    return {
        "target_cycles": target_cycles,
        "max_units": max_units,
        "result": new_row and new_row[0],
        "baseline_s": baseline_s,
        "new_s": new_s,
        "speedup": baseline_s / new_s,
        "equivalent": baseline_row == new_row,
    }


def _bench_force_directed(name: str, problem_factory, repeats: int,
                          deadline: int | None = None) -> dict:
    def reference():
        previous = set_problem_caching(False)
        try:
            return ForceDirectedScheduler(
                problem_factory(), deadline=deadline, _reference=True
            ).schedule()
        finally:
            set_problem_caching(previous)

    def incremental():
        return ForceDirectedScheduler(
            problem_factory(), deadline=deadline
        ).schedule()

    identical = reference().start == incremental().start
    reference_s = _best_of(reference, repeats)
    incremental_s = _best_of(incremental, repeats)
    return {
        "workload": name,
        "reference_s": reference_s,
        "incremental_s": incremental_s,
        "speedup": reference_s / incremental_s,
        "identical_schedules": identical,
    }


def _bench_list(name: str, problem_factory, repeats: int) -> dict:
    def uncached():
        previous = set_problem_caching(False)
        try:
            return ListScheduler(problem_factory()).schedule()
        finally:
            set_problem_caching(previous)

    def cached():
        return ListScheduler(problem_factory()).schedule()

    identical = uncached().start == cached().start
    uncached_s = _best_of(uncached, repeats)
    cached_s = _best_of(cached, repeats)
    return {
        "workload": name,
        "baseline_s": uncached_s,
        "new_s": cached_s,
        "speedup": uncached_s / cached_s,
        "identical_schedules": identical,
    }


def _stage_breakdown(name: str, source: str, fu_limit: int = 2) -> dict:
    """Per-stage wall time of one traced synthesis run.

    Makes the perf trajectory attributable: instead of one opaque
    number per sweep, ``BENCH_dse.json`` records where each workload's
    synthesis time actually goes, stage by stage.
    """
    clear_synthesis_cache()
    obs.tracer().clear()
    with obs.tracing(True):
        synthesize(source, options=SynthesisOptions(
            constraints=ResourceConstraints({"fu": fu_limit})
        ))
    records = obs.tracer().records()
    total_us = sum(r.duration_us for r in records if r.parent is None)
    stages = {
        stage: {
            "calls": entry["calls"],
            "ms": entry["total_us"] / 1000.0,
            "share": (entry["total_us"] / total_us) if total_us else 0.0,
        }
        for stage, entry in obs.stage_totals(records).items()
    }
    obs.tracer().clear()
    return {
        "workload": name,
        "total_ms": total_us / 1000.0,
        "stages": stages,
    }


# ----------------------------------------------------------------------
# Persistent-store and incremental-resynthesis benchmarks.

def _store_child(store_dir: str, limits: int) -> dict:
    """One ``_store_worker`` sweep in a child process; its JSON report."""
    env = dict(os.environ)
    env["REPRO_STORE_DIR"] = store_dir
    env.pop("REPRO_STORE", None)
    env["PYTHONPATH"] = os.pathsep.join(
        p for p in (str(REPO_ROOT / "src"), env.get("PYTHONPATH")) if p
    )
    proc = subprocess.run(
        [sys.executable, str(STORE_WORKER),
         "--limits", ",".join(str(x) for x in range(1, limits + 1))],
        env=env, capture_output=True, text=True, check=True,
    )
    return json.loads(proc.stdout.strip().splitlines()[-1])


def _bench_store_cross_process(limits: int, repeats: int) -> dict:
    """Cold vs warm sweep across process boundaries.

    Each cold run gets a fresh store directory; warm runs replay
    against the last cold directory.  Elapsed times come from inside
    the children, so interpreter start-up (identical on both sides)
    cannot mask the difference.
    """
    with tempfile.TemporaryDirectory(prefix="repro-bench-store-") as root:
        colds = []
        for index in range(repeats):
            colds.append(
                _store_child(os.path.join(root, f"cold{index}"), limits)
            )
        warm_dir = os.path.join(root, f"cold{repeats - 1}")
        warms = [_store_child(warm_dir, limits) for _ in range(repeats)]
    cold = min(colds, key=lambda r: r["elapsed_s"])
    warm = min(warms, key=lambda r: r["elapsed_s"])
    rows = colds[0]["rows"]
    return {
        "workload": "diffeq",
        "points": len(rows),
        "cold_s": cold["elapsed_s"],
        "warm_s": warm["elapsed_s"],
        "speedup": cold["elapsed_s"] / warm["elapsed_s"],
        "cold_store_misses": cold["store_misses"],
        "warm_store_hits": warm["store_hits"],
        "warm_store_misses": warm["store_misses"],
        "equivalent": all(
            r["rows"] == rows for r in colds + warms
        ),
    }


#: Multi-block workload for the edit-resynthesize benchmark: a heavy
#: straight-line preamble, a data-dependent loop, and a small epilogue
#: holding the constant ``{c}`` the "edit" changes — so an incremental
#: run replays every block except the epilogue.
_RESYNTH_SOURCE = """
procedure pipe(input x: fixed<32,16>; input a: fixed<32,16>;
               output y: fixed<32,16>);
var t1, t2, t3, t4, t5, t6, t7, t8, t9, t10, t11, t12, t13, t14,
    p: fixed<32,16>;
begin
  t1 := x * x + 3.0 * x;
  t2 := t1 * x - 2.0 * t1;
  t3 := t2 * t1 + x * t2;
  t4 := t3 * t2 - t1 * t3;
  t5 := t4 * t3 + t2 * t4;
  t6 := t5 * t4 - t3 * t5;
  t7 := t6 * t5 + t4 * t6;
  t8 := t7 * t6 - t5 * t7;
  t9 := t8 * t7 + t6 * t8;
  t10 := t9 * t8 - t7 * t9;
  t11 := t10 * t9 + t8 * t10;
  t12 := t11 * t10 - t9 * t11;
  t13 := t12 * t11 + t10 * t12;
  t14 := t13 * t12 - t11 * t13;
  p := t14 + t13 * t14;
  while p < a do
  begin
    p := p + t1 * 0.125;
  end;
  y := p + {c};
end
"""


def _bench_edit_resynthesis(repeats: int) -> dict:
    """Full resynthesis vs incremental resynthesis of a one-block edit.

    ``equivalent`` is the differential-verify escape hatch: the
    incremental design's stage signatures must match a from-scratch
    synthesis of the edited source, stage by stage.
    """
    options = SynthesisOptions(
        scheduler="force-directed",
        constraints=ResourceConstraints({"fu": 2}),
    )
    base_source = _RESYNTH_SOURCE.format(c="0.5")
    edit_source = _RESYNTH_SOURCE.format(c="0.25")
    baseline = synthesize(base_source, options=options)
    verified = resynthesize(baseline, edit_source, options=options,
                            verify=True)
    full_s = _best_of(
        lambda: synthesize(edit_source, options=options), repeats
    )
    incremental_s = _best_of(
        lambda: resynthesize(baseline, edit_source, options=options),
        repeats,
    )
    return {
        "workload": "pipe (constant edit in epilogue block)",
        "full_s": full_s,
        "incremental_s": incremental_s,
        "speedup": full_s / incremental_s,
        "dirty_blocks": len(verified.delta.dirty),
        "replayed_blocks": len(verified.replayed_blocks),
        "rescheduled_blocks": len(verified.scheduled_blocks),
        "equivalent": bool(verified.verified),
    }


def _bench_interning(taps: int, repeats: int) -> dict:
    """Memory and time of compiling with type interning on vs off.

    Memory is the retained footprint of the *type objects* the built
    CDFG holds — exactly what interning collapses — counted
    deterministically over distinct instances (``tracemalloc`` around
    the whole build drowns the signal in allocator noise).
    ``equivalent`` checks both builds describe the same IR.
    """
    source = fir_source(taps)

    def build():
        cdfg = compile_source(source)
        optimize(cdfg, unroll=True)
        return cdfg

    def shape(cdfg) -> list[tuple]:
        return [
            (block.name, [(op.kind.value, str(op.result.type)
                           if op.result else None) for op in block.ops])
            for block in cdfg.blocks()
        ]

    def type_footprint(cdfg) -> tuple[int, int]:
        """(bytes, instances) of the distinct type objects retained by
        every value in the CDFG."""
        seen: dict[int, int] = {}
        for block in cdfg.blocks():
            for op in block.ops:
                values = list(op.operands)
                if op.result is not None:
                    values.append(op.result)
                for value in values:
                    type_ = value.type
                    if id(type_) not in seen:
                        size = sys.getsizeof(type_)
                        instance_dict = getattr(type_, "__dict__", None)
                        if instance_dict is not None:
                            size += sys.getsizeof(instance_dict)
                        seen[id(type_)] = size
        return sum(seen.values()), len(seen)

    def measured(enabled: bool) -> tuple[int, int, list[tuple]]:
        previous = set_type_interning(enabled)
        try:
            cdfg = build()
            size, instances = type_footprint(cdfg)
            return size, instances, shape(cdfg)
        finally:
            set_type_interning(previous)

    def timed(enabled: bool) -> float:
        def run():
            previous = set_type_interning(enabled)
            try:
                build()
            finally:
                set_type_interning(previous)
        return _best_of(run, repeats)

    interned_bytes, interned_objs, interned_shape = measured(True)
    uninterned_bytes, uninterned_objs, uninterned_shape = measured(False)
    interned_s = timed(True)
    uninterned_s = timed(False)
    return {
        "workload": f"fir({taps}) compile+unroll",
        "interned_bytes": interned_bytes,
        "uninterned_bytes": uninterned_bytes,
        "bytes_saved": uninterned_bytes - interned_bytes,
        "interned_type_objects": interned_objs,
        "uninterned_type_objects": uninterned_objs,
        "interned_s": interned_s,
        "uninterned_s": uninterned_s,
        "speedup": uninterned_s / interned_s,
        "equivalent": interned_shape == uninterned_shape,
    }


#: The diffeq operating contract (docs/static-analysis.md): every
#: input bounded to the paper's intended operating region, the step
#: size strictly positive so the loop terminates.
DIFFEQ_CONTRACT = (
    ("x0", 0.0, 1.0),
    ("y0", 0.0, 1.0),
    ("u0", 0.0, 1.0),
    ("dx", 0.0, 0.125),
    ("a", 0.0, 1.0),
)


def _bench_narrow(repeats: int) -> dict:
    """Datapath narrowing under the diffeq operating contract.

    Measures the estimated-area delta of ``--narrow --assume ...``
    against the plain pipeline, and differentially verifies that the
    narrowed design still computes the same outputs — a smaller
    datapath that changes answers is a bug, not a win.
    """
    from repro.verify import run_differential

    base_options = SynthesisOptions()
    narrow_options = SynthesisOptions(
        narrow=True, assume_ranges=DIFFEQ_CONTRACT
    )
    base = _fresh(
        lambda: synthesize(DIFFEQ_SOURCE, options=base_options)
    )()
    narrowed = _fresh(
        lambda: synthesize(DIFFEQ_SOURCE, options=narrow_options)
    )()
    base_area = estimate_area(base).total
    narrow_area = estimate_area(narrowed).total
    # The contract is *trusted*: a narrowed design only behaves for
    # inputs inside it, so both sides are measured on the same
    # in-contract vectors (full-range vectors would legitimately hang
    # the narrowed loop — see docs/static-analysis.md).
    vectors = [
        {"x0": 0.0, "y0": 1.0, "u0": 1.0, "dx": 0.125, "a": 0.5},
        {"x0": 0.25, "y0": 0.5, "u0": 0.75, "dx": 0.0625, "a": 1.0},
    ]
    base_cycles = measure_cycles(base, vectors)
    narrow_cycles = measure_cycles(narrowed, vectors)
    differential = run_differential(
        DIFFEQ_SOURCE,
        schedulers=["list"],
        allocators=["left-edge"],
        options=narrow_options,
        vectors=vectors,
    )
    baseline_s = _best_of(
        _fresh(lambda: synthesize(DIFFEQ_SOURCE, options=base_options)),
        repeats,
    )
    new_s = _best_of(
        _fresh(
            lambda: synthesize(DIFFEQ_SOURCE, options=narrow_options)
        ),
        repeats,
    )
    summary = next(
        (line for line in narrowed.log if line.startswith("narrow:")),
        "",
    )
    return {
        "workload": "diffeq (operating contract on every input)",
        "contract": {name: [lo, hi] for name, lo, hi in DIFFEQ_CONTRACT},
        "baseline_area": base_area,
        "narrowed_area": narrow_area,
        "area_saved": base_area - narrow_area,
        "area_saved_pct": (
            100.0 * (base_area - narrow_area) / base_area
            if base_area else 0.0
        ),
        "cycles": [base_cycles, narrow_cycles],
        "baseline_s": baseline_s,
        "new_s": new_s,
        "narrow_summary": summary,
        "equivalent": differential.ok,
    }


def _bench_directives(limits: list[int], repeats: int) -> dict:
    """Directive-space funnel vs the FU-only sweep on diffeq.

    Pins the tentpole's two acceptance properties: the directive sweep
    must **expand the Pareto front** (at least one point no FU-only
    point dominates) while running **at least 2× fewer** full
    synthesize+measure evaluations than the exhaustive
    configs × limits cross-product.  Measurement vectors are explicit
    in-contract inputs that actually run the integration loop — the
    default corner vectors all start at ``x0 == a``, so the loop never
    executes and every directive looks latency-identical.
    """
    from repro.explore import default_directive_space, explore_directives
    from repro.workloads import diffeq_inputs

    vectors = [diffeq_inputs(steps) for steps in (2, 4, 8)]
    configs = default_directive_space()
    baseline = _fresh(lambda: explore_fu_range(
        DIFFEQ_SOURCE, limits, vectors=vectors))()
    result = _fresh(lambda: explore_directives(
        DIFFEQ_SOURCE, limits, configs=configs, vectors=vectors))()
    funnel = result.funnel

    base_front = [(p.area, p.latency_ns) for p in baseline.pareto]
    new_nondominated = sum(
        1 for p in result.pareto
        if not any(a <= p.area and l <= p.latency_ns
                   for a, l in base_front)
    )
    # The baseline's configuration (no directives, list/left-edge) is
    # one cell of the directive space: wherever the funnel kept it,
    # both sweeps must have measured the very same design.
    plain = {
        str(p.constraints): (p.area, p.cycles, p.clock_ns)
        for p in result.points
        if p.config.transforms == (False, False, False)
        and p.config.scheduler == "list"
        and p.config.allocator == "left-edge"
    }
    equivalent = all(
        plain[str(p.constraints)] == (p.area, p.cycles, p.clock_ns)
        for p in baseline.points
        if str(p.constraints) in plain
    )
    new_s = _best_of(
        _fresh(lambda: explore_directives(
            DIFFEQ_SOURCE, limits, configs=configs, vectors=vectors)),
        repeats,
    )
    return {
        "workload": "diffeq (loop-exercising in-contract vectors)",
        "configs": len(configs),
        "limits": limits,
        "exhaustive": funnel["exhaustive"],
        "configs_evaluated": funnel["configs_evaluated"],
        "configs_pruned": funnel["configs_pruned"],
        "funnel": {
            key: funnel[key]
            for key in ("duplicates_pruned", "estimate_pruned",
                        "schedule_pruned", "schedule_failed")
        },
        "prune_ratio": (
            funnel["exhaustive"] / funnel["configs_evaluated"]
            if funnel["configs_evaluated"] else float("inf")
        ),
        "front_baseline": len(baseline.pareto),
        "front_directives": len(result.pareto),
        "new_nondominated": new_nondominated,
        "new_s": new_s,
        "equivalent": equivalent,
    }


def _single_block_problem(cdfg, model, constraints=None,
                          time_limit=None) -> SchedulingProblem:
    blocks = [block for block in cdfg.blocks() if block.ops]
    return SchedulingProblem.from_block(blocks[0], model, constraints,
                                        time_limit=time_limit)


def _ledger_records(report: dict) -> None:
    """One ``bench`` record per benchmark row when a ledger is active.

    Each row's comparable timing (the fast-path side of the
    comparison) becomes the record's ``wall_s``; the full row rides in
    ``extra`` so ``repro report`` can gate on ``wall_s`` while
    ``repro history --format json`` still shows speedups.
    """
    ledger = run_ledger.active_ledger()
    if ledger is None:
        return
    for section in ("dse", "directives", "schedulers", "store", "ir",
                    "narrow"):
        for name, entry in report[section].items():
            wall = entry.get(
                "new_s",
                entry.get("incremental_s", entry.get("warm_s", 0.0)),
            )
            ledger.append(run_ledger.build_record(
                "bench", f"{section}/{name}",
                wall_s=wall,
                extra={"budget": report["budget"], **entry},
            ))


def run_benchmarks(budget: str = "full") -> dict:
    """Time seed vs fast paths; returns the report dict.

    Runs inside a :func:`repro.obs.ledger.ledger_scope` so the
    hundreds of syntheses below never auto-record; when a ledger is
    active the harness appends one ``bench`` record per benchmark row
    instead.
    """
    if budget not in BUDGETS:
        raise ValueError(f"unknown budget {budget!r}")
    knobs = BUDGETS[budget]
    repeats = knobs["repeats"]

    random_spec = RandomDFGSpec(ops=knobs["random_ops"], seed=42)
    typed = TypedFUModel()
    universal = UniversalFUModel()

    with run_ledger.ledger_scope():
        report = _build_report(budget, knobs, repeats, random_spec,
                               typed, universal)
    _ledger_records(report)
    return report


def _build_report(budget, knobs, repeats, random_spec, typed,
                  universal) -> dict:
    report = {
        "budget": budget,
        "repeats": repeats,
        "timer": "min over repeats of time.perf_counter",
        "python": platform.python_version(),
        "cpu_count": os.cpu_count(),
        "generated": time.strftime("%Y-%m-%dT%H:%M:%S%z"),
        "dse": {
            "diffeq_sweep": _bench_sweep(
                "diffeq", DIFFEQ_SOURCE,
                list(range(1, knobs["diffeq_limits"] + 1)), repeats,
            ),
            "sqrt_sweep": _bench_sweep(
                "sqrt", SQRT_SOURCE,
                list(range(1, knobs["sqrt_limits"] + 1)), repeats,
            ),
            "sqrt_search": _bench_search(
                SQRT_SOURCE, target_cycles=10,
                max_units=knobs["search_max_units"], repeats=repeats,
            ),
        },
        "stage_breakdown": {
            "sqrt": _stage_breakdown("sqrt", SQRT_SOURCE),
            "diffeq": _stage_breakdown("diffeq", DIFFEQ_SOURCE),
        },
        "schedulers": {
            "force_directed_fig5": _bench_force_directed(
                "fig5",
                lambda: _single_block_problem(
                    fig5_cdfg(), TypedFUModel(single_cycle=True),
                    time_limit=3,
                ),
                repeats, deadline=3,
            ),
            "force_directed_ewf": _bench_force_directed(
                "ewf",
                lambda: _single_block_problem(ewf_cdfg(), typed),
                repeats,
            ),
            "force_directed_random": _bench_force_directed(
                f"random_dfg(ops={random_spec.ops}, seed=42)",
                lambda: _single_block_problem(
                    random_dfg(random_spec), typed
                ),
                repeats,
            ),
            "list_random": _bench_list(
                f"random_dfg(ops={random_spec.ops}, seed=42)",
                lambda: _single_block_problem(
                    random_dfg(random_spec), universal,
                    ResourceConstraints({"fu": 4}),
                ),
                repeats,
            ),
        },
        "store": {
            "cross_process_sweep": _bench_store_cross_process(
                knobs["store_limits"], repeats,
            ),
            "edit_resynthesis": _bench_edit_resynthesis(repeats),
        },
        "ir": {
            "interning": _bench_interning(knobs["fir_taps"], repeats),
        },
        "narrow": {
            "diffeq_contract": _bench_narrow(repeats),
        },
        "directives": {
            "diffeq": _bench_directives(
                list(range(1, knobs["directive_limits"] + 1)), repeats,
            ),
        },
    }
    return report


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description="time the DSE fast path against the seed strategy"
    )
    parser.add_argument("--budget", choices=sorted(BUDGETS),
                        default="full")
    parser.add_argument("--output", default=str(OUTPUT),
                        help=f"report path (default {OUTPUT})")
    parser.add_argument(
        "--ledger", nargs="?", const="", default=None, metavar="DIR",
        help="append one run record per benchmark row to the ledger "
             "at DIR (default directory when DIR is omitted)",
    )
    args = parser.parse_args(argv)

    if args.ledger is not None:
        run_ledger.configure_ledger(
            args.ledger or run_ledger.default_ledger_dir()
        )
    report = run_benchmarks(args.budget)
    Path(args.output).write_text(json.dumps(report, indent=2) + "\n")

    for section in ("dse", "schedulers", "store", "ir"):
        for name, entry in report[section].items():
            flag = entry.get("equivalent",
                             entry.get("identical_schedules"))
            print(f"{section}/{name}: {entry['speedup']:.2f}x "
                  f"(results identical: {flag})")
    for name, entry in report["directives"].items():
        print(f"directives/{name}: {entry['exhaustive']} cells -> "
              f"{entry['configs_evaluated']} full evaluations "
              f"({entry['prune_ratio']:.1f}x pruned), "
              f"{entry['new_nondominated']} new Pareto points "
              f"(equivalent: {entry['equivalent']})")
    for name, entry in report["narrow"].items():
        print(f"narrow/{name}: area {entry['baseline_area']:.0f} -> "
              f"{entry['narrowed_area']:.0f} "
              f"({entry['area_saved_pct']:.1f}% saved; "
              f"equivalent: {entry['equivalent']})")
    for name, entry in report["stage_breakdown"].items():
        hottest = max(entry["stages"].items(),
                      key=lambda item: item[1]["ms"])
        print(f"stage_breakdown/{name}: {entry['total_ms']:.1f}ms "
              f"total, hottest stage {hottest[0]} "
              f"({hottest[1]['ms']:.1f}ms)")
    print(f"wrote {args.output}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
