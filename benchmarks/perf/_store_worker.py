"""Child process for the cross-process store benchmarks.

Runs one FU sweep over a built-in workload and prints a single JSON
line: the in-child elapsed time, the measured point rows, and the
store hit/miss counters.  The parent (``run_bench.py`` or
``cache_smoke.py``) launches this twice against the same
``REPRO_STORE_DIR`` — the first run is cold (everything synthesized
and persisted), the second is warm (everything loaded) — and compares
the rows for equivalence.

Timing happens *inside* the child so interpreter start-up (~100ms,
identical in both runs and an order of magnitude larger than the
sweep itself) cannot drown the cold/warm difference being measured.
"""

from __future__ import annotations

import argparse
import json
import sys
import time

from repro.explore import explore_fu_range
from repro.obs import metrics
from repro.workloads.diffeq import DIFFEQ_SOURCE
from repro.workloads.sqrt import SQRT_SOURCE

WORKLOADS = {"diffeq": DIFFEQ_SOURCE, "sqrt": SQRT_SOURCE}


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser()
    parser.add_argument("--workload", choices=sorted(WORKLOADS),
                        default="diffeq")
    parser.add_argument("--limits", default="1,2,3,4,5,6,7,8")
    args = parser.parse_args(argv)

    source = WORKLOADS[args.workload]
    limits = [int(x) for x in args.limits.split(",")]

    start = time.perf_counter()
    result = explore_fu_range(source, limits)
    elapsed = time.perf_counter() - start

    rows = [
        (str(p.constraints), p.area, p.cycles, p.clock_ns)
        for p in result.points
    ]
    print(json.dumps({
        "elapsed_s": elapsed,
        "rows": rows,
        "store_hits": metrics().counter("store.hits").value,
        "store_misses": metrics().counter("store.misses").value,
        "failures": len(result.failures),
    }))
    return 0


if __name__ == "__main__":
    sys.exit(main())
