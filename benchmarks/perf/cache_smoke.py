"""Smoke-check the persistent design store across processes.

Runs the ``_store_worker`` sweep in child processes against one store
directory and asserts the two-tier cache actually works end to end:

* the cold phase misses and persists (``store_misses > 0``);
* the warm phase hits (``store_hits > 0``) and produces **identical**
  point rows — a warm answer that differs from the cold one would mean
  the store served a wrong design;
* the warm phase is not slower in counters: it must not re-miss.

CI uses the phases separately: the test job runs ``--phase cold`` and
uploads the store directory as a cache, the profile job restores it
and runs ``--phase warm`` — proving persistence survives not just
processes but jobs.  ``make cache-smoke`` runs ``--phase all``
locally against a throwaway directory.

Exit status 0 on success, 1 with a diagnostic on any failed assertion.
"""

from __future__ import annotations

import argparse
import json
import os
import subprocess
import sys
import tempfile
from pathlib import Path

WORKER = Path(__file__).resolve().with_name("_store_worker.py")
REPO_ROOT = Path(__file__).resolve().parents[2]


def run_sweep(store_dir: str, workload: str = "diffeq") -> dict:
    """One child sweep against ``store_dir``; returns its JSON report."""
    env = dict(os.environ)
    env["REPRO_STORE_DIR"] = store_dir
    env.pop("REPRO_STORE", None)
    env["PYTHONPATH"] = os.pathsep.join(
        p for p in (str(REPO_ROOT / "src"), env.get("PYTHONPATH")) if p
    )
    proc = subprocess.run(
        [sys.executable, str(WORKER), "--workload", workload],
        env=env, capture_output=True, text=True, check=True,
    )
    return json.loads(proc.stdout.strip().splitlines()[-1])


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser()
    parser.add_argument("--phase", choices=("all", "cold", "warm"),
                        default="all")
    parser.add_argument("--store-dir", default=None,
                        help="store directory (default: REPRO_STORE_DIR "
                        "for cold/warm, a temp dir for all)")
    parser.add_argument("--state", default=None,
                        help="JSON file carrying the cold rows between "
                        "separate cold and warm invocations")
    args = parser.parse_args(argv)

    store_dir = args.store_dir or os.environ.get("REPRO_STORE_DIR")
    cleanup = None
    if store_dir is None:
        if args.phase != "all":
            print("cache-smoke: --store-dir or REPRO_STORE_DIR required "
                  f"for --phase {args.phase}", file=sys.stderr)
            return 1
        cleanup = tempfile.TemporaryDirectory(prefix="repro-store-")
        store_dir = cleanup.name

    state_path = Path(args.state) if args.state else None
    try:
        cold = warm = None
        if args.phase in ("all", "cold"):
            cold = run_sweep(store_dir)
            print(f"cold: {cold['elapsed_s'] * 1000:.1f}ms, "
                  f"hits={cold['store_hits']} "
                  f"misses={cold['store_misses']}")
            if cold["store_misses"] == 0:
                print("cache-smoke: FAIL — cold run never consulted "
                      "the store", file=sys.stderr)
                return 1
            if state_path is not None:
                state_path.write_text(json.dumps(cold))
        if args.phase in ("all", "warm"):
            warm = run_sweep(store_dir)
            print(f"warm: {warm['elapsed_s'] * 1000:.1f}ms, "
                  f"hits={warm['store_hits']} "
                  f"misses={warm['store_misses']}")
            if warm["store_hits"] == 0:
                print("cache-smoke: FAIL — warm run had zero store "
                      "hits", file=sys.stderr)
                return 1
            if cold is None and state_path is not None \
                    and state_path.exists():
                cold = json.loads(state_path.read_text())
            if cold is not None and warm["rows"] != cold["rows"]:
                print("cache-smoke: FAIL — warm rows differ from cold "
                      "rows", file=sys.stderr)
                return 1
        print("cache-smoke: OK")
        return 0
    finally:
        if cleanup is not None:
            cleanup.cleanup()


if __name__ == "__main__":
    sys.exit(main())
