"""A3 — the scheduling/allocation interaction loop (design space).

§3.1.1's Chippe/MIMOLA iteration: sweep the functional-unit budget,
synthesize each point and measure (area, cycles).  Shape assertions:
cycle count weakly decreases with more units, the sweep saturates at
the dataflow limit, and the Pareto front contains at least two
distinct trade-off points for the diffeq workload.
"""

from conftest import print_table
from repro.core import SynthesisOptions
from repro.explore import explore_fu_range
from repro.workloads import DIFFEQ_SOURCE, SQRT_SOURCE, diffeq_inputs


def run_sweep():
    sqrt = explore_fu_range(SQRT_SOURCE, [1, 2, 3])
    diffeq = explore_fu_range(
        DIFFEQ_SOURCE,
        [1, 2, 3, 4],
        options=SynthesisOptions(),
        vectors=[diffeq_inputs(3)],
    )
    return sqrt, diffeq


def test_ablation_dse(benchmark):
    sqrt, diffeq = benchmark(run_sweep)

    rows = ["sqrt sweep (universal FU budget):"]
    rows += [f"   {line}" for line in sqrt.table().splitlines()[1:]]
    rows += ["diffeq sweep:"]
    rows += [f"   {line}" for line in diffeq.table().splitlines()[1:]]
    print_table("A3 — design-space exploration", rows)

    for result in (sqrt, diffeq):
        cycles = [p.cycles for p in result.points]
        assert cycles == sorted(cycles, reverse=True), (
            "more FUs must not slow the design down"
        )
        assert result.pareto, "Pareto front must be non-empty"

    # sqrt: the 1-FU and 2-FU points differ; 2 and 3 saturate.
    sqrt_cycles = [p.cycles for p in sqrt.points]
    assert sqrt_cycles[0] > sqrt_cycles[1]
    assert sqrt_cycles[1] == sqrt_cycles[2]

    # diffeq exposes a genuine area/latency trade-off.
    assert len({(p.cycles) for p in diffeq.points}) >= 2
