"""F4 — Figure 4: list scheduling recovers the optimal schedule.

"Here the priority is the length of the path from the operation to the
end of the block.  Since operation 2 has a higher priority than
operation 1, it is scheduled first, giving an optimal schedule for this
case."
"""

from conftest import print_table
from repro.ir import OpKind
from repro.scheduling import (
    BranchAndBoundScheduler,
    ListScheduler,
    ResourceConstraints,
    SchedulingProblem,
    TypedFUModel,
)
from repro.scheduling.list_scheduler import path_length_priority
from repro.workloads import fig3_cdfg

CONSTRAINTS = ResourceConstraints({"mul": 1, "add": 1})


def run_list():
    cdfg = fig3_cdfg()
    problem = SchedulingProblem.from_block(
        cdfg.blocks()[0], TypedFUModel(single_cycle=True), CONSTRAINTS
    )
    schedule = ListScheduler(problem, "path_length").schedule()
    schedule.validate()
    return problem, schedule


def test_fig4_list(benchmark):
    problem, schedule = benchmark(run_list)

    muls = [op.id for op in problem.ops if op.kind is OpKind.MUL]
    non_critical, critical = muls
    priority = path_length_priority(problem)

    rows = [
        f"priorities: critical mul={priority[critical]}, "
        f"non-critical mul={priority[non_critical]}",
        f"list schedule length: {schedule.length} steps "
        "[paper: optimal, 3]",
        f"critical mul now at step {schedule.start[critical]}",
    ]
    print_table("Fig. 4 — list scheduling", rows)

    # "operation 2 has a higher priority than operation 1"
    assert priority[critical] > priority[non_critical]
    # "...it is scheduled first, giving an optimal schedule"
    assert schedule.start[critical] == 0
    assert schedule.length == 3
    optimal = BranchAndBoundScheduler(problem).schedule()
    assert schedule.length == optimal.length
