"""A1 — scheduler shoot-out across the workload suite.

§3.1's comparison, made quantitative: every scheduler family on the
sqrt body, the HAL diffeq body, the elliptic wave filter and random
DFGs.  Shape assertions: branch-and-bound is optimal (never beaten),
list scheduling matches it on these workloads ("works nearly as well as
branch-and-bound"), ASAP is never better than list, and force-directed
meets the list deadline with no more FUs.
"""

from conftest import print_table
from repro.scheduling import (
    ASAPScheduler,
    BranchAndBoundScheduler,
    ForceDirectedScheduler,
    FreedomBasedScheduler,
    ListScheduler,
    ResourceConstraints,
    SchedulingProblem,
    TypedFUModel,
    UniversalFUModel,
    YSCScheduler,
)
from repro.transforms import optimize
from repro.workloads import (
    RandomDFGSpec,
    diffeq_cdfg,
    ewf_cdfg,
    fig3_cdfg,
    random_dfg,
    sqrt_cdfg,
)

UNIT = TypedFUModel(single_cycle=True)


def workload_problems():
    problems = {}

    problems["fig3"] = SchedulingProblem.from_block(
        fig3_cdfg().blocks()[0], UNIT,
        ResourceConstraints({"mul": 1, "add": 1}),
    )

    sqrt = sqrt_cdfg()
    optimize(sqrt)
    problems["sqrt-body"] = SchedulingProblem.from_block(
        sqrt.loops()[0].test_block,
        UniversalFUModel(),
        ResourceConstraints({"fu": 2}),
    )

    diffeq = diffeq_cdfg()
    optimize(diffeq)
    body = diffeq.loops()[0].body
    biggest = max(body.blocks(), key=lambda b: len(b.ops))
    problems["diffeq-body"] = SchedulingProblem.from_block(
        biggest, UNIT, ResourceConstraints({"mul": 1, "add": 1,
                                            "cmp": 1}),
    )

    problems["ewf"] = SchedulingProblem.from_block(
        ewf_cdfg().blocks()[0],
        UNIT,
        ResourceConstraints({"add": 2, "mul": 1}),
    )

    for seed in (3, 11):
        cdfg = random_dfg(RandomDFGSpec(ops=12, seed=seed))
        problems[f"rand{seed}"] = SchedulingProblem.from_block(
            cdfg.blocks()[0], UNIT,
            ResourceConstraints({"add": 1, "mul": 1}),
        )
    return problems


def run_shootout():
    problems = workload_problems()
    table = {}
    for name, problem in problems.items():
        row = {}
        for label, factory in (
            ("asap", ASAPScheduler),
            ("list", ListScheduler),
            ("ysc", YSCScheduler),
        ):
            schedule = factory(problem).schedule()
            schedule.validate()
            row[label] = schedule.length
        freedom = FreedomBasedScheduler(problem).schedule()
        freedom.validate()
        row["freedom"] = freedom.length
        # Force-directed is time-constrained: it *minimizes* units
        # under a deadline rather than obeying caps, so it runs on an
        # uncapped copy of the problem.
        uncapped = SchedulingProblem(
            problem.ops, problem.model, None, time_limit=row["list"],
            label=problem.label,
        )
        fds = ForceDirectedScheduler(
            uncapped, deadline=row["list"]
        ).schedule()
        fds.validate()
        row["fds"] = fds.length
        # Branch-and-bound is exponential; certify optimality only on
        # regions small enough to finish promptly (the paper's point).
        if len(problem.compute_op_ids()) <= 12:
            bnb = BranchAndBoundScheduler(problem).schedule()
            bnb.validate()
            row["bnb"] = bnb.length
        table[name] = row
    return table


def test_ablation_schedulers(benchmark):
    table = benchmark(run_shootout)

    rows = [
        f"{'workload':>12} | " + " ".join(
            f"{k:>7}" for k in ("asap", "list", "ysc", "freedom",
                                "fds", "bnb")
        )
    ]
    for name, row in table.items():
        cells = " ".join(
            f"{row.get(k, '-'):>7}" for k in
            ("asap", "list", "ysc", "freedom", "fds", "bnb")
        )
        rows.append(f"{name:>12} | {cells}")
    rows.append("[shape: bnb <= list <= asap; fds meets list deadline]")
    print_table("A1 — scheduler shoot-out (schedule length in steps)",
                rows)

    for name, row in table.items():
        assert row["list"] <= row["asap"], name
        assert row["fds"] <= row["list"], name
        if "bnb" in row:
            assert row["bnb"] <= row["list"], name
            # "works nearly as well as branch-and-bound": within 1 step.
            assert row["list"] - row["bnb"] <= 1, name
