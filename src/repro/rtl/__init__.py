"""RTL output: Verilog/VHDL emission, testbench generation, DOT."""

from .testbench import emit_testbench
from .verilog import VerilogEmitter, emit_verilog
from .vhdl import VHDLEmitter, emit_vhdl

__all__ = [
    "VHDLEmitter",
    "VerilogEmitter",
    "emit_testbench",
    "emit_verilog",
    "emit_vhdl",
]
