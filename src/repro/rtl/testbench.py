"""Verilog testbench emission.

Generates a self-checking testbench for an emitted design: it drives
the ``start`` handshake, applies each input vector, waits for ``done``
and compares every output against the expected value computed by the
library's own behavioral simulator.  Expected values are rendered as
raw bit patterns in the design's Q-format, so the testbench is exact,
not approximate.
"""

from __future__ import annotations

from ..core.design import SynthesizedDesign
from ..errors import HLSError
from ..ir.types import FixedType, IntType, bit_width
from ..sim.behavior import BehavioralSimulator
from ..sim.semantics import Number


def _bits(value: Number, type_) -> int:
    if isinstance(type_, FixedType):
        stored = int(round(float(value) * type_.scale))
        return stored & ((1 << type_.width) - 1)
    assert isinstance(type_, IntType)
    return int(value) & ((1 << type_.width) - 1)


def emit_testbench(design: SynthesizedDesign,
                   vectors: list[dict[str, Number]],
                   max_cycles: int = 100_000) -> str:
    """Verilog testbench text for ``design`` over ``vectors``."""
    if design.fsm is None:
        raise HLSError("design has no controller")
    if design.cdfg.memories:
        raise HLSError(
            "testbench emission does not preload memories; use designs "
            "without array state or drive memories from the design"
        )
    cdfg = design.cdfg
    expected = [
        BehavioralSimulator(cdfg).run(dict(vector)) for vector in vectors
    ]

    lines: list[str] = []
    out = lines.append
    out(f"// self-checking testbench for {cdfg.name}")
    out("`timescale 1ns/1ps")
    out(f"module tb_{cdfg.name};")
    out("  reg clk = 0, rst = 1, start = 0;")
    out("  wire done;")
    for port in cdfg.inputs:
        out(f"  reg [{bit_width(port.type)-1}:0] in_{port.name};")
    for port in cdfg.outputs:
        out(f"  wire [{bit_width(port.type)-1}:0] out_{port.name};")
    out("  integer errors = 0;")
    out("")
    out(f"  {cdfg.name} dut (")
    out("    .clk(clk), .rst(rst), .start(start), .done(done),")
    pin_lines = [
        f"    .in_{p.name}(in_{p.name})" for p in cdfg.inputs
    ] + [
        f"    .out_{p.name}(out_{p.name})" for p in cdfg.outputs
    ]
    out(",\n".join(pin_lines))
    out("  );")
    out("")
    out("  always #5 clk = ~clk;")
    out("")
    out("  task run_vector;")
    out("    integer k;")
    out("    begin")
    out("      @(negedge clk); start = 1;")
    out("      @(negedge clk); start = 0;")
    out("      k = 0;")
    out(f"      while (!done && k < {max_cycles}) begin")
    out("        @(negedge clk);")
    out("        k = k + 1;")
    out("      end")
    out("      if (!done) begin")
    out('        $display("TIMEOUT"); errors = errors + 1;')
    out("      end")
    out("    end")
    out("  endtask")
    out("")
    out("  initial begin")
    out("    repeat (2) @(negedge clk);")
    out("    rst = 0;")
    for index, (vector, outputs) in enumerate(zip(vectors, expected)):
        out(f"    // vector {index}: {vector}")
        for port in cdfg.inputs:
            out(
                f"    in_{port.name} = "
                f"{bit_width(port.type)}'d"
                f"{_bits(vector[port.name], port.type)};"
            )
        out("    run_vector;")
        for port in cdfg.outputs:
            expected_bits = _bits(outputs[port.name], port.type)
            out(
                f"    if (out_{port.name} !== "
                f"{bit_width(port.type)}'d{expected_bits}) begin"
            )
            out(
                f'      $display("FAIL vector {index}: {port.name} = '
                f'%0d, expected {expected_bits}", out_{port.name});'
            )
            out("      errors = errors + 1;")
            out("    end")
    out('    if (errors == 0) $display("ALL TESTS PASS");')
    out('    else $display("%0d ERRORS", errors);')
    out("    $finish;")
    out("  end")
    out("endmodule")
    return "\n".join(lines) + "\n"
