"""Design-space exploration: the paper's resource-iteration loop.

§1.2 motivates synthesis with "the ability to search the design space
… produce several designs for the same specification in a reasonable
amount of time", and §3.1.1 describes the loop concretely (MIMOLA,
Chippe): "first choosing a resource limit, then scheduling, then
changing the limit based on the results of the scheduling, rescheduling
and so on until a satisfactory design has been found."

:func:`explore_fu_range` sweeps functional-unit limits, synthesizes a
design per point, measures area (estimator) and latency (cycle-accurate
simulation), and reports the Pareto-optimal set.

Exploration is built for "a reasonable amount of time":

* behavioral source is compiled and IR-optimized **once** per sweep;
  every point then synthesizes against the shared CDFG (the pipeline
  only reads it after optimization) while per-block scheduling
  structure is reused across resource budgets — parallel workers
  instead deep-clone the template per point
  (:func:`~repro.transforms.clone_cdfg`);
* synthesized designs are memoized in the two-tier design cache
  (:func:`~repro.core.engine.lookup_design`: the process-global LRU,
  backed by the persistent :mod:`repro.store` when one is active),
  keyed by source digest and option knobs, so a constraint probed
  twice — across an :func:`explore_fu_range` sweep, a later
  :func:`search_for_latency`, or a whole new process — is never
  rebuilt;
* both entry points take ``n_jobs``: with more than one job, points
  fan out over a :class:`~repro.explore.parallel.ParallelExplorer`
  process pool, producing results identical to the serial path.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass, field, replace
from typing import Callable, Sequence

from ..core.design import SynthesizedDesign
from ..core.engine import (
    SynthesisOptions,
    lookup_design,
    record_design,
    source_digest,
    synthesize_cdfg,
)
from ..estimation import estimate_area, estimate_timing
from ..ir.cdfg import CDFG
from ..lang import compile_source
from ..obs import (
    histogram_deltas,
    metrics,
    telemetry_summary,
    trace_span,
)
from ..obs import ledger as run_ledger
from ..scheduling import ResourceConstraints
from ..sim.equivalence import default_vectors
from ..sim.rtl_sim import RTLSimulator
from ..transforms import optimize


@dataclass
class DesignPoint:
    """One explored design with its measured quality."""

    constraints: ResourceConstraints
    design: SynthesizedDesign
    area: float
    cycles: int
    clock_ns: float

    @property
    def latency_ns(self) -> float:
        return self.clock_ns * self.cycles

    def row(self) -> str:
        return (
            f"{self.constraints!s:>16}  area={self.area:8.0f}  "
            f"cycles={self.cycles:5d}  clock={self.clock_ns:5.1f}ns  "
            f"latency={self.latency_ns:9.1f}ns"
        )


class _VersionedPointList(list):
    """A point list that counts mutations, so the Pareto cache knows
    when to recompute."""

    def __init__(self, iterable: Sequence = ()) -> None:
        super().__init__(iterable)
        self.version = 0

    def _bump(self) -> None:
        self.version += 1

    def append(self, item) -> None:
        super().append(item)
        self._bump()

    def extend(self, iterable) -> None:
        super().extend(iterable)
        self._bump()

    def insert(self, index, item) -> None:
        super().insert(index, item)
        self._bump()

    def remove(self, item) -> None:
        super().remove(item)
        self._bump()

    def pop(self, index=-1):
        item = super().pop(index)
        self._bump()
        return item

    def clear(self) -> None:
        super().clear()
        self._bump()

    def sort(self, **kwargs) -> None:
        super().sort(**kwargs)
        self._bump()

    def reverse(self) -> None:
        super().reverse()
        self._bump()

    def __setitem__(self, index, value) -> None:
        super().__setitem__(index, value)
        self._bump()

    def __delitem__(self, index) -> None:
        super().__delitem__(index)
        self._bump()

    def __iadd__(self, other):
        result = super().__iadd__(other)
        self._bump()
        return result


@dataclass
class ExplorationResult:
    """All explored points plus the Pareto front (area vs latency)."""

    points: list[DesignPoint] = field(default_factory=list)
    #: Sweep telemetry (wall time + metric counter deltas), populated
    #: when the sweep was run with ``report=True``.
    telemetry: dict | None = None
    #: Points that could not be built: structured
    #: :class:`~repro.exec.TaskFailure` records from the parallel
    #: runtime (empty for serial sweeps, which raise instead).  The
    #: completed ``points`` are unaffected by entries here.
    failures: list = field(default_factory=list)

    @property
    def ok(self) -> bool:
        """Did every requested point produce a design?"""
        return not self.failures

    def __post_init__(self) -> None:
        self.points = _VersionedPointList(self.points)
        self._pareto_cache: list[DesignPoint] | None = None
        self._pareto_version = -1

    @property
    def pareto(self) -> list[DesignPoint]:
        version = getattr(self.points, "version", None)
        if version is None:
            # Someone replaced .points with a plain list; stay correct
            # by recomputing every time.
            return self._compute_pareto()
        if self._pareto_cache is None or version != self._pareto_version:
            self._pareto_cache = self._compute_pareto()
            self._pareto_version = version
        return list(self._pareto_cache)

    def _compute_pareto(self) -> list[DesignPoint]:
        """Single sorted sweep: a point survives iff its latency is the
        minimum of its area group and strictly beats every smaller-area
        group's minimum (equal-cost duplicates don't dominate each
        other, matching the pairwise definition)."""
        points = list(self.points)
        order = sorted(
            range(len(points)),
            key=lambda i: (points[i].area, points[i].latency_ns, i),
        )
        front: list[DesignPoint] = []
        best_latency = math.inf
        i = 0
        while i < len(order):
            j = i
            area = points[order[i]].area
            while j < len(order) and points[order[j]].area == area:
                j += 1
            group_min = points[order[i]].latency_ns
            if group_min < best_latency:
                for k in range(i, j):
                    if points[order[k]].latency_ns == group_min:
                        front.append(points[order[k]])
                best_latency = group_min
            i = j
        return front

    def table(self) -> str:
        lines = ["design-space exploration:"]
        pareto = set(map(id, self.pareto))
        for point in self.points:
            marker = "*" if id(point) in pareto else " "
            lines.append(f" {marker} {point.row()}")
        lines.append(" (* = Pareto-optimal)")
        for failure in self.failures:
            lines.append(f" ! {failure.render()}")
        if self.telemetry is not None:
            lines.append(telemetry_summary(self.telemetry))
        return "\n".join(lines)


def measure_cycles(design: SynthesizedDesign,
                   vectors: Sequence[dict] | None = None) -> int:
    """Worst-case activation cycles over the given input vectors."""
    if vectors is None:
        vectors = default_vectors(design.cdfg, count=4)
    worst = 0
    for inputs in vectors:
        simulator = RTLSimulator(design)
        simulator.run(inputs)
        worst = max(worst, simulator.cycles)
    return worst


def _design_signature(design: SynthesizedDesign) -> tuple:
    """Schedules + allocations as a hashable tuple.

    Binding, datapath plans, the FSM, simulation and the estimators
    are all deterministic functions of (CDFG, schedules, allocations),
    so for designs over the *same* CDFG an equal signature implies
    equal measurements.  Lets a sweep measure each distinct design
    once — past the budget where a constraint stops binding, every
    larger budget yields the same design.
    """
    signatures = design.stage_signatures()
    return (signatures["scheduling"], signatures["allocation"])


class _PointBuilder:
    """Synthesizes and measures one design point per resource limit.

    For string sources the behavioral program is compiled **and
    optimized once**; every point synthesizes against that shared CDFG
    (the pipeline after IR optimization only reads it — changing the
    constraint cannot change the graph) and reuses per-block
    :class:`~repro.scheduling.SchedulingProblem` structure via the
    engine's ``problem_cache``.  Synthesized designs additionally go
    through the process-global synthesis cache, and measurements are
    memoized per distinct design.  Factory callables are invoked per
    point, exactly as before (the factory owns freshness).
    """

    def __init__(
        self,
        source_or_factory: str | Callable[[], CDFG],
        resource_class: str,
        options: SynthesisOptions | None,
        vectors: Sequence[dict] | None,
        use_cache: bool = True,
    ) -> None:
        self.source_or_factory = source_or_factory
        self.resource_class = resource_class
        self.base = options or SynthesisOptions()
        self.vectors = vectors
        self.use_cache = use_cache and isinstance(source_or_factory, str)
        self._digest = (
            source_digest(source_or_factory)
            if isinstance(source_or_factory, str)
            else None
        )
        self._working: CDFG | None = None
        self._problem_cache: dict = {}
        self._measure_memo: dict[tuple, tuple[int, float, float]] = {}

    def _working_cdfg(self) -> CDFG:
        """The compiled-and-optimized CDFG shared by every point.

        Range narrowing is hoisted here as well: like ``optimize()``,
        it is constraint-independent, so running it once on the shared
        CDFG (instead of once per point, mutating the graph every
        point re-synthesizes) keeps the sweep identical to per-point
        full synthesis.
        """
        if self._working is None:
            self._working = compile_source(self.source_or_factory)
            if self.base.optimize_ir:
                optimize(
                    self._working,
                    unroll=self.base.unroll,
                    tree_height=self.base.tree_height,
                    if_conversion=self.base.if_conversion,
                )
            if self.base.narrow:
                from ..transforms.narrow import RangeNarrowing

                assume = {
                    name: (lo, hi)
                    for name, lo, hi in self.base.assume_ranges
                }
                RangeNarrowing(assume=assume).run(self._working)
        return self._working

    def build(self, limit: int) -> DesignPoint:
        with trace_span("dse.point", resource=self.resource_class,
                        limit=limit):
            metrics().counter("dse.points.evaluated").inc()
            return self._build(limit)

    def ensure_vectors(self) -> None:
        """Generate the sweep's measurement vectors once (string
        sources only).

        Vector generation is deterministic in the CDFG's inputs, so one
        batch serves the whole sweep — parallel sweeps call this before
        shipping payloads so workers measure the very same vectors.
        The assume contract must ride along: a design narrowed under it
        is only equivalent for inputs honoring it, so sweep
        measurements stay inside the contract too.
        """
        if self.vectors is None and isinstance(self.source_or_factory, str):
            assume = {
                name: (lo, hi) for name, lo, hi in self.base.assume_ranges
            }
            self.vectors = default_vectors(
                self._working_cdfg(), count=4, assume=assume or None
            )

    def _build(self, limit: int) -> DesignPoint:
        self.ensure_vectors()
        point_options = self.base.with_constraints(
            {self.resource_class: limit}
        )
        design = None
        if self.use_cache:
            # Two-tier: the in-memory LRU, then the persistent store
            # (when active) — a sweep re-run in a fresh process warm
            # starts from disk.
            design = lookup_design(self._digest, None, point_options)
        if design is None:
            if isinstance(self.source_or_factory, str):
                # IR optimization and narrowing already ran once on the
                # shared CDFG (cache keys still carry the requested
                # knobs — point_options is keyed *before* this strip).
                run_options = replace(point_options, optimize_ir=False,
                                      narrow=False)
                design = synthesize_cdfg(
                    self._working_cdfg(), run_options,
                    problem_cache=self._problem_cache,
                )
            else:
                design = synthesize_cdfg(
                    self.source_or_factory(), point_options
                )
            if self.use_cache:
                record_design(self._digest, None, point_options,
                              design)
        cycles, clock_ns, area = self._measure(design)
        return DesignPoint(
            constraints=point_options.constraints,
            design=design,
            area=area,
            cycles=cycles,
            clock_ns=clock_ns,
        )

    def _measure(self, design: SynthesizedDesign) -> tuple[int, float, float]:
        # The signature shortcut is only sound when every design shares
        # one CDFG, i.e. the string-source path.
        signature = (
            _design_signature(design)
            if isinstance(self.source_or_factory, str)
            else None
        )
        if signature is not None:
            cached = self._measure_memo.get(signature)
            if cached is not None:
                metrics().counter("dse.measurements.memoized").inc()
                return cached
        metrics().counter("dse.measurements.run").inc()
        cycles = measure_cycles(design, self.vectors)
        timing = estimate_timing(design, cycles)
        area = estimate_area(design).total
        measured = (cycles, timing.clock_ns, area)
        if signature is not None:
            self._measure_memo[signature] = measured
        return measured


def _map_points(builder: _PointBuilder, limits: Sequence[int],
                n_jobs: int | None,
                task_timeout_s: float | None = None,
                ) -> tuple[list[DesignPoint], list]:
    """Build a point per limit, in order — fanning out when asked.

    Returns ``(points, failures)``; the serial path raises on error
    (nothing to salvage) and therefore never reports failures.
    """
    if n_jobs is not None and n_jobs > 1:
        from .parallel import ParallelExplorer

        explorer = ParallelExplorer(max_workers=n_jobs,
                                    timeout_s=task_timeout_s)
        return explorer.build_points(builder, limits)
    return [builder.build(limit) for limit in limits], []


def search_for_latency(
    source_or_factory: str | Callable[[], CDFG],
    target_cycles: int,
    resource_class: str = "fu",
    max_units: int = 16,
    options: SynthesisOptions | None = None,
    vectors: Sequence[dict] | None = None,
    n_jobs: int | None = 1,
    use_cache: bool = True,
    task_timeout_s: float | None = None,
) -> DesignPoint | None:
    """Chippe-style constraint-driven search: the *smallest* unit count
    whose design meets ``target_cycles``.

    §3.1.1: "first choosing a resource limit, then scheduling, then
    changing the limit based on the results of the scheduling,
    rescheduling and so on until a satisfactory design has been found."
    Cycle counts are monotone non-increasing in the unit budget here,
    so the loop is a binary search — or, with ``n_jobs > 1``, a
    k-section search probing ``n_jobs`` limits per round, which finds
    the same smallest feasible count.  Returns None when even
    ``max_units`` cannot meet the target.

    Unlike :func:`explore_fu_range`, a probe that permanently fails
    in the parallel runtime raises
    :class:`~repro.errors.TaskExecutionError`: the bisection needs
    every probe's cycle count to steer, so there is no partial result
    to return.
    """
    builder = _PointBuilder(
        source_or_factory, resource_class, options, vectors, use_cache
    )
    ceiling = builder.build(max_units)
    if ceiling.cycles > target_cycles:
        return None
    best = ceiling
    low, high = 1, max_units
    if n_jobs is not None and n_jobs > 1:
        while low < high:
            count = min(n_jobs, high - low)
            probes = sorted({
                low + ((i + 1) * (high - low)) // (count + 1)
                for i in range(count)
            })
            points, failures = _map_points(builder, probes, n_jobs,
                                           task_timeout_s)
            if failures:
                from ..errors import TaskExecutionError

                rendered = "; ".join(f.render() for f in failures)
                raise TaskExecutionError(
                    f"latency search probe(s) failed: {rendered}",
                    failures,
                )
            advanced = low
            feasible = None
            for probe, point in zip(probes, points):
                if point.cycles <= target_cycles:
                    feasible = (probe, point)
                    break
                advanced = probe + 1
            if feasible is not None:
                high, best = feasible
            low = advanced
        return best
    while low < high:
        middle = (low + high) // 2
        point = builder.build(middle)
        if point.cycles <= target_cycles:
            best = point
            high = middle
        else:
            low = middle + 1
    return best


def explore_fu_range(
    source_or_factory: str | Callable[[], CDFG],
    fu_limits: Sequence[int],
    resource_class: str = "fu",
    options: SynthesisOptions | None = None,
    vectors: Sequence[dict] | None = None,
    n_jobs: int | None = 1,
    use_cache: bool = True,
    report: bool = False,
    task_timeout_s: float | None = None,
) -> ExplorationResult:
    """Sweep a functional-unit limit and collect the trade-off curve.

    Args:
        source_or_factory: BSL text, or a callable returning a fresh
            CDFG (synthesis mutates its input).
        fu_limits: unit counts to try for ``resource_class``.
        resource_class: the constrained class (default "fu").
        options: base options; the constraint field is overridden per
            point.
        vectors: inputs for cycle measurement (default: generated).
        n_jobs: fan points out over this many worker processes when
            greater than one; results are identical to the serial
            sweep, in ``fu_limits`` order.
        use_cache: reuse designs from the process-global synthesis
            cache for string sources.
        report: collect sweep telemetry (wall time + the metric
            counters this sweep moved, worker registries included)
            into ``result.telemetry``; ``result.table()`` then ends
            with the summary.
        task_timeout_s: per-point wall-clock budget for parallel
            sweeps (default: env ``REPRO_TASK_TIMEOUT_S``, else
            none).  A point that exceeds it is rebuilt serially; if
            that fails too it lands in ``result.failures`` instead of
            sinking the sweep.
    """
    builder = _PointBuilder(
        source_or_factory, resource_class, options, vectors, use_cache
    )
    limits = list(fu_limits)
    result = ExplorationResult()
    ledger = (None if run_ledger.in_ledger_scope()
              else run_ledger.active_ledger())
    before = (metrics().snapshot()
              if report or ledger is not None else None)
    started = time.perf_counter()
    with run_ledger.ledger_scope():
        # The scope claims the ledger record for this sweep: the many
        # syntheses inside are one exploration, not N runs.
        with trace_span("dse.sweep", resource=resource_class,
                        points=len(limits)):
            points, failures = _map_points(builder, limits, n_jobs,
                                           task_timeout_s)
            result.points.extend(points)
            result.failures.extend(failures)
    wall_s = time.perf_counter() - started
    if report:
        after = metrics().snapshot()
        deltas = {
            key: value - before["counters"].get(key, 0)
            for key, value in after["counters"].items()
            if value - before["counters"].get(key, 0) != 0
        }
        result.telemetry = {
            "wall_s": wall_s,
            "counters": deltas,
            "histograms": {
                key: hist.summary()
                for key, hist in histogram_deltas(before, after).items()
            },
        }
    if ledger is not None and result.points:
        # QoR of the sweep's best-latency point, plus the trade-off
        # curve itself — one "explore" record per invocation.
        best = min(result.points,
                   key=lambda p: (p.latency_ns, p.area))
        record = run_ledger.build_record(
            "explore", best.design.cdfg.name,
            design=best.design,
            source_digest=builder._digest,
            options=builder.base,
            metrics_before=before,
            wall_s=wall_s,
            extra={
                "resource_class": resource_class,
                "limits": limits,
                "pareto": len(result.pareto),
                "failures": len(result.failures),
                "points": [
                    {
                        "constraints": str(p.constraints),
                        "area": round(p.area, 3),
                        "cycles": p.cycles,
                        "clock_ns": round(p.clock_ns, 3),
                    }
                    for p in result.points
                ],
            },
        )
        ledger.append(record)
    return result
