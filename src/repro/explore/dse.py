"""Design-space exploration: the paper's resource-iteration loop.

§1.2 motivates synthesis with "the ability to search the design space
… produce several designs for the same specification in a reasonable
amount of time", and §3.1.1 describes the loop concretely (MIMOLA,
Chippe): "first choosing a resource limit, then scheduling, then
changing the limit based on the results of the scheduling, rescheduling
and so on until a satisfactory design has been found."

:func:`explore_fu_range` sweeps functional-unit limits, synthesizes a
design per point, measures area (estimator) and latency (cycle-accurate
simulation), and reports the Pareto-optimal set.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Sequence

from ..core.design import SynthesizedDesign
from ..core.engine import SynthesisOptions, synthesize_cdfg
from ..estimation import estimate_area, estimate_timing
from ..ir.cdfg import CDFG
from ..lang import compile_source
from ..scheduling import ResourceConstraints
from ..sim.equivalence import default_vectors
from ..sim.rtl_sim import RTLSimulator


@dataclass
class DesignPoint:
    """One explored design with its measured quality."""

    constraints: ResourceConstraints
    design: SynthesizedDesign
    area: float
    cycles: int
    clock_ns: float

    @property
    def latency_ns(self) -> float:
        return self.clock_ns * self.cycles

    def row(self) -> str:
        return (
            f"{self.constraints!s:>16}  area={self.area:8.0f}  "
            f"cycles={self.cycles:5d}  clock={self.clock_ns:5.1f}ns  "
            f"latency={self.latency_ns:9.1f}ns"
        )


@dataclass
class ExplorationResult:
    """All explored points plus the Pareto front (area vs latency)."""

    points: list[DesignPoint] = field(default_factory=list)

    @property
    def pareto(self) -> list[DesignPoint]:
        front: list[DesignPoint] = []
        for point in self.points:
            dominated = any(
                other.area <= point.area
                and other.latency_ns <= point.latency_ns
                and (
                    other.area < point.area
                    or other.latency_ns < point.latency_ns
                )
                for other in self.points
                if other is not point
            )
            if not dominated:
                front.append(point)
        front.sort(key=lambda p: (p.area, p.latency_ns))
        return front

    def table(self) -> str:
        lines = ["design-space exploration:"]
        pareto = set(map(id, self.pareto))
        for point in self.points:
            marker = "*" if id(point) in pareto else " "
            lines.append(f" {marker} {point.row()}")
        lines.append(" (* = Pareto-optimal)")
        return "\n".join(lines)


def measure_cycles(design: SynthesizedDesign,
                   vectors: Sequence[dict] | None = None) -> int:
    """Worst-case activation cycles over the given input vectors."""
    if vectors is None:
        vectors = default_vectors(design.cdfg, count=4)
    worst = 0
    for inputs in vectors:
        simulator = RTLSimulator(design)
        simulator.run(inputs)
        worst = max(worst, simulator.cycles)
    return worst


def search_for_latency(
    source_or_factory: str | Callable[[], CDFG],
    target_cycles: int,
    resource_class: str = "fu",
    max_units: int = 16,
    options: SynthesisOptions | None = None,
    vectors: Sequence[dict] | None = None,
) -> DesignPoint | None:
    """Chippe-style constraint-driven search: the *smallest* unit count
    whose design meets ``target_cycles``.

    §3.1.1: "first choosing a resource limit, then scheduling, then
    changing the limit based on the results of the scheduling,
    rescheduling and so on until a satisfactory design has been found."
    Cycle counts are monotone non-increasing in the unit budget here,
    so the loop is a binary search.  Returns None when even
    ``max_units`` cannot meet the target.
    """
    base = options or SynthesisOptions()

    def build(limit: int) -> DesignPoint:
        if isinstance(source_or_factory, str):
            cdfg = compile_source(source_or_factory)
        else:
            cdfg = source_or_factory()
        point_options = SynthesisOptions(
            scheduler=base.scheduler,
            allocator=base.allocator,
            model=base.model,
            constraints=ResourceConstraints({resource_class: limit}),
            optimize_ir=base.optimize_ir,
            unroll=base.unroll,
            tree_height=base.tree_height,
            library=base.library,
        )
        design = synthesize_cdfg(cdfg, point_options)
        cycles = measure_cycles(design, vectors)
        timing = estimate_timing(design, cycles)
        return DesignPoint(
            constraints=point_options.constraints,
            design=design,
            area=estimate_area(design).total,
            cycles=cycles,
            clock_ns=timing.clock_ns,
        )

    low, high = 1, max_units
    best: DesignPoint | None = None
    ceiling = build(high)
    if ceiling.cycles > target_cycles:
        return None
    best = ceiling
    while low < high:
        middle = (low + high) // 2
        point = build(middle)
        if point.cycles <= target_cycles:
            best = point
            high = middle
        else:
            low = middle + 1
    return best


def explore_fu_range(
    source_or_factory: str | Callable[[], CDFG],
    fu_limits: Sequence[int],
    resource_class: str = "fu",
    options: SynthesisOptions | None = None,
    vectors: Sequence[dict] | None = None,
) -> ExplorationResult:
    """Sweep a functional-unit limit and collect the trade-off curve.

    Args:
        source_or_factory: BSL text, or a callable returning a fresh
            CDFG (synthesis mutates its input).
        fu_limits: unit counts to try for ``resource_class``.
        resource_class: the constrained class (default "fu").
        options: base options; the constraint field is overridden per
            point.
        vectors: inputs for cycle measurement (default: generated).
    """
    base = options or SynthesisOptions()
    result = ExplorationResult()
    for limit in fu_limits:
        if isinstance(source_or_factory, str):
            cdfg = compile_source(source_or_factory)
        else:
            cdfg = source_or_factory()
        point_options = SynthesisOptions(
            scheduler=base.scheduler,
            allocator=base.allocator,
            model=base.model,
            constraints=ResourceConstraints({resource_class: limit}),
            optimize_ir=base.optimize_ir,
            unroll=base.unroll,
            tree_height=base.tree_height,
            library=base.library,
        )
        design = synthesize_cdfg(cdfg, point_options)
        cycles = measure_cycles(design, vectors)
        timing = estimate_timing(design, cycles)
        area = estimate_area(design).total
        result.points.append(
            DesignPoint(
                constraints=point_options.constraints,
                design=design,
                area=area,
                cycles=cycles,
                clock_ns=timing.clock_ns,
            )
        )
    return result
