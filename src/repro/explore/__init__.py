"""Design-space exploration (paper §1.2 / §3.1.1 iteration loops)."""

from .dse import (
    DesignPoint,
    ExplorationResult,
    explore_fu_range,
    measure_cycles,
    search_for_latency,
)

__all__ = [
    "DesignPoint",
    "ExplorationResult",
    "explore_fu_range",
    "measure_cycles",
    "search_for_latency",
]
