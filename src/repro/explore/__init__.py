"""Design-space exploration (paper §1.2 / §3.1.1 iteration loops)."""

from .directives import (
    DirectiveConfig,
    DirectiveExplorationResult,
    DirectivePoint,
    default_directive_space,
    explore_directives,
)
from .dse import (
    DesignPoint,
    ExplorationResult,
    explore_fu_range,
    measure_cycles,
    search_for_latency,
)
from .parallel import ParallelExplorer

__all__ = [
    "DesignPoint",
    "DirectiveConfig",
    "DirectiveExplorationResult",
    "DirectivePoint",
    "ExplorationResult",
    "ParallelExplorer",
    "default_directive_space",
    "explore_directives",
    "explore_fu_range",
    "measure_cycles",
    "search_for_latency",
]
