"""Design-space exploration (paper §1.2 / §3.1.1 iteration loops)."""

from .dse import (
    DesignPoint,
    ExplorationResult,
    explore_fu_range,
    measure_cycles,
    search_for_latency,
)
from .parallel import ParallelExplorer

__all__ = [
    "DesignPoint",
    "ExplorationResult",
    "ParallelExplorer",
    "explore_fu_range",
    "measure_cycles",
    "search_for_latency",
]
