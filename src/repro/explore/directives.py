"""Directive-space design exploration with an estimator-pruned funnel.

The FU sweep of :mod:`repro.explore.dse` varies one axis the paper's
§3.1.1 loop iterates on — the resource budget.  The transform
*directives* the paper itself motivates (loop unrolling §2,
if-conversion, tree-height reduction) plus the scheduler/allocator
choice span a much larger space; crossing all of them with FU limits
exhaustively would run the full synthesize+measure pipeline per cell.

:func:`explore_directives` searches that cross-product through a
ScaleHLS-style multi-level funnel instead:

1. **Estimate** — each transform variant is compiled and optimized
   once into a template; structurally identical templates are deduped
   (a directive that does not fire produces the very same graph), and
   the cheap :class:`~repro.estimation.QoRModel` bounds prune
   (config, limit) cells whose estimate is dominated.
2. **Schedule-only** — survivors get a real per-block schedule (no
   allocation, binding, controller or simulation) and are pruned again
   on (scheduled latency, estimated area).
3. **Full pipeline** — finalists run synthesize+measure through the
   regular :class:`~repro.explore.dse._PointBuilder` machinery: the
   two-tier design cache, measurement memoization, and — with
   ``n_jobs > 1`` — the fault-tolerant :mod:`repro.exec` fan-out.

Pruning at levels 1–2 is *heuristic* (the area figure is not a bound,
and estimates cannot see scheduler quality); ``prune_margin`` trades
exploration completeness against full-pipeline runs.  Dedup at level 1
is exact — identical graphs synthesize identically.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field, replace
from typing import Sequence

from ..core.engine import SCHEDULERS, SynthesisOptions
from ..errors import HLSError, SchedulingError
from ..estimation import DEFAULT_RANKING_TRIPS, QoRModel
from ..ir.cdfg import (
    CDFG,
    BlockRegion,
    IfRegion,
    LoopRegion,
    Region,
    SeqRegion,
)
from ..obs import histogram_deltas, metrics, trace_span
from ..obs import ledger as run_ledger
from ..scheduling import ResourceConstraints, UniversalFUModel
from .dse import (
    DesignPoint,
    ExplorationResult,
    _map_points,
    _PointBuilder,
)

#: Scheduler/allocator axes the default directive space sweeps.  Kept
#: deliberately small: every entry multiplies the cross-product the
#: funnel must prune back down.
DEFAULT_SCHEDULERS = ("list", "force-directed")
DEFAULT_ALLOCATORS = ("left-edge",)


@dataclass(frozen=True)
class DirectiveConfig:
    """One point of the directive axis: transform switches plus the
    scheduler/allocator pair (the knobs of
    :class:`~repro.core.engine.SynthesisOptions` a pragma could set)."""

    unroll: bool = False
    tree_height: bool = False
    if_conversion: bool = False
    scheduler: str = "list"
    allocator: str = "left-edge"

    @property
    def transforms(self) -> tuple[bool, bool, bool]:
        """The template-shaping switches (scheduler excluded)."""
        return (self.unroll, self.tree_height, self.if_conversion)

    def apply(self, base: SynthesisOptions) -> SynthesisOptions:
        """``base`` with this configuration's knobs applied."""
        return replace(
            base,
            unroll=self.unroll,
            tree_height=self.tree_height,
            if_conversion=self.if_conversion,
            scheduler=self.scheduler,
            allocator=self.allocator,
        )

    def label(self) -> str:
        parts = [
            name
            for enabled, name in (
                (self.unroll, "unroll"),
                (self.tree_height, "tree"),
                (self.if_conversion, "ifconv"),
            )
            if enabled
        ]
        transforms = "+".join(parts) or "plain"
        return f"{transforms}/{self.scheduler}/{self.allocator}"


def default_directive_space(
    schedulers: Sequence[str] = DEFAULT_SCHEDULERS,
    allocators: Sequence[str] = DEFAULT_ALLOCATORS,
) -> list[DirectiveConfig]:
    """The full cross-product: 8 transform combinations × schedulers ×
    allocators, in deterministic order."""
    return [
        DirectiveConfig(
            unroll=unroll,
            tree_height=tree_height,
            if_conversion=if_conversion,
            scheduler=scheduler,
            allocator=allocator,
        )
        for unroll in (False, True)
        for tree_height in (False, True)
        for if_conversion in (False, True)
        for scheduler in schedulers
        for allocator in allocators
    ]


@dataclass
class DirectivePoint(DesignPoint):
    """A design point that remembers which directives produced it."""

    config: DirectiveConfig = field(default_factory=DirectiveConfig)

    def row(self) -> str:
        return f"{self.config.label():<32} {super().row()}"


@dataclass
class DirectiveExplorationResult(ExplorationResult):
    """Exploration result plus the funnel's pruning accounting."""

    #: Cell bookkeeping: ``exhaustive`` (config × limit cells),
    #: ``duplicates_pruned`` / ``estimate_pruned`` /
    #: ``schedule_pruned`` / ``schedule_failed`` per funnel level,
    #: ``configs_pruned`` (their sum) and ``configs_evaluated`` (cells
    #: that ran the full pipeline).
    funnel: dict = field(default_factory=dict)

    def table(self) -> str:
        lines = [super().table()]
        if self.funnel:
            f = self.funnel
            lines.append(
                f" funnel: {f['exhaustive']} cells -> "
                f"{f['configs_evaluated']} full evaluations "
                f"({f['duplicates_pruned']} duplicate, "
                f"{f['estimate_pruned']} estimate-pruned, "
                f"{f['schedule_pruned']} schedule-pruned)"
            )
        return "\n".join(lines)


def _region_signature(region: Region, block_pos: dict[int, int]) -> tuple:
    if isinstance(region, BlockRegion):
        return ("b", block_pos[region.block.id])
    if isinstance(region, SeqRegion):
        return ("s",) + tuple(
            _region_signature(item, block_pos) for item in region.items
        )
    if isinstance(region, IfRegion):
        return (
            "if",
            block_pos[region.cond_block.id],
            _region_signature(region.then_region, block_pos),
            _region_signature(region.else_region, block_pos)
            if region.else_region is not None else None,
        )
    if isinstance(region, LoopRegion):
        return (
            "loop",
            block_pos[region.test_block.id],
            region.test_in_body,
            region.exit_on_true,
            region.trip_count,
            _region_signature(region.body, block_pos),
        )
    raise TypeError(f"unknown region {region!r}")


def _cdfg_signature(cdfg: CDFG) -> tuple:
    """Position-based structural identity of an optimized CDFG.

    Two CDFGs with equal signatures are the same graph up to the
    process-global id counters, and the deterministic pipeline
    synthesizes them identically — the funnel's exact dedup relies on
    this.  Conservative by construction: every op kind, attribute,
    type, operand wiring and the whole region tree participate.
    """
    blocks = list(cdfg.blocks())
    block_pos = {block.id: index for index, block in enumerate(blocks)}
    op_pos: dict[int, tuple[int, int]] = {}
    for b, block in enumerate(blocks):
        for i, op in enumerate(block.ops):
            op_pos[op.id] = (b, i)

    def value_ref(value) -> tuple:
        producer = value.producer
        position = op_pos.get(producer.id)
        if position is not None:
            return ("op", *position)
        return ("ext", str(getattr(value, "name", "")),
                str(getattr(value, "type", "")))

    body = []
    for block in blocks:
        ops = tuple(
            (
                op.kind.value,
                tuple(sorted(
                    (key, str(val)) for key, val in op.attrs.items()
                )) if op.attrs else (),
                str(getattr(getattr(op, "result", None), "type", "")),
                tuple(value_ref(operand) for operand in op.operands),
            )
            for op in block.ops
        )
        body.append((block.name, ops))
    return (
        tuple(body),
        _region_signature(cdfg.body, block_pos),
        tuple((port.name, str(port.type)) for port in cdfg.inputs),
        tuple((port.name, str(port.type)) for port in cdfg.outputs),
    )


def _cell_dominates(best: tuple[float, float], other: tuple[float, float],
                    margin: float) -> bool:
    scale = 1.0 + margin
    latency, area = best
    other_latency, other_area = other
    if latency * scale > other_latency or area * scale > other_area:
        return False
    return latency < other_latency or area < other_area


def explore_directives(
    source: str,
    fu_limits: Sequence[int],
    configs: Sequence[DirectiveConfig] | None = None,
    resource_class: str = "fu",
    options: SynthesisOptions | None = None,
    vectors: Sequence[dict] | None = None,
    n_jobs: int | None = 1,
    use_cache: bool = True,
    report: bool = False,
    task_timeout_s: float | None = None,
    prune_margin: float = 0.0,
    ranking_trips: int = DEFAULT_RANKING_TRIPS,
) -> DirectiveExplorationResult:
    """Search directive configurations × FU limits through the funnel.

    Args:
        source: BSL program text (directive DSE needs the compile-once
            template machinery, so unlike :func:`explore_fu_range` a
            CDFG factory is not accepted).
        fu_limits: unit counts to try for ``resource_class``.
        configs: directive configurations (default:
            :func:`default_directive_space`).
        resource_class: the constrained class (default "fu").
        options: base options; each cell derives its own via
            :meth:`DirectiveConfig.apply` plus the constraint.
        vectors: measurement inputs shared by *every* cell (default:
            generated once from the first template, honoring
            ``options.assume_ranges``) — comparable measurements
            across configs require identical vectors.
        n_jobs / use_cache / report / task_timeout_s: exactly as in
            :func:`explore_fu_range`; they govern the full-pipeline
            level only.
        prune_margin: estimate-dominance slack — a cell is pruned only
            when another cell beats it by this relative margin on both
            axes.  0 prunes on any strict dominance; raise it to keep
            near-dominated cells in play.
        ranking_trips: trip count the ranking latency assumes for
            unknown-trip loops.

    Returns a :class:`DirectiveExplorationResult`; its ``funnel`` dict
    carries the per-level pruning accounting that also lands in the
    ``dse.configs.pruned`` / ``dse.configs.evaluated`` metrics and the
    ledger record (kind ``explore-directives``).
    """
    if not isinstance(source, str):
        raise HLSError(
            "explore_directives needs behavioral source text, not a "
            "CDFG factory"
        )
    base = options or SynthesisOptions()
    configs = list(configs) if configs is not None else \
        default_directive_space()
    for config in configs:
        if config.scheduler not in SCHEDULERS:
            raise HLSError(f"unknown scheduler {config.scheduler!r}")
    limits = list(fu_limits)
    exhaustive = len(configs) * len(limits)
    model = base.model or UniversalFUModel()

    result = DirectiveExplorationResult()
    ledger = (None if run_ledger.in_ledger_scope()
              else run_ledger.active_ledger())
    before = (metrics().snapshot()
              if report or ledger is not None else None)
    started = time.perf_counter()

    with run_ledger.ledger_scope():
        with trace_span("dse.directives", configs=len(configs),
                        limits=len(limits)):
            funnel = _run_funnel(
                source, limits, configs, resource_class, base, vectors,
                n_jobs, use_cache, task_timeout_s, prune_margin,
                ranking_trips, model, result,
            )
    wall_s = time.perf_counter() - started

    funnel["exhaustive"] = exhaustive
    funnel["configs_pruned"] = (
        funnel["duplicates_pruned"] + funnel["estimate_pruned"]
        + funnel["schedule_pruned"] + funnel["schedule_failed"]
    )
    result.funnel = funnel
    metrics().counter("dse.configs.pruned").inc(funnel["configs_pruned"])
    metrics().counter("dse.configs.evaluated").inc(
        funnel["configs_evaluated"]
    )

    if report:
        after = metrics().snapshot()
        deltas = {
            key: value - before["counters"].get(key, 0)
            for key, value in after["counters"].items()
            if value - before["counters"].get(key, 0) != 0
        }
        result.telemetry = {
            "wall_s": wall_s,
            "counters": deltas,
            "histograms": {
                key: hist.summary()
                for key, hist in histogram_deltas(before, after).items()
            },
        }
    if ledger is not None and result.points:
        best = min(result.points, key=lambda p: (p.latency_ns, p.area))
        from ..core.engine import source_digest

        record = run_ledger.build_record(
            "explore-directives", best.design.cdfg.name,
            design=best.design,
            source_digest=source_digest(source),
            options=base,
            metrics_before=before,
            wall_s=wall_s,
            extra={
                "resource_class": resource_class,
                "limits": list(limits),
                "configs": len(configs),
                "exhaustive": exhaustive,
                "configs_pruned": funnel["configs_pruned"],
                "configs_evaluated": funnel["configs_evaluated"],
                "funnel": {
                    key: funnel[key]
                    for key in ("duplicates_pruned", "estimate_pruned",
                                "schedule_pruned", "schedule_failed")
                },
                "pareto": len(result.pareto),
                "failures": len(result.failures),
                "points": [
                    {
                        "config": p.config.label(),
                        "constraints": str(p.constraints),
                        "area": round(p.area, 3),
                        "cycles": p.cycles,
                        "clock_ns": round(p.clock_ns, 3),
                    }
                    for p in result.points
                ],
            },
        )
        ledger.append(record)
    return result


def _run_funnel(source, limits, configs, resource_class, base, vectors,
                n_jobs, use_cache, task_timeout_s, prune_margin,
                ranking_trips, model,
                result: DirectiveExplorationResult) -> dict:
    """Levels 1–3; fills ``result`` and returns the funnel counters."""
    # ---- Level 1a: one template per transform combination, deduped
    # by structure (a directive that does not fire changes nothing).
    builders: dict[tuple, _PointBuilder] = {}
    signature_of: dict[tuple, tuple] = {}
    canonical: dict[tuple, tuple] = {}  # signature -> owning transforms
    for config in configs:
        transforms = config.transforms
        if transforms in builders:
            continue
        builder = _PointBuilder(
            source, resource_class, config.apply(base), vectors,
            use_cache,
        )
        signature = _cdfg_signature(builder._working_cdfg())
        builders[transforms] = builder
        signature_of[transforms] = signature
        canonical.setdefault(signature, transforms)

    # Shared measurement vectors: one batch for every cell.
    first = builders[configs[0].transforms]
    first.ensure_vectors()
    shared_vectors = first.vectors

    # Level 1b: claim one config per (signature, scheduler, allocator)
    # — the rest are exact duplicates.
    claimed: dict[tuple, DirectiveConfig] = {}
    duplicates = 0
    for config in configs:
        signature = signature_of[config.transforms]
        key = (canonical[signature], config.scheduler, config.allocator)
        if key in claimed:
            duplicates += len(limits)
            continue
        claimed[key] = config

    # Level 1c: estimate-dominance pruning over (config, limit) cells.
    qor_models: dict[tuple, QoRModel] = {}
    estimates: dict[tuple, tuple] = {}
    cells = []
    for (transforms, _, _), config in claimed.items():
        if transforms not in qor_models:
            qor_models[transforms] = QoRModel(
                builders[transforms]._working_cdfg(),
                model=model, library=base.library,
                ranking_trips=ranking_trips,
            )
        for limit in limits:
            cell_key = (transforms, limit)
            if cell_key not in estimates:
                constraints = ResourceConstraints(
                    {resource_class: limit}
                )
                estimate = qor_models[transforms].estimate(constraints)
                estimates[cell_key] = (
                    float(estimate.latency_csteps), estimate.area
                )
            cells.append((config, transforms, limit))
    distinct = sorted(set(estimates.values()))
    survivors, estimate_pruned = [], 0
    for cell in cells:
        _, transforms, limit = cell
        mine = estimates[(transforms, limit)]
        if any(_cell_dominates(other, mine, prune_margin)
               for other in distinct):
            estimate_pruned += 1
            continue
        survivors.append(cell)

    # ---- Level 2: schedule-only evaluation of the survivors.
    metrics().counter("dse.configs.schedule_evaluated").inc(
        len(survivors)
    )
    scheduled: dict[tuple, float] = {}
    schedule_failed = 0
    finalists = []
    failed_cells = []
    for config, transforms, limit in survivors:
        builder = builders[transforms]
        qor_model = qor_models[transforms]
        key = (transforms, limit, config.scheduler)
        if key not in scheduled:
            scheduled[key] = _schedule_latency(
                builder, qor_model, config.scheduler, resource_class,
                limit, model,
            )
        latency = scheduled[key]
        if latency is None:
            schedule_failed += 1
            failed_cells.append((config, limit))
            continue
        finalists.append((config, transforms, limit, latency))
    level2 = [
        (latency, estimates[(transforms, limit)][1])
        for _, transforms, limit, latency in finalists
    ]
    distinct2 = sorted(set(level2))
    kept, schedule_pruned = [], 0
    for (config, transforms, limit, latency), mine in zip(finalists,
                                                          level2):
        if any(_cell_dominates(other, mine, prune_margin)
               for other in distinct2):
            schedule_pruned += 1
            continue
        kept.append((config, transforms, limit))

    # ---- Level 3: full synthesize+measure per surviving cell, per
    # config, through the regular point-builder machinery (two-tier
    # cache, measurement memoization, repro.exec fan-out).
    evaluated = 0
    by_config: dict[DirectiveConfig, tuple[tuple, list]] = {}
    for config, transforms, limit in kept:
        by_config.setdefault(config, (transforms, []))[1].append(limit)
    for config, (transforms, config_limits) in by_config.items():
        template_builder = builders[transforms]
        cfg_builder = _PointBuilder(
            source, resource_class, config.apply(base),
            shared_vectors, use_cache,
        )
        # Share the combo's compiled template and per-block problem
        # structure — compile-once caching survives differing
        # directives because each combo owns exactly one template.
        cfg_builder._working = template_builder._working
        cfg_builder._problem_cache = template_builder._problem_cache
        points, failures = _map_points(
            cfg_builder, config_limits, n_jobs, task_timeout_s
        )
        evaluated += len(config_limits)
        result.points.extend(
            DirectivePoint(
                constraints=point.constraints,
                design=point.design,
                area=point.area,
                cycles=point.cycles,
                clock_ns=point.clock_ns,
                config=config,
            )
            for point in points
        )
        result.failures.extend(failures)
    return {
        "configs": len(configs),
        "limits": len(limits),
        "duplicates_pruned": duplicates,
        "estimate_pruned": estimate_pruned,
        "schedule_pruned": schedule_pruned,
        "schedule_failed": schedule_failed,
        "configs_evaluated": evaluated,
    }


def _schedule_latency(builder: _PointBuilder, qor_model: QoRModel,
                      scheduler_name: str, resource_class: str,
                      limit: int | None, model) -> float | None:
    """Rank one (template, limit, scheduler) cell by scheduling every
    block — no allocation, binding, controller or simulation.

    Problems land in the builder's ``problem_cache`` so the full
    pipeline reuses the dependence graphs.  Returns None when the
    scheduler cannot produce a legal schedule under the constraint
    (e.g. ASAP under a resource limit).
    """
    from ..scheduling import SchedulingProblem

    cdfg = builder._working_cdfg()
    constraints = ResourceConstraints({resource_class: limit})
    factory = SCHEDULERS[scheduler_name]
    lengths: dict[int, int] = {}
    for block in cdfg.blocks():
        if not block.ops:
            continue
        problem = builder._problem_cache.get(block.id)
        if problem is None:
            problem = SchedulingProblem.from_block(block, model)
            builder._problem_cache[block.id] = problem
        constrained = problem.with_constraints(constraints)
        try:
            schedule = factory(constrained).schedule()
            schedule.validate()
        except (SchedulingError, HLSError):
            return None
        lengths[block.id] = schedule.length
    return float(qor_model.aggregate_latency(lengths, minimum=False))
