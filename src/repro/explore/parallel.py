"""Parallel fan-out of design-point synthesis.

§1.2's promise — "produce several designs for the same specification
in a reasonable amount of time" — is embarrassingly parallel across
resource limits: each design point is an independent synthesis run.
:class:`ParallelExplorer` distributes points over a
:class:`~concurrent.futures.ProcessPoolExecutor`; each worker compiles
a behavioral source at most once (a per-process template memo keyed by
source digest) and deep-clones the CDFG per point, mirroring the
serial compile-once path, so the resulting points are identical to a
serial sweep.

The pool is an optimization, never a requirement: one worker, an
unpicklable work item (e.g. a closure CDFG factory), or any pool
failure silently degrades to the in-process serial path — where a
genuine synthesis error then surfaces with its ordinary traceback.
"""

from __future__ import annotations

import os
import pickle
from concurrent.futures import ProcessPoolExecutor
from dataclasses import replace
from typing import Sequence

from ..core.engine import synthesize_cdfg
from ..estimation import estimate_area, estimate_timing
from ..ir.cdfg import CDFG
from ..lang import compile_source
from ..obs import (
    metrics,
    reset_metrics,
    trace_span,
    tracer,
    tracing,
    tracing_enabled,
)
from ..transforms import clone_cdfg, optimize
from .dse import DesignPoint, _PointBuilder, measure_cycles

#: Per-worker-process compiled templates, keyed by source digest.
_WORKER_TEMPLATES: dict[str, CDFG] = {}


def _build_point_task(payload: dict) -> tuple[DesignPoint, list, dict]:
    """Worker-side build of one design point (module-level: must be
    importable by pickle in the worker process).

    Returns ``(point, spans, metrics_snapshot)``: worker processes are
    reused across points, so each task resets its process-local
    tracer/registry first and ships exactly its own telemetry home —
    the parent merges spans under its open ``dse.sweep`` span and
    folds the counters into its registry, keeping parallel counter
    totals equal to a serial sweep's.
    """
    reset_metrics()
    tracer().clear()
    with tracing(payload.get("trace", False) or tracing_enabled()):
        with trace_span("dse.point",
                        resource=payload["resource_class"],
                        limit=payload["limit"]):
            metrics().counter("dse.points.evaluated").inc()
            point = _build_point(payload)
    return point, tracer().records(), metrics().snapshot()


def _build_point(payload: dict) -> DesignPoint:
    source = payload["source"]
    options = payload["options"].with_constraints(
        {payload["resource_class"]: payload["limit"]}
    )
    if source is not None:
        digest = payload["digest"]
        template = _WORKER_TEMPLATES.get(digest)
        if template is None:
            template = compile_source(source)
            if options.optimize_ir:
                optimize(template, unroll=options.unroll,
                         tree_height=options.tree_height)
            _WORKER_TEMPLATES[digest] = template
        # The memoized template is already optimized; each point gets
        # a fresh deep clone to synthesize.
        cdfg = clone_cdfg(template)
        options = replace(options, optimize_ir=False)
    else:
        cdfg = payload["factory"]()
    design = synthesize_cdfg(cdfg, options)
    metrics().counter("dse.measurements.run").inc()
    cycles = measure_cycles(design, payload["vectors"])
    timing = estimate_timing(design, cycles)
    return DesignPoint(
        constraints=options.constraints,
        design=design,
        area=estimate_area(design).total,
        cycles=cycles,
        clock_ns=timing.clock_ns,
    )


class ParallelExplorer:
    """Fans design points out over a process pool.

    Args:
        max_workers: worker process count; ``None`` means one per CPU.
            A value of one (or an empty batch) skips the pool entirely.
    """

    def __init__(self, max_workers: int | None = None) -> None:
        if max_workers is None or max_workers < 1:
            max_workers = os.cpu_count() or 1
        self.max_workers = max_workers

    def build_points(self, builder: _PointBuilder,
                     limits: Sequence[int]) -> list[DesignPoint]:
        """One measured :class:`DesignPoint` per limit, in input order.

        Results are identical to ``[builder.build(l) for l in limits]``
        — the serial path is also the fallback when the pool cannot be
        used or fails.
        """
        limits = list(limits)
        if not limits or self.max_workers <= 1 or len(limits) == 1:
            return [builder.build(limit) for limit in limits]

        source_or_factory = builder.source_or_factory
        is_source = isinstance(source_or_factory, str)
        payloads = [
            {
                "source": source_or_factory if is_source else None,
                "factory": None if is_source else source_or_factory,
                "digest": builder._digest,
                "options": builder.base,
                "resource_class": builder.resource_class,
                "limit": limit,
                "vectors": builder.vectors,
                "trace": tracing_enabled() or builder.base.trace,
            }
            for limit in limits
        ]
        try:
            pickle.dumps(payloads[0])
        except Exception:
            return [builder.build(limit) for limit in limits]
        try:
            workers = min(self.max_workers, len(limits))
            with ProcessPoolExecutor(max_workers=workers) as pool:
                results = list(pool.map(_build_point_task, payloads))
        except Exception:
            # Pool or pickling-of-results trouble: redo serially; a
            # genuine synthesis error re-raises here with full context.
            return [builder.build(limit) for limit in limits]
        points = []
        for point, spans, snapshot in results:
            # Worker telemetry lands in the parent in input order, so
            # the merged registry and trace are deterministic.
            metrics().merge(snapshot)
            if spans and tracing_enabled():
                tracer().merge(spans, parent=tracer().current_index())
            points.append(point)
        return points
