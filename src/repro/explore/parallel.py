"""Parallel fan-out of design-point synthesis.

§1.2's promise — "produce several designs for the same specification
in a reasonable amount of time" — is embarrassingly parallel across
resource limits: each design point is an independent synthesis run.
:class:`ParallelExplorer` distributes points over a process pool via
the fault-tolerant :mod:`repro.exec` runtime; each worker compiles a
behavioral source at most once (a per-process template memo keyed by
source digest plus every graph-shaping option knob) and synthesizes
every point against that shared CDFG, mirroring the serial
compile-once path, so the resulting points are identical to a serial
sweep.

The pool is an optimization, never a correctness hazard.  Failure
semantics (see ``docs/resilience.md``):

* points that completed are **always kept** — no failure elsewhere in
  the sweep ever discards or re-synthesizes them;
* a crashed or hung worker only costs its own point: the runtime
  respawns the pool, retries retryable faults with backoff, and
  rebuilds quarantined points **serially in the parent**;
* a genuine synthesis error surfaces exactly once, as a structured
  :class:`~repro.exec.TaskFailure` carrying the original worker
  traceback — it is never blindly re-executed;
* an unpicklable work item (e.g. a closure CDFG factory) or an
  environment without subprocess support degrades to the in-process
  serial path, exactly as before.
"""

from __future__ import annotations

import os
import pickle
from dataclasses import replace
from typing import Sequence

from ..core.engine import synthesize_cdfg
from ..estimation import estimate_area, estimate_timing
from ..exec import TaskFailure, default_timeout_s, run_tasks
from ..ir.cdfg import CDFG
from ..lang import compile_source
from ..obs import (
    metrics,
    reset_metrics,
    trace_span,
    tracer,
    tracing,
    tracing_enabled,
)
from ..store import DesignStore, active_store, store_key
from ..transforms import optimize
from .dse import DesignPoint, _PointBuilder, measure_cycles

#: Per-worker-process compiled templates, keyed by source digest plus
#: every option knob that shapes the optimized graph — directive DSE
#: runs points with *different* transform directives over one source,
#: and each variant needs its own template.
_WORKER_TEMPLATES: dict[tuple, CDFG] = {}


def _template_key(digest: str, options) -> tuple:
    return (
        digest,
        options.optimize_ir,
        options.unroll,
        options.tree_height,
        options.if_conversion,
        options.narrow,
        options.assume_ranges,
    )


def _build_point_task(payload: dict) -> tuple[DesignPoint, list, dict]:
    """Worker-side build of one design point (module-level: must be
    importable by pickle in the worker process).

    Returns ``(point, spans, metrics_snapshot)``: worker processes are
    reused across points, so each task resets its process-local
    tracer/registry first and ships exactly its own telemetry home —
    the parent merges spans under its open ``dse.sweep`` span and
    folds the counters into its registry, keeping parallel counter
    totals equal to a serial sweep's.  A task that dies or times out
    ships nothing, so partial attempts never pollute the merged
    totals.
    """
    reset_metrics()
    tracer().clear()
    with tracing(payload.get("trace", False) or tracing_enabled()):
        with trace_span("dse.point",
                        resource=payload["resource_class"],
                        limit=payload["limit"]):
            metrics().counter("dse.points.evaluated").inc()
            point = _build_point(payload)
    return point, tracer().records(), metrics().snapshot()


def _worker_store(store_dir: str | None) -> DesignStore | None:
    """The store this worker should consult.

    The parent resolves its active store once and ships the directory
    in every payload — so programmatic configuration crosses the
    process boundary, and a parent that disabled caching disables it
    for its workers too (no env fallback here)."""
    if store_dir:
        return DesignStore(store_dir)
    return None


def _build_point(payload: dict) -> DesignPoint:
    source = payload["source"]
    options = payload["options"].with_constraints(
        {payload["resource_class"]: payload["limit"]}
    )
    design = None
    store = None
    key = None
    if source is not None:
        store = _worker_store(payload.get("store_dir"))
        if store is not None:
            # Same key the parent's serial path derives: constraints
            # applied, the optimize_ir knob still as requested.
            key = store_key(payload["digest"], None, options)
        if key is not None:
            design = store.get(key)
    if design is None:
        if source is not None:
            template_key = _template_key(payload["digest"], options)
            template = _WORKER_TEMPLATES.get(template_key)
            if template is None:
                template = compile_source(source)
                if options.optimize_ir:
                    optimize(template, unroll=options.unroll,
                             tree_height=options.tree_height,
                             if_conversion=options.if_conversion)
                if options.narrow:
                    from ..transforms.narrow import RangeNarrowing

                    assume = {
                        name: (lo, hi)
                        for name, lo, hi in options.assume_ranges
                    }
                    RangeNarrowing(assume=assume).run(template)
                _WORKER_TEMPLATES[template_key] = template
            # The memoized template is already optimized and narrowed.
            # Synthesize it directly, exactly like the serial
            # compile-once path: the pipeline only reads the CDFG after
            # IR optimization, and a clone would renumber op ids —
            # scheduler tie-breaking follows id order, so a cloned
            # graph can legally schedule differently and break the
            # points-identical-to-serial contract (tree-height graphs
            # trip this in practice).
            cdfg = template
            run_options = replace(options, optimize_ir=False,
                                  narrow=False)
        else:
            cdfg = payload["factory"]()
            run_options = options
        design = synthesize_cdfg(cdfg, run_options)
        if key is not None:
            store.put(key, design, fault_spec=options.fault_spec)
    metrics().counter("dse.measurements.run").inc()
    cycles = measure_cycles(design, payload["vectors"])
    timing = estimate_timing(design, cycles)
    return DesignPoint(
        constraints=options.constraints,
        design=design,
        area=estimate_area(design).total,
        cycles=cycles,
        clock_ns=timing.clock_ns,
    )


class ParallelExplorer:
    """Fans design points out over a process pool.

    Args:
        max_workers: worker process count.  ``None`` means one per
            CPU; ``1`` always takes the in-process serial path (no
            pool is ever spawned).  Zero and negative counts are a
            :class:`ValueError` — they used to silently mean
            one-per-CPU, contradicting this docstring.
        timeout_s: per-point wall-clock budget once a point starts on
            a worker.  Defaults to env ``REPRO_TASK_TIMEOUT_S`` when
            set, else no timeout.
        max_retries: pool resubmissions per point for retryable
            faults (worker crash, pool breakage, unpicklable result).
        backoff_s: base of the exponential retry backoff.
    """

    def __init__(self, max_workers: int | None = None, *,
                 timeout_s: float | None = None,
                 max_retries: int = 2,
                 backoff_s: float = 0.05) -> None:
        if max_workers is None:
            max_workers = os.cpu_count() or 1
        elif max_workers < 1:
            raise ValueError(
                f"max_workers must be >= 1 (or None for one per "
                f"CPU), got {max_workers}"
            )
        self.max_workers = max_workers
        self.timeout_s = (
            timeout_s if timeout_s is not None else default_timeout_s()
        )
        self.max_retries = max_retries
        self.backoff_s = backoff_s

    def build_points(
        self, builder: _PointBuilder, limits: Sequence[int],
    ) -> tuple[list[DesignPoint], list[TaskFailure]]:
        """Measured :class:`DesignPoint`\\ s per limit, in input order.

        Returns ``(points, failures)``.  Completed points are
        identical to ``[builder.build(l) for l in limits]``; a limit
        appears in ``failures`` (and not in ``points``) only when its
        pool attempts were exhausted *and* the parent-side serial
        rebuild failed — or when the task raised a genuine synthesis
        error, which is reported once with its original traceback
        rather than run a second time.
        """
        limits = list(limits)
        if not limits or self.max_workers <= 1 or len(limits) == 1:
            return [builder.build(limit) for limit in limits], []

        source_or_factory = builder.source_or_factory
        is_source = isinstance(source_or_factory, str)
        # Materialize the sweep vectors in the parent (assume contract
        # applied) so every worker measures the same inputs the serial
        # path would.
        builder.ensure_vectors()
        store = active_store() if builder.use_cache else None
        payloads = [
            {
                "source": source_or_factory if is_source else None,
                "factory": None if is_source else source_or_factory,
                "digest": builder._digest,
                "options": builder.base,
                "resource_class": builder.resource_class,
                "limit": limit,
                "vectors": builder.vectors,
                "trace": tracing_enabled() or builder.base.trace,
                "store_dir": (
                    str(store.root) if store is not None else None
                ),
            }
            for limit in limits
        ]
        try:
            pickle.dumps(payloads[0])
        except Exception:
            # Unpicklable work item (e.g. a closure factory): the pool
            # can never run it — degrade to the serial path up front.
            metrics().counter("exec.tasks.degraded").inc(len(limits))
            return [builder.build(limit) for limit in limits], []

        batch = run_tasks(
            _build_point_task,
            payloads,
            labels=[str(limit) for limit in limits],
            max_workers=min(self.max_workers, len(limits)),
            timeout_s=self.timeout_s,
            max_retries=self.max_retries,
            backoff_s=self.backoff_s,
            # Quarantined points (crash/timeout/unpicklable) are
            # rebuilt serially in the parent — only them, never the
            # points that already completed.
            fallback=lambda payload, index: builder.build(
                limits[index]
            ),
            fault_spec=builder.base.fault_spec,
        )

        points: list[DesignPoint] = []
        failures: list[TaskFailure] = []
        for outcome in batch.outcomes:
            if outcome.failure is not None:
                failures.append(outcome.failure)
                continue
            if outcome.degraded:
                # Built by builder.build in this process: telemetry
                # already landed in the parent registry/tracer.
                points.append(outcome.value)
                continue
            point, spans, snapshot = outcome.value
            # Worker telemetry lands in the parent in input order, so
            # the merged registry and trace are deterministic.
            metrics().merge(snapshot)
            if spans and tracing_enabled():
                tracer().merge(spans, parent=tracer().current_index())
            points.append(point)
        return points, failures
