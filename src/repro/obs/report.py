"""Human-readable reporting over recorded spans and metrics.

:func:`profile_table` turns one traced synthesis run into the
per-stage timing table ``repro profile`` prints; :func:`stage_totals`
is the aggregation behind it (also used by the perf harness to embed
stage breakdowns into ``BENCH_dse.json``);
:func:`telemetry_summary` renders the counter deltas a DSE sweep
collected when called with ``report=True``.
"""

from __future__ import annotations

from typing import Iterable, Mapping

from .metrics import Histogram
from .tracer import SpanRecord

#: The pipeline stages the profile table reports, in flow order.
#: ``datapath`` (register/interconnect planning) and ``verify`` are
#: part of the flow but not of the paper's canonical six; they only
#: appear in the table when spans for them were recorded.
PIPELINE_STAGES: tuple[str, ...] = (
    "compile",
    "transforms",
    "schedule",
    "allocate",
    "datapath",
    "bind",
    "controller",
    "verify",
)

#: The paper's §2 pipeline — every traced synthesis must produce at
#: least one span for each of these.
CORE_STAGES: tuple[str, ...] = (
    "compile", "transforms", "schedule", "allocate", "bind",
    "controller",
)


def stage_totals(records: Iterable[SpanRecord]) -> dict[str, dict]:
    """Aggregate spans by pipeline stage name.

    Returns ``{stage: {"calls": n, "total_us": t}}`` for every stage
    in :data:`PIPELINE_STAGES` that has at least one span.  Nested
    occurrences of the *same* stage name (e.g. a traced sweep running
    many synthesis runs) all count — callers profile one run at a
    time when they want exclusive percentages.
    """
    totals: dict[str, dict] = {}
    for record in records:
        if record.name not in PIPELINE_STAGES:
            continue
        entry = totals.setdefault(
            record.name, {"calls": 0, "total_us": 0.0}
        )
        entry["calls"] += 1
        entry["total_us"] += record.duration_us
    return totals


def _root_duration(records: list[SpanRecord]) -> float:
    roots = [r for r in records if r.parent is None]
    if roots:
        return sum(r.duration_us for r in roots)
    return sum(r.duration_us for r in records)


def profile_table(records: Iterable[SpanRecord],
                  title: str | None = None,
                  histograms: Mapping[str, Histogram] | None = None,
                  ) -> str:
    """The ``repro profile`` table: per-stage time and share.

    Shares are of the root span's wall time (the whole run), so the
    ``other`` row absorbs whatever the stage spans don't cover
    (I/O, logging, span bookkeeping).  Column layout is stable —
    golden tests mask the duration numbers, not the structure.

    When latency ``histograms`` are passed (canonical metric key →
    :class:`Histogram`), a percentile section follows the table — one
    fixed-width row of interpolated p50/p95/p99 per key.
    """
    records = list(records)
    totals = stage_totals(records)
    root_us = _root_duration(records)
    lines = []
    if title:
        lines.append(title)
    lines.append(f"  {'stage':<12} {'calls':>5} {'time(ms)':>10} "
                 f"{'share':>8}")
    covered_us = 0.0
    for stage in PIPELINE_STAGES:
        entry = totals.get(stage)
        if entry is None:
            continue
        covered_us += entry["total_us"]
        lines.append(_row(stage, str(entry["calls"]),
                          entry["total_us"], root_us))
    other_us = max(0.0, root_us - covered_us)
    lines.append(_row("other", "-", other_us, root_us))
    lines.append(_row("total", "-", root_us, root_us))
    if histograms:
        lines.append(f"  {'latency(ms)':<36} {'count':>6} {'p50':>8} "
                     f"{'p95':>8} {'p99':>8}")
        for key in sorted(histograms):
            hist = histograms[key]
            lines.append(
                f"  {key:<36} {hist.count:>6} {hist.p50:>8.2f} "
                f"{hist.p95:>8.2f} {hist.p99:>8.2f}"
            )
    return "\n".join(lines)


def profile_json(records: Iterable[SpanRecord],
                 histograms: Mapping[str, Histogram] | None = None,
                 **meta) -> dict:
    """The machine-readable twin of :func:`profile_table`.

    Durations are rounded to whole microseconds so the document never
    degenerates into scientific notation, and every mapping is emitted
    in sorted/pipeline order — the same run profiles to the same JSON.
    """
    records = list(records)
    totals = stage_totals(records)
    root_us = _root_duration(records)
    covered_us = sum(entry["total_us"] for entry in totals.values())
    stages = {
        stage: {
            "calls": totals[stage]["calls"],
            "total_us": round(totals[stage]["total_us"], 1),
        }
        for stage in PIPELINE_STAGES
        if stage in totals
    }
    document = dict(meta)
    document["total_us"] = round(root_us, 1)
    document["other_us"] = round(max(0.0, root_us - covered_us), 1)
    document["stages"] = stages
    if histograms is not None:
        document["percentiles"] = {
            key: {
                name: round(value, 4) if isinstance(value, float)
                else value
                for name, value in histograms[key].summary().items()
            }
            for key in sorted(histograms)
        }
    return document


def _row(stage: str, calls: str, dur_us: float, root_us: float) -> str:
    share = (100.0 * dur_us / root_us) if root_us else 0.0
    return (f"  {stage:<12} {calls:>5} {dur_us / 1000.0:>10.2f} "
            f"{share:>7.1f}%")


def telemetry_summary(telemetry: Mapping) -> str:
    """Render a sweep's telemetry dict (wall time + counter deltas,
    plus p50/p95/p99 rows for any histogram deltas it collected)."""
    lines = ["sweep telemetry:"]
    wall_s = telemetry.get("wall_s")
    if wall_s is not None:
        lines.append(f"  {'wall_time_s':<36} {wall_s:>10.3f}")
    for key, value in sorted(telemetry.get("counters", {}).items()):
        lines.append(f"  {key:<36} {value:>10d}")
    for key, summary in sorted(
        telemetry.get("histograms", {}).items()
    ):
        lines.append(
            f"  {key:<36} p50={summary['p50']:.2f} "
            f"p95={summary['p95']:.2f} p99={summary['p99']:.2f} "
            f"(n={summary['count']})"
        )
    return "\n".join(lines)
