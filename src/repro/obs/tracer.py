"""Span-based tracing for the synthesis pipeline.

A *span* is one timed region of the flow — a pipeline stage, a
transform pass, a verify contract, a DSE point — recorded with a
monotonic-clock start/duration, nesting depth and a parent link, so a
finished trace is a forest mirroring the call structure.

Tracing is **off by default** and must cost (almost) nothing while
off: :func:`trace_span` then returns a shared no-op context manager
after a single module-global flag test.  It is enabled either
programmatically (:func:`enable_tracing` / the :func:`tracing` scope)
or by setting ``REPRO_TRACE=1`` in the environment; the engine turns
it on for a run when ``SynthesisOptions(trace=True)`` is set.

Spans are recorded in *start* order (document order), which makes the
flat record list deterministic for a deterministic program.  Worker
processes ship their finished records back to the parent, which
grafts them under a local span with :meth:`Tracer.merge` — timestamps
stay in each worker's own clock domain (they carry the worker's pid,
so exporters keep the domains apart).
"""

from __future__ import annotations

import os
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Iterator


def _env_enabled() -> bool:
    return os.environ.get("REPRO_TRACE", "").lower() not in (
        "", "0", "false", "no",
    )


_ENABLED = _env_enabled()


@dataclass
class SpanRecord:
    """One finished (or still-open) span.

    Timestamps are microseconds of :func:`time.perf_counter_ns`
    relative to the owning tracer's epoch; they are comparable within
    one process only (records keep their ``pid`` for that reason).
    """

    name: str
    index: int
    parent: int | None
    depth: int
    start_us: float
    duration_us: float = 0.0
    pid: int = 0
    attrs: dict[str, Any] = field(default_factory=dict)

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "index": self.index,
            "parent": self.parent,
            "depth": self.depth,
            "start_us": self.start_us,
            "duration_us": self.duration_us,
            "pid": self.pid,
            "attrs": dict(self.attrs),
        }


class _NullSpan:
    """The shared do-nothing span handed out while tracing is off."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc) -> bool:
        return False

    def set(self, **attrs) -> None:
        pass


NULL_SPAN = _NullSpan()


class _Span:
    """A live span: a context manager that closes its record."""

    __slots__ = ("_tracer", "record", "_start_ns")

    def __init__(self, tracer: "Tracer", record: SpanRecord,
                 start_ns: int) -> None:
        self._tracer = tracer
        self.record = record
        self._start_ns = start_ns

    def set(self, **attrs) -> None:
        """Attach attributes to the span while it is open."""
        self.record.attrs.update(attrs)

    def __enter__(self) -> "_Span":
        return self

    def __exit__(self, *exc) -> bool:
        self._tracer._close(self, time.perf_counter_ns())
        return False


class Tracer:
    """Collects spans for one process.

    The tracer keeps records in start order; open spans form a stack
    so nesting depth and parent links come for free.  One process-
    global instance (:func:`tracer`) serves the whole library.
    """

    def __init__(self) -> None:
        self._records: list[SpanRecord] = []
        self._stack: list[_Span] = []
        self._epoch_ns = time.perf_counter_ns()

    # -- recording ------------------------------------------------------

    def start(self, name: str, attrs: dict | None = None) -> _Span:
        now_ns = time.perf_counter_ns()
        parent = self._stack[-1].record.index if self._stack else None
        record = SpanRecord(
            name=name,
            index=len(self._records),
            parent=parent,
            depth=len(self._stack),
            start_us=(now_ns - self._epoch_ns) / 1000.0,
            pid=os.getpid(),
            attrs=dict(attrs) if attrs else {},
        )
        self._records.append(record)
        span = _Span(self, record, now_ns)
        self._stack.append(span)
        return span

    def _close(self, span: _Span, end_ns: int) -> None:
        span.record.duration_us = (end_ns - span._start_ns) / 1000.0
        # Close any forgotten inner spans too (exception unwinds).
        while self._stack and self._stack[-1] is not span:
            inner = self._stack.pop()
            if inner.record.duration_us == 0.0:
                inner.record.duration_us = (
                    (end_ns - inner._start_ns) / 1000.0
                )
        if self._stack and self._stack[-1] is span:
            self._stack.pop()

    # -- reading --------------------------------------------------------

    def records(self) -> list[SpanRecord]:
        """The recorded spans, in start order."""
        return list(self._records)

    def current_index(self) -> int | None:
        """Index of the innermost open span (None outside any span)."""
        return self._stack[-1].record.index if self._stack else None

    def clear(self) -> None:
        self._records.clear()
        self._stack.clear()
        self._epoch_ns = time.perf_counter_ns()

    def __len__(self) -> int:
        return len(self._records)

    # -- cross-process merge --------------------------------------------

    def merge(self, records: list[SpanRecord],
              parent: int | None = None) -> None:
        """Graft another tracer's finished records into this one.

        Args:
            records: the child records, in their original start order
                (indices must be self-consistent: every ``parent``
                refers to an earlier record or is None).
            parent: index of a local span to hang the child's root
                spans under (e.g. the ``dse.point`` span the parent
                opened for that unit of work); None keeps them roots.

        Index remapping is purely positional, so merging the same
        records in the same order is deterministic.
        """
        if not records:
            return
        offset = len(self._records)
        base_depth = 0
        if parent is not None:
            base_depth = self._records[parent].depth + 1
        index_map: dict[int, int] = {}
        for i, record in enumerate(records):
            new_index = offset + i
            index_map[record.index] = new_index
            if record.parent is None:
                new_parent = parent
            else:
                new_parent = index_map.get(record.parent, parent)
            extra_depth = base_depth
            self._records.append(SpanRecord(
                name=record.name,
                index=new_index,
                parent=new_parent,
                depth=record.depth + extra_depth,
                start_us=record.start_us,
                duration_us=record.duration_us,
                pid=record.pid,
                attrs=dict(record.attrs),
            ))


#: The process-global tracer every instrumentation site records into.
_TRACER = Tracer()


def tracer() -> Tracer:
    """The process-global :class:`Tracer`."""
    return _TRACER


def trace_span(name: str, **attrs):
    """Open a span named ``name`` (a context manager).

    The single instrumentation entry point.  While tracing is
    disabled this is one global-flag test plus the return of a shared
    no-op object — cheap enough to leave in every hot path.
    """
    if not _ENABLED:
        return NULL_SPAN
    return _TRACER.start(name, attrs)


def tracing_enabled() -> bool:
    """Is span recording currently on?"""
    return _ENABLED


def enable_tracing() -> None:
    global _ENABLED
    _ENABLED = True


def disable_tracing() -> None:
    global _ENABLED
    _ENABLED = False


@contextmanager
def tracing(enabled: bool = True) -> Iterator[Tracer]:
    """Scope tracing on (or off) for a ``with`` block, then restore."""
    global _ENABLED
    previous = _ENABLED
    _ENABLED = enabled
    try:
        yield _TRACER
    finally:
        _ENABLED = previous


def maybe_tracing(enabled: bool):
    """``tracing(True)`` when asked and not already on; else a no-op.

    The engine's per-run hook: ``SynthesisOptions(trace=True)`` turns
    tracing on for exactly that run without disturbing an outer scope
    that already enabled it.
    """
    if enabled and not _ENABLED:
        return tracing(True)
    return _NULL_SCOPE


class _ReusableNullScope:
    """A reusable, reentrant no-op context manager."""

    __slots__ = ()

    def __enter__(self) -> None:
        return None

    def __exit__(self, *exc) -> bool:
        return False


_NULL_SCOPE = _ReusableNullScope()


def reset_tracing() -> None:
    """Drop all recorded spans and restore the env-derived flag."""
    global _ENABLED
    _TRACER.clear()
    _ENABLED = _env_enabled()
