"""Persistent QoR run ledger: every run leaves a structured record.

The paper frames synthesis as a search over cost/performance
trade-offs, but in-process telemetry evaporates on exit — no run is
comparable to any earlier run.  The ledger fixes that: an append-only
run-history store of one :class:`RunRecord` per synthesis / explore /
fuzz / lint invocation, holding the QoR extracted from the finished
design (schedule latency in control steps, FU counts per kind,
register and mux-input counts, :mod:`repro.estimation` area and
critical-path estimates), the metric deltas of the run, a per-stage
span breakdown, and an environment fingerprint (schema version, source
digest, value-level options token, python/platform) that groups
comparable runs for ``repro report``.

Storage mirrors the design store and fuzz corpus: each record is one
JSONL segment file under ``<ledger>/v<N>/``, named by the record's
content address (a sha256 of its canonical JSON) and published with
:func:`repro.store.atomic.atomic_write_bytes` — concurrent writers
(e.g. two :mod:`repro.exec` workers) race only on the atomic rename,
and a reader always sees whole records.  Corrupt or truncated segments
are skipped (counted in ``ledger.corrupt``), never fatal.

Like the store, the ledger is **off by default** and activates via
:func:`configure_ledger` (the CLI's ``--ledger DIR``) or env
``REPRO_LEDGER_DIR`` (``REPRO_LEDGER=0`` force-disables).  The engine
appends one ``synth`` record per top-level :func:`repro.synthesize`
call; multi-run drivers (DSE sweeps, the fuzzer, the linter, the perf
harness) suppress those per-design records with :func:`ledger_scope`
and append a single summary record of their own — so "one invocation,
one record" holds at every granularity.
"""

from __future__ import annotations

import hashlib
import json
import os
import platform
import sys
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Iterable, Mapping

from .metrics import metrics
from .report import stage_totals

if TYPE_CHECKING:  # pragma: no cover
    from ..core.design import SynthesizedDesign
    from ..core.engine import SynthesisOptions

#: Bump when the RunRecord layout changes incompatibly.  Each version
#: writes under its own ``v<N>/`` directory, so old records are never
#: misread — only ignored.
LEDGER_SCHEMA_VERSION = 1

LEDGER_DIR_ENV = "REPRO_LEDGER_DIR"
LEDGER_ENV = "REPRO_LEDGER"

#: Fields of the canonical JSON rendering, in serialization order.
_RECORD_FIELDS = (
    "run_id", "schema", "kind", "workload", "created_at", "wall_s",
    "env", "qor", "metrics", "stages", "extra",
)


@dataclass
class RunRecord:
    """One ledger entry: the QoR and telemetry of a single run.

    ``run_id`` is the content address — a sha256 prefix over the
    canonical JSON of every other field — so identical records are
    idempotent on append and any mutation changes the id.
    """

    kind: str
    workload: str
    created_at: str
    wall_s: float = 0.0
    schema: int = LEDGER_SCHEMA_VERSION
    env: dict = field(default_factory=dict)
    qor: dict = field(default_factory=dict)
    metrics: dict = field(default_factory=dict)
    stages: dict = field(default_factory=dict)
    extra: dict = field(default_factory=dict)
    run_id: str = ""

    def __post_init__(self) -> None:
        if not self.run_id:
            self.run_id = self.compute_run_id()

    def compute_run_id(self) -> str:
        payload = json.dumps(
            {name: getattr(self, name) for name in _RECORD_FIELDS
             if name != "run_id"},
            sort_keys=True, separators=(",", ":"),
        )
        return hashlib.sha256(payload.encode("utf-8")).hexdigest()[:16]

    def to_dict(self) -> dict:
        return {name: getattr(self, name) for name in _RECORD_FIELDS}

    def to_json(self) -> str:
        """The canonical single-line rendering stored in segments."""
        return json.dumps(self.to_dict(), sort_keys=True,
                          separators=(",", ":"))

    @classmethod
    def from_dict(cls, data: Mapping) -> "RunRecord":
        kwargs = {name: data[name] for name in _RECORD_FIELDS
                  if name in data}
        return cls(**kwargs)


class RunLedger:
    """Append-only run history rooted at a directory.

    Append publishes one segment per record via the atomic
    temp-then-rename protocol; reads scan every segment, skipping
    anything unparseable.  Both directions are safe under concurrent
    writers from multiple processes.
    """

    def __init__(self, root: str | os.PathLike) -> None:
        self.root = os.fspath(root)

    @property
    def segment_dir(self) -> str:
        return os.path.join(self.root, f"v{LEDGER_SCHEMA_VERSION}")

    def _segment_path(self, run_id: str) -> str:
        return os.path.join(self.segment_dir, f"{run_id}.jsonl")

    def append(self, record: RunRecord,
               fault_spec: str | None = None) -> str:
        """Persist ``record``; returns its run id.

        Idempotent: a record whose segment already exists (same
        content address) is not rewritten.  Filesystem failures are
        swallowed — the ledger is telemetry and must never fail the
        run it observes.
        """
        from ..store.atomic import atomic_write_bytes

        path = self._segment_path(record.run_id)
        if os.path.exists(path):
            metrics().counter("ledger.duplicates").inc()
            return record.run_id
        blob = (record.to_json() + "\n").encode("utf-8")
        if atomic_write_bytes(path, blob, fault_label="ledger.append",
                              fault_spec=fault_spec):
            metrics().counter("ledger.appends").inc()
        return record.run_id

    def records(self) -> list[RunRecord]:
        """Every parseable record, oldest first.

        Ordered by ``(created_at, run_id)`` — wall-clock with a
        deterministic tiebreak — so two scans of the same directory
        always agree.  Corrupt lines and segments bump the
        ``ledger.corrupt`` counter and are skipped.
        """
        records: list[RunRecord] = []
        try:
            names = sorted(os.listdir(self.segment_dir))
        except OSError:
            return records
        for name in names:
            if not name.endswith(".jsonl") or name.startswith("."):
                continue
            path = os.path.join(self.segment_dir, name)
            try:
                with open(path, "r", encoding="utf-8") as handle:
                    lines = handle.read().splitlines()
            except (OSError, UnicodeDecodeError):
                metrics().counter("ledger.corrupt").inc()
                continue
            for line in lines:
                if not line.strip():
                    continue
                try:
                    data = json.loads(line)
                    if not isinstance(data, dict):
                        raise TypeError("record is not an object")
                    record = RunRecord.from_dict(data)
                except (ValueError, TypeError, KeyError):
                    metrics().counter("ledger.corrupt").inc()
                    continue
                records.append(record)
        records.sort(key=lambda r: (r.created_at, r.run_id))
        return records

    def __len__(self) -> int:
        try:
            return sum(
                1 for name in os.listdir(self.segment_dir)
                if name.endswith(".jsonl") and not name.startswith(".")
            )
        except OSError:
            return 0


# ----------------------------------------------------------------------
# Activation (explicit beats environment, mirroring repro.store)
# ----------------------------------------------------------------------

_EXPLICIT: RunLedger | None = None
_EXPLICIT_SET = False
_ENV_MEMO: tuple[str, RunLedger] | None = None


def default_ledger_dir() -> str:
    """Where ``--ledger`` records runs absent an explicit directory."""
    from ..store import default_store_dir

    return os.environ.get(LEDGER_DIR_ENV) or os.path.join(
        os.path.dirname(default_store_dir()), "ledger"
    )


def configure_ledger(root: str | os.PathLike | None) -> RunLedger | None:
    """Explicitly set the process-global ledger (None disables it).

    Explicit configuration always wins over the environment —
    ``configure_ledger(None)`` turns recording off even when
    ``REPRO_LEDGER_DIR`` is set.
    """
    global _EXPLICIT, _EXPLICIT_SET
    _EXPLICIT = RunLedger(root) if root is not None else None
    _EXPLICIT_SET = True
    return _EXPLICIT


def reset_ledger() -> None:
    """Forget any explicit configuration; fall back to the env."""
    global _EXPLICIT, _EXPLICIT_SET, _ENV_MEMO
    _EXPLICIT = None
    _EXPLICIT_SET = False
    _ENV_MEMO = None


def active_ledger() -> RunLedger | None:
    """The ledger in force for this process, or None."""
    global _ENV_MEMO
    if _EXPLICIT_SET:
        return _EXPLICIT
    if os.environ.get(LEDGER_ENV, "").strip().lower() in (
        "0", "off", "false", "no",
    ):
        return None
    root = os.environ.get(LEDGER_DIR_ENV)
    if not root:
        return None
    if _ENV_MEMO is None or _ENV_MEMO[0] != root:
        _ENV_MEMO = (root, RunLedger(root))
    return _ENV_MEMO[1]


# ----------------------------------------------------------------------
# Scope suppression: one invocation, one record
# ----------------------------------------------------------------------

_SCOPE_DEPTH = 0


class _LedgerScope:
    """Reentrant depth counter suppressing engine-level auto-records.

    A DSE sweep runs hundreds of syntheses; the fuzzer thousands.
    Those drivers open a scope, synthesize freely (no per-design
    records), and append one summary record themselves on exit.
    """

    __slots__ = ()

    def __enter__(self) -> None:
        global _SCOPE_DEPTH
        _SCOPE_DEPTH += 1
        return None

    def __exit__(self, *exc) -> bool:
        global _SCOPE_DEPTH
        _SCOPE_DEPTH = max(0, _SCOPE_DEPTH - 1)
        return False


def ledger_scope() -> _LedgerScope:
    """Suppress automatic per-synthesis records for a ``with`` block."""
    return _LedgerScope()


def in_ledger_scope() -> bool:
    """Is a multi-run driver currently claiming the record?"""
    return _SCOPE_DEPTH > 0


def reset_ledger_scope() -> None:
    """Zero the scope depth (test isolation)."""
    global _SCOPE_DEPTH
    _SCOPE_DEPTH = 0


# ----------------------------------------------------------------------
# Record builders
# ----------------------------------------------------------------------

def utc_now() -> str:
    """The ledger's timestamp format: ISO-8601 UTC, second precision."""
    import datetime

    return datetime.datetime.now(datetime.timezone.utc).strftime(
        "%Y-%m-%dT%H:%M:%SZ"
    )


def environment_fingerprint(source_digest: str | None = None,
                            options: "SynthesisOptions | None" = None,
                            ) -> dict:
    """What must match for two runs to be comparable.

    The value-level options token (the store's key material) stands in
    for the full options object; runs whose token differs are never
    compared by ``repro report``.
    """
    env = {
        "schema": LEDGER_SCHEMA_VERSION,
        "python": platform.python_version(),
        "platform": sys.platform,
        "pid": os.getpid(),
    }
    if source_digest is not None:
        env["source_digest"] = source_digest
    if options is not None:
        from ..store.keys import options_token

        token = options_token(options)
        env["options"] = repr(token) if token is not None else None
    return env


def qor_from_design(design: "SynthesizedDesign") -> dict:
    """Extract the quality-of-results summary the ledger records.

    Latency is the summed schedule length in control steps (csteps);
    areas and the clock estimate come from :mod:`repro.estimation`;
    structural counts come straight off the design.  All plain data.
    """
    from ..allocation.interconnect import estimate_interconnect
    from ..estimation.area import estimate_area
    from ..estimation.timing import estimate_clock_period

    fu_counts: dict[str, int] = {}
    instances = set()
    for allocation in design.allocations.values():
        instances.update(allocation.fu_map.values())
    for fu in instances:
        fu_counts[fu.cls] = fu_counts.get(fu.cls, 0) + 1
    mux_inputs = sum(
        estimate_interconnect(allocation).mux_inputs
        for allocation in design.allocations.values()
    )
    area = estimate_area(design)
    return {
        "latency_csteps": sum(
            schedule.length for schedule in design.schedules.values()
        ),
        "fu_counts": {cls: fu_counts[cls] for cls in sorted(fu_counts)},
        "fu_total": len(instances),
        "registers": design.register_count,
        "mux_inputs": mux_inputs,
        "states": design.state_count,
        "area": {
            "functional_units": round(area.functional_units, 3),
            "registers": round(area.registers, 3),
            "multiplexers": round(area.multiplexers, 3),
            "controller": round(area.controller, 3),
            "total": round(area.total, 3),
        },
        "clock_ns": round(estimate_clock_period(design), 3),
    }


def metrics_delta(before: Mapping, after: Mapping) -> dict:
    """Counter deltas + gauge values between two registry snapshots.

    Histograms are summarized (count/mean/percentiles) rather than
    stored bucket-by-bucket — the ledger records QoR, not raw series.
    """
    from .metrics import histogram_deltas

    counters = {}
    before_counters = before.get("counters", {})
    for key, value in after.get("counters", {}).items():
        delta = value - before_counters.get(key, 0)
        if delta:
            counters[key] = delta
    gauges = {
        key: value
        for key, value in after.get("gauges", {}).items()
        if value
    }
    histograms = {
        key: {name: round(val, 4) if isinstance(val, float) else val
              for name, val in hist.summary().items()}
        for key, hist in histogram_deltas(before, after).items()
    }
    return {
        "counters": counters,
        "gauges": {k: round(v, 4) for k, v in gauges.items()},
        "histograms": histograms,
    }


def stage_breakdown(span_records: Iterable) -> dict:
    """Per-stage call counts and total time from recorded spans."""
    return {
        stage: {"calls": entry["calls"],
                "total_us": round(entry["total_us"], 1)}
        for stage, entry in stage_totals(span_records).items()
    }


def build_record(kind: str, workload: str, *,
                 design: "SynthesizedDesign | None" = None,
                 source_digest: str | None = None,
                 options: "SynthesisOptions | None" = None,
                 metrics_before: Mapping | None = None,
                 span_records: Iterable | None = None,
                 wall_s: float = 0.0,
                 extra: Mapping | None = None) -> RunRecord:
    """Assemble a :class:`RunRecord` from live pipeline objects."""
    return RunRecord(
        kind=kind,
        workload=workload,
        created_at=utc_now(),
        wall_s=round(wall_s, 4),
        env=environment_fingerprint(source_digest, options),
        qor=qor_from_design(design) if design is not None else {},
        metrics=(metrics_delta(metrics_before, metrics().snapshot())
                 if metrics_before is not None else {}),
        stages=(stage_breakdown(span_records)
                if span_records is not None else {}),
        extra=dict(extra) if extra else {},
    )


def record_run(kind: str, workload: str, **kwargs) -> str | None:
    """Build and append a record iff a ledger is active and no
    enclosing driver has claimed the record; returns the run id."""
    ledger = active_ledger()
    if ledger is None or in_ledger_scope():
        return None
    record = build_record(kind, workload, **kwargs)
    return ledger.append(record)
