"""A zero-dependency metrics registry: counters, gauges, histograms.

Everything the pipeline counts — cache hits/misses/evictions,
per-scheduler invocations and latencies, fuzzer seeds and violations,
DSE points explored vs pruned — lives in one process-global
:class:`MetricsRegistry` (:func:`metrics`).  Unlike tracing, metric
updates are *always on*: an increment is one dict lookup plus an
integer add, far below measurement noise for per-stage events, and it
means ``SynthesisCache.stats()`` and sweep telemetry work without
turning anything on first.

Cross-process aggregation is snapshot-based: a worker calls
``metrics().snapshot()`` at the end of its unit of work and ships the
plain-dict result home; the parent calls ``metrics().merge(snap)``.
Merging is deterministic for a fixed merge order: counters and
histograms are additive, gauges take the maximum (the only
order-independent choice that still answers "how big did it get?").
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass, field
from typing import Mapping, Sequence

#: Fixed default boundaries (milliseconds) for latency histograms —
#: roughly logarithmic from 100µs to 10s.  Fixed boundaries are what
#: make histograms mergeable across processes.
DEFAULT_LATENCY_BUCKETS_MS: tuple[float, ...] = (
    0.1, 0.3, 1.0, 3.0, 10.0, 30.0, 100.0, 300.0, 1_000.0, 10_000.0,
)


def _key(name: str, labels: Mapping[str, str]) -> str:
    """Render ``name{a=x,b=y}`` — the registry's canonical metric id."""
    if not labels:
        return name
    inner = ",".join(f"{k}={labels[k]}" for k in sorted(labels))
    return f"{name}{{{inner}}}"


@dataclass
class Counter:
    """A monotonically increasing count (resettable for test isolation)."""

    value: int = 0

    def inc(self, amount: int = 1) -> None:
        self.value += amount

    def reset(self) -> None:
        self.value = 0


@dataclass
class Gauge:
    """A point-in-time value (last write wins within a process)."""

    value: float = 0.0

    def set(self, value: float) -> None:
        self.value = value

    def reset(self) -> None:
        self.value = 0.0


@dataclass
class Histogram:
    """A fixed-boundary histogram of observations.

    ``counts[i]`` counts observations ``<= boundaries[i]``; the last
    slot is the overflow bucket.  Boundaries are fixed at creation so
    worker histograms merge by element-wise addition.
    """

    boundaries: tuple[float, ...] = DEFAULT_LATENCY_BUCKETS_MS
    counts: list[int] = field(default_factory=list)
    total: float = 0.0
    count: int = 0

    def __post_init__(self) -> None:
        if not self.counts:
            self.counts = [0] * (len(self.boundaries) + 1)

    def observe(self, value: float) -> None:
        self.counts[bisect.bisect_left(self.boundaries, value)] += 1
        self.total += value
        self.count += 1

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def percentile(self, q: float) -> float:
        """The ``q``-quantile (``0 < q <= 1``), interpolated linearly
        within the fixed buckets.

        The estimate assumes observations are spread uniformly inside
        each bucket (the classic Prometheus ``histogram_quantile``
        model): the target rank is located in its bucket's cumulative
        range and mapped proportionally between the bucket's lower and
        upper boundary.  The first bucket's lower edge is 0; ranks
        landing in the overflow bucket return the last boundary (there
        is no upper edge to interpolate toward).
        """
        if self.count == 0:
            return 0.0
        q = min(max(q, 0.0), 1.0)
        rank = q * self.count
        cumulative = 0
        for i, bucket_count in enumerate(self.counts):
            if bucket_count == 0:
                continue
            if cumulative + bucket_count >= rank:
                if i >= len(self.boundaries):
                    return self.boundaries[-1]
                lower = self.boundaries[i - 1] if i > 0 else 0.0
                upper = self.boundaries[i]
                fraction = (rank - cumulative) / bucket_count
                return lower + fraction * (upper - lower)
            cumulative += bucket_count
        return self.boundaries[-1]

    @property
    def p50(self) -> float:
        return self.percentile(0.50)

    @property
    def p95(self) -> float:
        return self.percentile(0.95)

    @property
    def p99(self) -> float:
        return self.percentile(0.99)

    def summary(self) -> dict:
        """Count, mean and interpolated percentiles as plain data."""
        return {
            "count": self.count,
            "mean": self.mean,
            "p50": self.p50,
            "p95": self.p95,
            "p99": self.p99,
        }

    def reset(self) -> None:
        self.counts = [0] * (len(self.boundaries) + 1)
        self.total = 0.0
        self.count = 0


class MetricsRegistry:
    """Named, labelled metrics with snapshot/merge for process pools."""

    def __init__(self) -> None:
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}
        self._histograms: dict[str, Histogram] = {}

    # -- get-or-create --------------------------------------------------

    def counter(self, name: str, **labels: str) -> Counter:
        key = _key(name, labels)
        metric = self._counters.get(key)
        if metric is None:
            metric = self._counters[key] = Counter()
        return metric

    def gauge(self, name: str, **labels: str) -> Gauge:
        key = _key(name, labels)
        metric = self._gauges.get(key)
        if metric is None:
            metric = self._gauges[key] = Gauge()
        return metric

    def histogram(self, name: str,
                  buckets: Sequence[float] | None = None,
                  **labels: str) -> Histogram:
        key = _key(name, labels)
        metric = self._histograms.get(key)
        if metric is None:
            metric = self._histograms[key] = Histogram(
                boundaries=tuple(buckets) if buckets is not None
                else DEFAULT_LATENCY_BUCKETS_MS
            )
        return metric

    # -- reading --------------------------------------------------------

    def counters(self) -> dict[str, int]:
        """All counter values by canonical id (sorted for stability)."""
        return {key: self._counters[key].value
                for key in sorted(self._counters)}

    def gauges(self) -> dict[str, float]:
        return {key: self._gauges[key].value
                for key in sorted(self._gauges)}

    def histograms(self) -> dict[str, Histogram]:
        return {key: self._histograms[key]
                for key in sorted(self._histograms)}

    def snapshot(self) -> dict:
        """A plain-dict, picklable copy of every metric."""
        return {
            "counters": self.counters(),
            "gauges": self.gauges(),
            "histograms": {
                key: {
                    "boundaries": list(hist.boundaries),
                    "counts": list(hist.counts),
                    "total": hist.total,
                    "count": hist.count,
                }
                for key, hist in self.histograms().items()
            },
        }

    def merge(self, snapshot: Mapping) -> None:
        """Fold a worker's :meth:`snapshot` into this registry.

        Counters and histogram buckets add; gauges take the maximum.
        Merging the same snapshots in the same order always produces
        the same registry state.
        """
        for key, value in snapshot.get("counters", {}).items():
            self._counter_by_key(key).inc(value)
        for key, value in snapshot.get("gauges", {}).items():
            gauge = self._gauge_by_key(key)
            gauge.set(max(gauge.value, value))
        for key, data in snapshot.get("histograms", {}).items():
            hist = self._histograms.get(key)
            if hist is None:
                hist = self._histograms[key] = Histogram(
                    boundaries=tuple(data["boundaries"])
                )
            if tuple(data["boundaries"]) != hist.boundaries:
                raise ValueError(
                    f"histogram {key!r} boundaries differ; cannot merge"
                )
            for i, count in enumerate(data["counts"]):
                hist.counts[i] += count
            hist.total += data["total"]
            hist.count += data["count"]

    def _counter_by_key(self, key: str) -> Counter:
        metric = self._counters.get(key)
        if metric is None:
            metric = self._counters[key] = Counter()
        return metric

    def _gauge_by_key(self, key: str) -> Gauge:
        metric = self._gauges.get(key)
        if metric is None:
            metric = self._gauges[key] = Gauge()
        return metric

    def reset(self) -> None:
        """Zero every metric (registered objects stay alive, so
        references held by long-lived owners keep working)."""
        for metric in self._counters.values():
            metric.reset()
        for metric in self._gauges.values():
            metric.reset()
        for metric in self._histograms.values():
            metric.reset()


#: The process-global registry every instrumentation site updates.
_REGISTRY = MetricsRegistry()


def metrics() -> MetricsRegistry:
    """The process-global :class:`MetricsRegistry`."""
    return _REGISTRY


def reset_metrics() -> None:
    """Zero every metric in the global registry (test isolation)."""
    _REGISTRY.reset()


def histogram_deltas(before: Mapping, after: Mapping) -> dict[str, Histogram]:
    """Per-key :class:`Histogram` deltas between two snapshots.

    Returns, for every histogram whose observation count grew between
    ``before`` and ``after``, a standalone histogram holding only the
    observations made in between — the input a sweep needs to report
    p50/p95/p99 of *its own* work rather than the process's lifetime.
    """
    deltas: dict[str, Histogram] = {}
    before_histograms = before.get("histograms", {})
    for key, data in after.get("histograms", {}).items():
        prior = before_histograms.get(
            key, {"counts": [0] * len(data["counts"]),
                  "total": 0.0, "count": 0},
        )
        count = data["count"] - prior["count"]
        if count <= 0:
            continue
        deltas[key] = Histogram(
            boundaries=tuple(data["boundaries"]),
            counts=[c - p for c, p in zip(data["counts"],
                                          prior["counts"])],
            total=data["total"] - prior["total"],
            count=count,
        )
    return deltas
