"""Trace and metrics exporters.

:func:`chrome_trace` converts recorded spans into the Chrome
``trace_event`` JSON format (the "JSON Array Format" with complete
``"ph": "X"`` events), loadable in ``chrome://tracing`` and Perfetto.
Each span becomes one complete event; worker spans keep their own
``pid``, so cross-process traces render as separate process tracks
(worker clocks are not synchronized with the parent's — durations are
exact, offsets are per-process).  An empty record list yields a valid
empty document, and zero-duration spans are clamped to 1µs so the
viewer actually renders them.

:func:`to_prometheus` renders the metrics registry in the Prometheus
text exposition format (version 0.0.4): one ``# HELP``/``# TYPE``
header per family, counters suffixed ``_total``, histograms expanded
into cumulative ``_bucket{le=...}`` series plus ``_sum``/``_count``.
Families and series are emitted in sorted order and label maps are
rendered with sorted keys, so the payload of a deterministic registry
state is byte-stable — it is the exact body a ``/metrics`` endpoint
serves.
"""

from __future__ import annotations

import json
import math
import re
from typing import Iterable, Mapping

from .metrics import MetricsRegistry, metrics
from .tracer import SpanRecord

#: Spans shorter than the tracer's clock resolution record 0µs; the
#: Chrome viewer drops zero-width slices, so exports clamp them up.
MIN_EVENT_DURATION_US = 1.0


def chrome_trace(records: Iterable[SpanRecord],
                 process_name: str = "repro") -> dict:
    """Spans → a Chrome ``trace_event`` document (a plain dict).

    With no records at all the document is still valid: an empty
    ``traceEvents`` array with no process-metadata rows.
    """
    records = list(records)
    events: list[dict] = []
    for pid in sorted({record.pid for record in records}):
        events.append({
            "name": "process_name",
            "ph": "M",
            "pid": pid,
            "tid": 0,
            "args": {"name": process_name},
        })
    for record in records:
        duration_us = record.duration_us
        if duration_us < MIN_EVENT_DURATION_US:
            duration_us = MIN_EVENT_DURATION_US
        event = {
            "name": record.name,
            "cat": "repro",
            "ph": "X",
            "ts": record.start_us,
            "dur": duration_us,
            "pid": record.pid,
            "tid": 0,
        }
        if record.attrs:
            event["args"] = {
                key: _jsonable(value)
                for key, value in record.attrs.items()
            }
        events.append(event)
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def _jsonable(value):
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    return str(value)


def write_chrome_trace(path: str, records: Iterable[SpanRecord],
                       process_name: str = "repro") -> None:
    """Write :func:`chrome_trace` output as JSON to ``path``."""
    with open(path, "w") as handle:
        json.dump(chrome_trace(records, process_name), handle, indent=2)
        handle.write("\n")


# ----------------------------------------------------------------------
# Prometheus text exposition
# ----------------------------------------------------------------------

_NAME_SANITIZER = re.compile(r"[^a-zA-Z0-9_:]")
_LABEL_SANITIZER = re.compile(r"[^a-zA-Z0-9_]")


def _metric_name(name: str, namespace: str) -> str:
    """``cache.hits`` → ``repro_cache_hits`` (grammar-safe)."""
    flat = _NAME_SANITIZER.sub("_", name)
    if namespace:
        flat = f"{namespace}_{flat}"
    if flat[:1].isdigit():
        flat = f"_{flat}"
    return flat


def _parse_key(key: str) -> tuple[str, dict[str, str]]:
    """A canonical registry id (``name{a=x,b=y}``) back into parts."""
    if "{" not in key:
        return key, {}
    name, _, inner = key.partition("{")
    labels: dict[str, str] = {}
    for pair in inner.rstrip("}").split(","):
        if not pair:
            continue
        label, _, value = pair.partition("=")
        labels[label] = value
    return name, labels


def _escape_label_value(value: str) -> str:
    return (
        value.replace("\\", r"\\").replace("\n", r"\n").replace('"', r'\"')
    )


def _render_labels(labels: Mapping[str, str]) -> str:
    """``{a="x",b="y"}`` with sorted keys, or empty for no labels."""
    if not labels:
        return ""
    inner = ",".join(
        f'{_LABEL_SANITIZER.sub("_", key)}='
        f'"{_escape_label_value(str(labels[key]))}"'
        for key in sorted(labels)
    )
    return f"{{{inner}}}"


def _fmt_value(value: float) -> str:
    """Prometheus sample values: integral floats print as integers."""
    if isinstance(value, bool):
        return str(int(value))
    if isinstance(value, int):
        return str(value)
    if math.isinf(value):
        return "+Inf" if value > 0 else "-Inf"
    if math.isnan(value):
        return "NaN"
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(value)


def _group_by_family(keys: Iterable[str]) -> dict[str, list[str]]:
    families: dict[str, list[str]] = {}
    for key in keys:
        name, _ = _parse_key(key)
        families.setdefault(name, []).append(key)
    return families


def to_prometheus(registry: MetricsRegistry | None = None,
                  namespace: str = "repro") -> str:
    """The registry in Prometheus text exposition format (0.0.4).

    The output is a pure function of the registry's state: families
    sorted by name, series sorted by canonical id, label keys sorted,
    so rendering the same state twice is byte-identical.  This is the
    verbatim ``/metrics`` payload for the serve daemon.
    """
    registry = registry if registry is not None else metrics()
    lines: list[str] = []

    counters = registry.counters()
    for family, keys in sorted(_group_by_family(counters).items()):
        flat = _metric_name(family, namespace)
        lines.append(f"# HELP {flat}_total repro counter {family}")
        lines.append(f"# TYPE {flat}_total counter")
        for key in sorted(keys):
            _, labels = _parse_key(key)
            lines.append(
                f"{flat}_total{_render_labels(labels)} "
                f"{_fmt_value(counters[key])}"
            )

    gauges = registry.gauges()
    for family, keys in sorted(_group_by_family(gauges).items()):
        flat = _metric_name(family, namespace)
        lines.append(f"# HELP {flat} repro gauge {family}")
        lines.append(f"# TYPE {flat} gauge")
        for key in sorted(keys):
            _, labels = _parse_key(key)
            lines.append(
                f"{flat}{_render_labels(labels)} "
                f"{_fmt_value(gauges[key])}"
            )

    histograms = registry.histograms()
    for family, keys in sorted(_group_by_family(histograms).items()):
        flat = _metric_name(family, namespace)
        lines.append(f"# HELP {flat} repro histogram {family}")
        lines.append(f"# TYPE {flat} histogram")
        for key in sorted(keys):
            _, labels = _parse_key(key)
            histogram = histograms[key]
            cumulative = 0
            for boundary, count in zip(histogram.boundaries,
                                       histogram.counts):
                cumulative += count
                bucket_labels = dict(labels)
                bucket_labels["le"] = _fmt_value(boundary)
                lines.append(
                    f"{flat}_bucket{_render_labels(bucket_labels)} "
                    f"{cumulative}"
                )
            bucket_labels = dict(labels)
            bucket_labels["le"] = "+Inf"
            lines.append(
                f"{flat}_bucket{_render_labels(bucket_labels)} "
                f"{histogram.count}"
            )
            rendered = _render_labels(labels)
            lines.append(
                f"{flat}_sum{rendered} {_fmt_value(histogram.total)}"
            )
            lines.append(f"{flat}_count{rendered} {histogram.count}")

    return "\n".join(lines) + "\n" if lines else ""
