"""Trace exporters.

:func:`chrome_trace` converts recorded spans into the Chrome
``trace_event`` JSON format (the "JSON Array Format" with complete
``"ph": "X"`` events), loadable in ``chrome://tracing`` and Perfetto.
Each span becomes one complete event; worker spans keep their own
``pid``, so cross-process traces render as separate process tracks
(worker clocks are not synchronized with the parent's — durations are
exact, offsets are per-process).
"""

from __future__ import annotations

import json
from typing import Iterable

from .tracer import SpanRecord


def chrome_trace(records: Iterable[SpanRecord],
                 process_name: str = "repro") -> dict:
    """Spans → a Chrome ``trace_event`` document (a plain dict)."""
    records = list(records)
    events: list[dict] = []
    for pid in sorted({record.pid for record in records}):
        events.append({
            "name": "process_name",
            "ph": "M",
            "pid": pid,
            "tid": 0,
            "args": {"name": process_name},
        })
    for record in records:
        event = {
            "name": record.name,
            "cat": "repro",
            "ph": "X",
            "ts": record.start_us,
            "dur": record.duration_us,
            "pid": record.pid,
            "tid": 0,
        }
        if record.attrs:
            event["args"] = {
                key: _jsonable(value)
                for key, value in record.attrs.items()
            }
        events.append(event)
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def _jsonable(value):
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    return str(value)


def write_chrome_trace(path: str, records: Iterable[SpanRecord],
                       process_name: str = "repro") -> None:
    """Write :func:`chrome_trace` output as JSON to ``path``."""
    with open(path, "w") as handle:
        json.dump(chrome_trace(records, process_name), handle, indent=2)
        handle.write("\n")
