"""Observability for the synthesis pipeline: tracing, metrics, profiles.

Three layers, all zero-dependency:

* **tracing** (:func:`trace_span`) — nested, monotonic-clock spans
  around every pipeline stage, transform pass, verify contract and
  DSE evaluation.  Off by default; enable with
  ``SynthesisOptions(trace=True)``, :func:`enable_tracing`, or env
  ``REPRO_TRACE=1``.  Export with :func:`chrome_trace` /
  :func:`write_chrome_trace` (``chrome://tracing`` / Perfetto).
* **metrics** (:func:`metrics`) — always-on counters, gauges and
  fixed-bucket histograms: cache hits/misses/evictions, per-scheduler
  invocations and latencies, fuzz seeds/violations, DSE points.
  Worker processes :meth:`~MetricsRegistry.snapshot` their registry
  and the parent :meth:`~MetricsRegistry.merge`\\ s it back.
* **reporting** (:func:`profile_table`, :func:`telemetry_summary`) —
  the ``repro profile`` per-stage table and sweep telemetry text.

Two durable layers build on these and are imported as submodules to
keep the engine's import graph acyclic: :mod:`repro.obs.ledger` (the
persistent QoR run history behind ``repro history``/``repro report``)
and :mod:`repro.obs.regression` (the median-of-N baseline verdicts).
:func:`to_prometheus` renders the registry as the ``/metrics`` payload
and :mod:`repro.obs.resource` adds opt-in per-stage heap-peak gauges.
"""

from .coverage import (
    EXCLUDED_COUNTER_PREFIXES,
    coverage_atoms,
    coverage_fingerprint,
    pow2_bucket,
)
from .export import chrome_trace, to_prometheus, write_chrome_trace
from .metrics import (
    DEFAULT_LATENCY_BUCKETS_MS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    histogram_deltas,
    metrics,
    reset_metrics,
)
from .report import (
    CORE_STAGES,
    PIPELINE_STAGES,
    profile_json,
    profile_table,
    stage_totals,
    telemetry_summary,
)
from .resource import (
    disable_memory,
    enable_memory,
    maybe_memory,
    memory_enabled,
    memory_profiling,
    memory_span,
    reset_memory,
)
from .tracer import (
    NULL_SPAN,
    SpanRecord,
    Tracer,
    disable_tracing,
    enable_tracing,
    maybe_tracing,
    reset_tracing,
    trace_span,
    tracer,
    tracing,
    tracing_enabled,
)

__all__ = [
    "CORE_STAGES",
    "DEFAULT_LATENCY_BUCKETS_MS",
    "EXCLUDED_COUNTER_PREFIXES",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NULL_SPAN",
    "PIPELINE_STAGES",
    "SpanRecord",
    "Tracer",
    "chrome_trace",
    "coverage_atoms",
    "coverage_fingerprint",
    "disable_memory",
    "disable_tracing",
    "enable_memory",
    "enable_tracing",
    "histogram_deltas",
    "maybe_memory",
    "maybe_tracing",
    "memory_enabled",
    "memory_profiling",
    "memory_span",
    "metrics",
    "pow2_bucket",
    "profile_json",
    "profile_table",
    "reset_memory",
    "reset_metrics",
    "reset_tracing",
    "stage_totals",
    "telemetry_summary",
    "to_prometheus",
    "trace_span",
    "tracer",
    "tracing",
    "tracing_enabled",
    "write_chrome_trace",
]
