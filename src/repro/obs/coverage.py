"""Coverage fingerprints derived from metrics snapshots and spans.

The corpus fuzzer (:mod:`repro.verify.corpus`) needs a *coverage
signal*: a deterministic description of which pipeline paths one run
exercised — stages reached, contract branches checked, per-algorithm
scheduler/allocator invocations, transform passes applied, lint rules
fired.  All of that is already observable in the always-on metrics
registry and (when tracing is enabled) the span stream, so coverage is
computed as a pure function of two registry snapshots plus the span
names recorded in between — no new instrumentation protocol, no
sys.settrace.

A run's coverage is a frozen set of **atoms**:

* ``c:<key>`` — a counter (canonical ``name{label=value}`` id) whose
  value increased during the run: the path behind it was taken;
* ``c:<key>~<bucket>`` — the same counter with its delta rounded up to
  a power of two, so "CSE fired once" and "CSE fired 30 times" are
  different coverage without making every count its own feature;
* ``s:<name>`` — a span name that occurred (pipeline stages reached);
* ``x:<text>`` — caller-supplied atoms (e.g. per-combo differential
  statuses).

Timing data never participates: histograms are excluded wholesale and
span *durations* are ignored, so the fingerprint of a deterministic
run is itself deterministic — replaying a corpus entry must reproduce
its fingerprint bit-for-bit on any machine.  Counter families whose
values depend on the environment rather than the workload (cache and
store occupancy, executor retries, the fuzzer's own bookkeeping) are
excluded by prefix for the same reason.
"""

from __future__ import annotations

import hashlib
from typing import Iterable, Mapping

#: Counter-name prefixes that describe the *harness* (cache warmth,
#: pool health, the fuzz loop itself), not the workload; including
#: them would make fingerprints depend on run order and environment.
EXCLUDED_COUNTER_PREFIXES: tuple[str, ...] = (
    "cache.",
    "store.",
    "exec.",
    "fuzz.",
    "dse.",
    "ledger.",
)


def pow2_bucket(value: int) -> int:
    """The smallest power of two >= ``value`` (and >= 1).

    Used to quantize counts into a handful of stable magnitude
    classes: 1, 2, 4, 8, ... — coarse enough that unrelated runs
    collide, fine enough that "constrained scheduling took 4x the
    steps" shows up as new coverage.
    """
    if value <= 1:
        return 1
    bucket = 1
    while bucket < value:
        bucket <<= 1
    return bucket


def _counter_deltas(before: Mapping, after: Mapping) -> dict[str, int]:
    before_counters = before.get("counters", {})
    deltas = {}
    for key, value in after.get("counters", {}).items():
        if key.startswith(EXCLUDED_COUNTER_PREFIXES):
            continue
        delta = value - before_counters.get(key, 0)
        if delta > 0:
            deltas[key] = delta
    return deltas


def coverage_atoms(
    before: Mapping,
    after: Mapping,
    span_names: Iterable[str] = (),
    extra: Iterable[str] = (),
) -> frozenset[str]:
    """The coverage atoms of one run bracketed by two snapshots.

    Args:
        before / after: :meth:`MetricsRegistry.snapshot` results taken
            around the run (on whichever process executed it).
        span_names: names of spans recorded during the run.
        extra: caller-level atoms (prefixed ``x:`` verbatim).
    """
    atoms: set[str] = set()
    for key, delta in _counter_deltas(before, after).items():
        atoms.add(f"c:{key}")
        atoms.add(f"c:{key}~{pow2_bucket(delta)}")
    atoms.update(f"s:{name}" for name in span_names)
    atoms.update(f"x:{text}" for text in extra)
    return frozenset(atoms)


def coverage_fingerprint(atoms: Iterable[str]) -> str:
    """A 16-hex-digit content hash of a coverage atom set.

    Order-independent (atoms are sorted first) and stable across
    processes and platforms, so fingerprints are usable as corpus
    dedup keys and as CI assertions.
    """
    digest = hashlib.sha256("\n".join(sorted(atoms)).encode("utf-8"))
    return digest.hexdigest()[:16]
