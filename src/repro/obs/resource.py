"""Opt-in resource telemetry: per-stage Python heap peaks.

Memory profiling piggybacks on :mod:`tracemalloc` — always available,
but expensive enough (every allocation is traced) that it must stay
**off by default**.  Enable it per run with
``SynthesisOptions(memory=True)``, programmatically with
:func:`enable_memory`, or via env ``REPRO_MEM=1``; the engine then
wraps each pipeline stage in :func:`memory_span`, which resets the
traced peak before the stage and records the stage's own peak into the
``engine.mem.peak_kb{stage=...}`` gauge afterwards.  Gauges merge by
maximum across processes and are excluded from coverage fingerprints,
so turning this on never perturbs fuzzing or cache behaviour — only
wall-clock.
"""

from __future__ import annotations

import os
import tracemalloc
from contextlib import contextmanager
from typing import Iterator

from .metrics import metrics


def _env_enabled() -> bool:
    return os.environ.get("REPRO_MEM", "").lower() not in (
        "", "0", "false", "no",
    )


_ENABLED = _env_enabled()
#: Set when *we* started tracemalloc, so disable() doesn't stop a
#: trace some outer profiler owns.
_STARTED_HERE = False


def memory_enabled() -> bool:
    """Is per-stage memory profiling currently on?"""
    return _ENABLED


def enable_memory() -> None:
    """Turn on per-stage heap-peak gauges (starts tracemalloc)."""
    global _ENABLED, _STARTED_HERE
    _ENABLED = True
    if not tracemalloc.is_tracing():
        tracemalloc.start()
        _STARTED_HERE = True


def disable_memory() -> None:
    """Turn profiling off; stop tracemalloc only if we started it."""
    global _ENABLED, _STARTED_HERE
    _ENABLED = False
    if _STARTED_HERE and tracemalloc.is_tracing():
        tracemalloc.stop()
    _STARTED_HERE = False


@contextmanager
def memory_profiling(enabled: bool = True) -> Iterator[None]:
    """Scope memory profiling on (or off) for a block, then restore."""
    global _ENABLED
    previous = _ENABLED
    if enabled:
        enable_memory()
    else:
        _ENABLED = False
    try:
        yield
    finally:
        if previous and not _ENABLED:
            enable_memory()
        elif not previous and _ENABLED:
            disable_memory()


def maybe_memory(enabled: bool):
    """``memory_profiling(True)`` when asked and not already on.

    The engine's per-run hook, mirroring ``obs.maybe_tracing``:
    ``SynthesisOptions(memory=True)`` profiles exactly that run
    without disturbing an outer scope that already enabled it.
    """
    if enabled and not _ENABLED:
        return memory_profiling(True)
    return _NULL_SCOPE


class _ReusableNullScope:
    __slots__ = ()

    def __enter__(self) -> None:
        return None

    def __exit__(self, *exc) -> bool:
        return False


_NULL_SCOPE = _ReusableNullScope()


@contextmanager
def memory_span(stage: str) -> Iterator[None]:
    """Record a stage's traced-heap peak into the metrics registry.

    While profiling is off this is one flag test and a no-op yield.
    While on, the peak counter is reset entering the stage and the
    stage's own peak (KiB) lands in ``engine.mem.peak_kb{stage=...}``;
    the gauge keeps the maximum across repeated stage runs, matching
    the registry's cross-process merge rule.
    """
    if not _ENABLED or not tracemalloc.is_tracing():
        yield
        return
    tracemalloc.reset_peak()
    try:
        yield
    finally:
        _, peak = tracemalloc.get_traced_memory()
        gauge = metrics().gauge("engine.mem.peak_kb", stage=stage)
        gauge.set(max(gauge.value, peak / 1024.0))


def reset_memory() -> None:
    """Restore the env-derived flag and stop any trace we own."""
    global _ENABLED, _STARTED_HERE
    if _STARTED_HERE and tracemalloc.is_tracing():
        tracemalloc.stop()
    _STARTED_HERE = False
    _ENABLED = _env_enabled()
