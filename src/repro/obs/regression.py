"""Regression verdicts over the run ledger.

``repro report`` turns ledger history into a CI decision: the latest
run of each comparable group is measured against the **median of the
previous N** runs (the baseline window) family by family — schedule
latency, FU and register counts, wall-clock, cache hit-rate — and the
worst family verdict becomes the exit code: 0 clean, 1 warnings only,
2 regression.

Runs are comparable only within a *group*: same kind, workload, source
digest and value-level options token (the ledger's environment
fingerprint).  A changed source or knob starts a fresh group — the
report never blames a regression on an intentional change.

Thresholds are per family.  QoR families (latency, FUs, registers) are
deterministic for a deterministic pipeline, so *any* increase is a
regression; wall-clock is noisy, so it gets generous relative bounds
plus an absolute floor below which it is ignored entirely; cache
hit-rate warns (never fails) on a large drop.  All of it is
overridable from the CLI (``--threshold FAMILY=WARN,FAIL``).
"""

from __future__ import annotations

import statistics
from dataclasses import dataclass, field
from typing import Callable, Iterable, Mapping

from .ledger import RunRecord

#: Verdict severity order — a group's status is its worst family's.
_SEVERITY = {"ok": 0, "new": 0, "improved": 0, "warn": 1,
             "regression": 2}


@dataclass(frozen=True)
class Threshold:
    """When a family's change becomes a warning or a regression.

    ``warn_pct``/``fail_pct`` bound the *worsening* relative change in
    percent (0.0 means any worsening trips it; None disables that
    level).  ``higher_is_worse`` orients the comparison.  Samples
    whose baseline is below ``min_base`` are skipped — the guard that
    keeps sub-noise wall-clock baselines from ever failing CI.
    """

    warn_pct: float | None = 0.0
    fail_pct: float | None = 0.0
    higher_is_worse: bool = True
    min_base: float = 0.0

    def verdict(self, baseline: float, latest: float) -> str:
        if baseline < self.min_base:
            return "ok"
        worsening = (latest - baseline) if self.higher_is_worse else (
            baseline - latest
        )
        if worsening <= 0:
            return "improved" if worsening < 0 else "ok"
        change_pct = (
            100.0 * worsening / baseline if baseline
            else float("inf")
        )
        if self.fail_pct is not None and change_pct > self.fail_pct:
            return "regression"
        if self.warn_pct is not None and change_pct > self.warn_pct:
            return "warn"
        return "ok"


#: QoR families are deterministic — any increase is a regression.
#: Wall-clock is noisy — warn at +25%, fail at +200%, and ignore
#: baselines under 50ms outright.  Hit-rate only ever warns.  Lint
#: findings warn on any growth (a sharpened rule may be intentional)
#: but a new lint *error* fails outright.
DEFAULT_THRESHOLDS: dict[str, Threshold] = {
    "latency_csteps": Threshold(0.0, 0.0),
    "fu_total": Threshold(0.0, 0.0),
    "registers": Threshold(0.0, 0.0),
    "area_total": Threshold(0.0, 5.0),
    "wall_s": Threshold(25.0, 200.0, min_base=0.05),
    "cache_hit_rate": Threshold(15.0, None, higher_is_worse=False,
                                min_base=1.0),
    "lint_findings": Threshold(0.0, None),
    "lint_errors": Threshold(0.0, 0.0),
    # Directive-DSE funnel accounting (kind "explore-directives"):
    # fewer pruned cells or more full evaluations means the funnel got
    # less effective — worth a look, never a hard failure (estimator
    # pruning is heuristic and may legitimately shift).
    "dse_configs_pruned": Threshold(0.0, None, higher_is_worse=False),
    "dse_configs_evaluated": Threshold(0.0, None),
}


def _qor_value(name: str) -> Callable[[RunRecord], float | None]:
    def extract(record: RunRecord) -> float | None:
        value = record.qor.get(name)
        return float(value) if value is not None else None

    return extract


def _area_total(record: RunRecord) -> float | None:
    area = record.qor.get("area")
    if not area:
        return None
    return float(area.get("total", 0.0))


def _wall_s(record: RunRecord) -> float | None:
    return float(record.wall_s) if record.wall_s else None


def _lint_extra(name: str) -> Callable[[RunRecord], float | None]:
    def extract(record: RunRecord) -> float | None:
        if record.kind != "lint":
            return None
        value = record.extra.get(name)
        return float(value) if value is not None else None

    return extract


def _directive_extra(name: str) -> Callable[[RunRecord], float | None]:
    def extract(record: RunRecord) -> float | None:
        if record.kind != "explore-directives":
            return None
        value = record.extra.get(name)
        return float(value) if value is not None else None

    return extract


def _cache_hit_rate(record: RunRecord) -> float | None:
    counters = record.metrics.get("counters", {})
    hits = counters.get("cache.hits", 0)
    misses = counters.get("cache.misses", 0)
    if hits + misses == 0:
        return None
    return 100.0 * hits / (hits + misses)


#: Family name → value extractor.  A None extraction skips the family
#: for that record (e.g. fuzz records carry no design QoR).
FAMILIES: dict[str, Callable[[RunRecord], float | None]] = {
    "latency_csteps": _qor_value("latency_csteps"),
    "fu_total": _qor_value("fu_total"),
    "registers": _qor_value("registers"),
    "area_total": _area_total,
    "wall_s": _wall_s,
    "cache_hit_rate": _cache_hit_rate,
    "lint_findings": _lint_extra("findings"),
    "lint_errors": _lint_extra("errors"),
    "dse_configs_pruned": _directive_extra("configs_pruned"),
    "dse_configs_evaluated": _directive_extra("configs_evaluated"),
}

DEFAULT_WINDOW = 5


@dataclass
class FamilyVerdict:
    """One family's latest-vs-baseline outcome inside a group."""

    family: str
    status: str
    baseline: float | None = None
    latest: float | None = None
    samples: int = 0

    @property
    def change_pct(self) -> float | None:
        if self.baseline is None or self.latest is None:
            return None
        if self.baseline == 0:
            return None if self.latest == 0 else float("inf")
        return 100.0 * (self.latest - self.baseline) / self.baseline

    def to_dict(self) -> dict:
        change = self.change_pct
        return {
            "family": self.family,
            "status": self.status,
            "baseline": self.baseline,
            "latest": self.latest,
            "samples": self.samples,
            "change_pct": (round(change, 2)
                           if change not in (None, float("inf"))
                           else change),
        }


@dataclass
class GroupReport:
    """All family verdicts for one comparable run group."""

    kind: str
    workload: str
    latest: RunRecord
    verdicts: list[FamilyVerdict] = field(default_factory=list)

    @property
    def status(self) -> str:
        worst = "ok"
        for verdict in self.verdicts:
            if _SEVERITY[verdict.status] > _SEVERITY[worst]:
                worst = verdict.status
        if not self.verdicts:
            return "new"
        return worst

    def to_dict(self) -> dict:
        return {
            "kind": self.kind,
            "workload": self.workload,
            "status": self.status,
            "latest_run": self.latest.run_id,
            "created_at": self.latest.created_at,
            "families": [v.to_dict() for v in self.verdicts],
        }


@dataclass
class RegressionReport:
    """The whole verdict: one :class:`GroupReport` per group."""

    groups: list[GroupReport] = field(default_factory=list)
    window: int = DEFAULT_WINDOW

    @property
    def status(self) -> str:
        worst = "ok"
        for group in self.groups:
            if _SEVERITY.get(group.status, 0) > _SEVERITY[worst]:
                worst = group.status
        return worst

    @property
    def exit_code(self) -> int:
        """0 clean, 1 warnings only, 2 regression — the CI contract."""
        return _SEVERITY.get(self.status, 0)

    def to_dict(self) -> dict:
        return {
            "status": self.status,
            "exit_code": self.exit_code,
            "window": self.window,
            "groups": [group.to_dict() for group in self.groups],
        }

    def render(self) -> str:
        """The human-readable report text."""
        if not self.groups:
            return "report: no runs in the ledger"
        lines = [f"regression report (baseline: median of up to "
                 f"{self.window} prior runs)"]
        for group in self.groups:
            lines.append(
                f"  [{group.status:>10}] {group.kind}:{group.workload} "
                f"run {group.latest.run_id}"
            )
            for verdict in group.verdicts:
                if verdict.status in ("ok",) and verdict.baseline is None:
                    continue
                change = verdict.change_pct
                change_text = (
                    "" if change is None
                    else f" ({change:+.1f}%)" if change != float("inf")
                    else " (new)"
                )
                lines.append(
                    f"      {verdict.family:<16} "
                    f"{_fmt(verdict.baseline):>10} -> "
                    f"{_fmt(verdict.latest):>10}"
                    f"{change_text:<10} {verdict.status}"
                )
        lines.append(f"verdict: {self.status} "
                     f"(exit {self.exit_code})")
        return "\n".join(lines)

    def to_markdown(self) -> str:
        """A CI-comment-ready markdown summary."""
        lines = ["## QoR regression report", ""]
        if not self.groups:
            lines.append("_No runs in the ledger._")
            return "\n".join(lines) + "\n"
        lines.append(f"**Verdict: {self.status}** "
                     f"(exit {self.exit_code}; baseline = median of up "
                     f"to {self.window} prior runs)")
        lines.append("")
        lines.append("| group | family | baseline | latest | change "
                     "| status |")
        lines.append("|---|---|---:|---:|---:|---|")
        for group in self.groups:
            name = f"{group.kind}:{group.workload}"
            if not group.verdicts:
                lines.append(f"| {name} | — | — | — | — | new |")
                continue
            for verdict in group.verdicts:
                change = verdict.change_pct
                change_text = (
                    "—" if change is None
                    else f"{change:+.1f}%" if change != float("inf")
                    else "new"
                )
                lines.append(
                    f"| {name} | {verdict.family} "
                    f"| {_fmt(verdict.baseline)} "
                    f"| {_fmt(verdict.latest)} | {change_text} "
                    f"| {verdict.status} |"
                )
        return "\n".join(lines) + "\n"


def _fmt(value: float | None) -> str:
    if value is None:
        return "-"
    if value == int(value):
        return str(int(value))
    return f"{value:.3f}"


def group_key(record: RunRecord) -> tuple:
    """What must match for two records to be compared."""
    return (
        record.kind,
        record.workload,
        record.env.get("source_digest"),
        record.env.get("options"),
        record.schema,
    )


def compare(records: Iterable[RunRecord],
            window: int = DEFAULT_WINDOW,
            thresholds: Mapping[str, Threshold] | None = None,
            workload: str | None = None,
            kind: str | None = None) -> RegressionReport:
    """Latest run of every group vs its median-of-N baseline.

    ``records`` must be in ledger order (oldest first); the last
    record of each group is "latest" and the up-to-``window`` records
    before it form the baseline.  Groups with no prior runs come back
    ``new`` (never a failure — first contact creates the baseline).
    """
    thresholds = dict(DEFAULT_THRESHOLDS) | dict(thresholds or {})
    groups: dict[tuple, list[RunRecord]] = {}
    for record in records:
        if workload is not None and record.workload != workload:
            continue
        if kind is not None and record.kind != kind:
            continue
        groups.setdefault(group_key(record), []).append(record)

    report = RegressionReport(window=window)
    for key in sorted(groups, key=lambda k: tuple(str(p) for p in k)):
        history = groups[key]
        latest = history[-1]
        baseline_records = history[:-1][-window:]
        group = GroupReport(kind=latest.kind, workload=latest.workload,
                            latest=latest)
        for family, extract in FAMILIES.items():
            latest_value = extract(latest)
            if latest_value is None:
                continue
            samples = [
                value for value in
                (extract(record) for record in baseline_records)
                if value is not None
            ]
            if not samples:
                continue
            baseline = statistics.median(samples)
            threshold = thresholds.get(family, Threshold())
            group.verdicts.append(FamilyVerdict(
                family=family,
                status=threshold.verdict(baseline, latest_value),
                baseline=baseline,
                latest=latest_value,
                samples=len(samples),
            ))
        report.groups.append(group)
    return report


def parse_threshold(spec: str) -> tuple[str, Threshold]:
    """``FAMILY=WARN,FAIL`` (either level may be ``-`` for disabled).

    The CLI's ``--threshold`` grammar; the family keeps its default
    orientation and floor, only the levels are overridden.
    """
    family, _, levels = spec.partition("=")
    family = family.strip()
    if not family or not levels:
        raise ValueError(
            f"threshold spec {spec!r} is not FAMILY=WARN,FAIL"
        )
    warn_text, _, fail_text = levels.partition(",")

    def _level(text: str) -> float | None:
        text = text.strip()
        return None if text in ("", "-") else float(text)

    base = DEFAULT_THRESHOLDS.get(family, Threshold())
    return family, Threshold(
        warn_pct=_level(warn_text),
        fail_pct=_level(fail_text),
        higher_is_worse=base.higher_is_worse,
        min_base=base.min_base,
    )
