"""Controller synthesis: building the finite state machine.

§2: "Once the schedule and the data paths have been chosen, it is
necessary to synthesize a controller that will drive the data paths as
required by the schedule … If hardwired control is chosen, a control
step corresponds to a state in the controlling finite state machine."

The FSM has one state per (block, control step).  Transitions follow
the structured region tree: sequences chain, branches fork on a
condition bit, loops add back edges.  A ``None`` target is the halt
state (procedure done).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..errors import ControllerError
from ..ir.cdfg import (
    CDFG,
    BlockRegion,
    IfRegion,
    LoopRegion,
    Region,
    SeqRegion,
)
from ..ir.values import Value
from ..datapath.plan import BlockPlan


@dataclass
class Transition:
    """Where control goes after a state.

    Unconditional when ``cond`` is None (``if_true`` is the target).
    Conditional: ``cond`` is the 1-bit value examined at the end of the
    state; control moves to ``if_true``/``if_false``.  A ``None``
    target halts the machine.
    """

    if_true: int | None
    if_false: int | None = None
    cond: Value | None = None

    @property
    def unconditional(self) -> bool:
        return self.cond is None


@dataclass
class ControlState:
    """One controller state: a (block, step) pair plus its exit."""

    id: int
    plan: BlockPlan
    step: int
    transition: Transition = field(
        default_factory=lambda: Transition(None)
    )

    @property
    def block_name(self) -> str:
        return self.plan.block.name

    def __repr__(self) -> str:
        return f"<S{self.id} {self.block_name}#{self.step}>"


class FSM:
    """The synthesized controller."""

    def __init__(self) -> None:
        self.states: list[ControlState] = []
        self.entry: int | None = None

    @property
    def state_count(self) -> int:
        return len(self.states)

    def state(self, state_id: int) -> ControlState:
        return self.states[state_id]

    def validate(self) -> None:
        """Check structural sanity of the machine."""
        if self.entry is None and self.states:
            raise ControllerError("FSM has states but no entry")
        for state in self.states:
            transition = state.transition
            for target in (transition.if_true, transition.if_false):
                if target is not None and not (
                    0 <= target < len(self.states)
                ):
                    raise ControllerError(
                        f"state S{state.id} targets missing state "
                        f"S{target}"
                    )
            if transition.cond is None and transition.if_false is not None:
                raise ControllerError(
                    f"state S{state.id} has a false-branch without a "
                    f"condition"
                )

    def reachable(self) -> set[int]:
        """State ids reachable from the entry by following transitions."""
        if self.entry is None:
            return set()
        seen: set[int] = set()
        frontier = [self.entry]
        while frontier:
            state_id = frontier.pop()
            if state_id in seen:
                continue
            seen.add(state_id)
            transition = self.states[state_id].transition
            for target in (transition.if_true, transition.if_false):
                if target is not None and target not in seen:
                    frontier.append(target)
        return seen

    def signature(self) -> tuple:
        """Hashable identity of the machine's structure (states and
        transitions), for stage-level differential comparison.

        Condition values are identified by (producer block name, op
        position in that block), not by raw value id — ids are
        process-global counters, and signatures must compare equal
        across processes and repeated compiles of the same source.
        """

        def cond_key(cond: Value | None):
            if cond is None:
                return None
            producer = cond.producer
            return (producer.block.name,
                    producer.block.ops.index(producer))

        states = tuple(
            (
                state.id,
                state.block_name,
                state.step,
                state.transition.if_true,
                state.transition.if_false,
                cond_key(state.transition.cond),
            )
            for state in self.states
        )
        return (self.entry, states)

    def dot(self) -> str:
        """DOT rendering of the state graph."""
        lines = ["digraph fsm {", "  node [shape=circle];"]
        for state in self.states:
            lines.append(
                f'  s{state.id} [label="S{state.id}\\n'
                f'{state.block_name}#{state.step}"];'
            )
        lines.append('  halt [shape=doublecircle, label="done"];')
        for state in self.states:
            transition = state.transition
            true_target = (
                f"s{transition.if_true}"
                if transition.if_true is not None
                else "halt"
            )
            if transition.unconditional:
                lines.append(f"  s{state.id} -> {true_target};")
            else:
                false_target = (
                    f"s{transition.if_false}"
                    if transition.if_false is not None
                    else "halt"
                )
                lines.append(
                    f'  s{state.id} -> {true_target} [label="1"];'
                )
                lines.append(
                    f'  s{state.id} -> {false_target} [label="0"];'
                )
        lines.append("}")
        return "\n".join(lines)


def synthesize_fsm(cdfg: CDFG, plans: dict[int, BlockPlan]) -> FSM:
    """Build the controller for a fully planned CDFG.

    Args:
        cdfg: the procedure.
        plans: block id → :class:`BlockPlan` for every non-empty block.
    """
    fsm = FSM()

    def chain_block(block_id: int) -> tuple[int, int] | None:
        """Create the states of one block (unlinked exit).

        Returns (entry state id, last state id), or None for an empty
        block.
        """
        plan = plans.get(block_id)
        if plan is None or plan.schedule.length == 0:
            return None
        first_id = len(fsm.states)
        steps = plan.schedule.length
        for step in range(steps):
            fsm.states.append(ControlState(len(fsm.states), plan, step))
        for offset in range(steps - 1):
            fsm.states[first_id + offset].transition = Transition(
                first_id + offset + 1
            )
        return first_id, first_id + steps - 1

    def lower(region: Region, follow: int | None) -> int | None:
        """Create states for ``region``; control falls through to
        ``follow``.  Returns the region's entry state (or ``follow``
        when the region is empty)."""
        if isinstance(region, BlockRegion):
            chain = chain_block(region.block.id)
            if chain is None:
                return follow
            entry, last = chain
            fsm.states[last].transition = Transition(follow)
            return entry
        if isinstance(region, SeqRegion):
            entry = follow
            for item in reversed(region.items):
                entry = lower(item, entry)
            return entry
        if isinstance(region, IfRegion):
            then_entry = lower(region.then_region, follow)
            else_entry = (
                lower(region.else_region, follow)
                if region.else_region is not None
                else follow
            )
            chain = chain_block(region.cond_block.id)
            if chain is None:
                raise ControllerError(
                    "if-condition block produced no states"
                )
            entry, last = chain
            fsm.states[last].transition = Transition(
                then_entry, else_entry, region.cond
            )
            return entry
        if isinstance(region, LoopRegion):
            return _lower_loop(region, follow)
        raise ControllerError(f"unknown region {region!r}")

    def _lower_loop(region: LoopRegion, follow: int | None) -> int | None:
        if region.test_in_body:
            # Post-test loop: the body's final block computes the
            # condition; its last state branches back or out.  Lower
            # the body with a halt fall-through, then patch the state
            # that falls through (it belongs to the test block).
            first_new = len(fsm.states)
            body_entry = lower(region.body, None)
            if body_entry is None:
                raise ControllerError("post-test loop has empty body")
            exits = [
                state.id
                for state in fsm.states[first_new:]
                if state.transition.unconditional
                and state.transition.if_true is None
            ]
            # The state computing the condition is the body's final
            # state — the unique fall-through among states created for
            # this body whose block is the loop's test block.
            test_plan = plans.get(region.test_block.id)
            if test_plan is None:
                raise ControllerError("post-test loop test block missing")
            candidates = [
                state_id
                for state_id in exits
                if fsm.states[state_id].plan is test_plan
            ]
            if len(candidates) != 1:
                raise ControllerError(
                    f"post-test loop must exit from its test block "
                    f"({len(candidates)} candidates)"
                )
            last = candidates[0]
            # Any other fall-throughs (unreachable in well-formed
            # bodies) keep halting — validate() will flag them if they
            # appear in a traversal, and the simulator would halt.
            if region.exit_on_true:
                fsm.states[last].transition = Transition(
                    follow, body_entry, region.cond
                )
            else:
                fsm.states[last].transition = Transition(
                    body_entry, follow, region.cond
                )
            return body_entry

        # Pre-test loop.
        chain = chain_block(region.test_block.id)
        if chain is None:
            raise ControllerError("pre-test loop has no test block")
        test_entry, test_last = chain
        body_entry = lower(region.body, test_entry)
        back = body_entry if body_entry is not None else test_entry
        if region.exit_on_true:
            fsm.states[test_last].transition = Transition(
                follow, back, region.cond
            )
        else:
            fsm.states[test_last].transition = Transition(
                back, follow, region.cond
            )
        return test_entry

    fsm.entry = lower(cdfg.body, None)
    fsm.validate()
    return fsm
