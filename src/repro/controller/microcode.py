"""Microcoded controller generation and control-word encoding.

§2: "If microcoded control is chosen instead, a control step
corresponds to a microprogram step and the microprogram can be
optimized using encoding techniques for the microcontrol word."

The generator derives, for every FSM state, the control signals the
datapath needs that cycle:

* a load-enable per physical register latched anywhere in the design;
* an operation-select field per multi-function FU;
* a select field per multiplexed destination port;
* a sequencing field (branch kind + target address).

Two word formats are reported: the *horizontal* format (every field
side by side — fastest, widest) and a *dictionary-encoded* format
(distinct datapath-control words stored once in a nanostore, each
microword holding only an index — the classic two-level micro/nano
encoding that trades a decode step for ROM bits).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from ..allocation.interconnect import estimate_interconnect, value_source
from ..errors import ControllerError
from ..ir.opcodes import OpKind

if TYPE_CHECKING:  # pragma: no cover - type-only import (avoids cycle)
    from ..core.design import SynthesizedDesign


def _bits_for(count: int) -> int:
    return max(1, math.ceil(math.log2(count))) if count > 1 else 0


@dataclass
class ControlField:
    """One named field of the control word."""

    name: str
    width: int


@dataclass
class Microcode:
    """The generated microprogram.

    Attributes:
        fields: control-word fields, in word order.
        words: one assembled word per state: field name → value.
        horizontal_width: total bits of the flat word (without the
            sequencing field).
        sequencing_width: bits for branch control + target address.
        encoded_width: bits per microword under dictionary encoding
            (nanostore index + sequencing).
        nanostore_words: distinct datapath-control words.
    """

    fields: list[ControlField] = field(default_factory=list)
    words: list[dict[str, int]] = field(default_factory=list)
    horizontal_width: int = 0
    sequencing_width: int = 0
    encoded_width: int = 0
    nanostore_words: int = 0

    @property
    def states(self) -> int:
        return len(self.words)

    @property
    def horizontal_rom_bits(self) -> int:
        return self.states * (self.horizontal_width
                              + self.sequencing_width)

    @property
    def encoded_rom_bits(self) -> int:
        return (
            self.states * self.encoded_width
            + self.nanostore_words * self.horizontal_width
        )


class MicrocodeGenerator:
    """Builds the microprogram of a synthesized design."""

    def __init__(self, design: "SynthesizedDesign") -> None:
        if design.fsm is None:
            raise ControllerError("design has no controller")
        self._design = design

    def generate(self) -> Microcode:
        design = self._design
        fsm = design.fsm
        assert fsm is not None
        microcode = Microcode()

        # --- field inventory ------------------------------------------
        registers = sorted(design.storage_registers())
        load_fields = {
            ref: ControlField(f"ld_{ref[0]}_{ref[1]}", 1)
            for ref in registers
        }
        fu_kinds: dict[object, set[OpKind]] = {}
        for allocation in design.allocations.values():
            problem = allocation.schedule.problem
            for op_id, fu in allocation.fu_map.items():
                fu_kinds.setdefault(fu, set()).add(problem.op(op_id).kind)
        fu_fields = {
            fu: ControlField(f"op_{fu}", _bits_for(len(kinds)))
            for fu, kinds in sorted(
                fu_kinds.items(), key=lambda item: str(item[0])
            )
        }
        fu_kind_index = {
            fu: {kind: i for i, kind in enumerate(sorted(kinds,
                                                         key=str))}
            for fu, kinds in fu_kinds.items()
        }

        # Mux select fields from the union of per-block interconnect.
        port_sources: dict[tuple, list] = {}
        for allocation in design.allocations.values():
            estimate = estimate_interconnect(allocation)
            for port, sources in estimate.port_sources.items():
                known = port_sources.setdefault(port, [])
                for source in sorted(sources):
                    if source not in known:
                        known.append(source)
        mux_fields = {
            port: ControlField(f"sel_{'_'.join(map(str, port))}",
                               _bits_for(len(sources)))
            for port, sources in sorted(port_sources.items(),
                                        key=lambda item: str(item[0]))
            if len(sources) > 1
        }

        microcode.fields = (
            list(load_fields.values())
            + [f for f in fu_fields.values() if f.width]
            + [f for f in mux_fields.values() if f.width]
        )
        microcode.horizontal_width = sum(
            f.width for f in microcode.fields
        )
        # Sequencing: 2 bits of branch kind + a state address.
        microcode.sequencing_width = 2 + _bits_for(fsm.state_count)

        # --- per-state words ------------------------------------------
        for state in fsm.states:
            word: dict[str, int] = {f.name: 0 for f in microcode.fields}
            plan = state.plan
            allocation = plan.allocation
            for latch in plan.latches_at(state.step):
                field_ = load_fields.get(latch.target)
                if field_ is not None:
                    word[field_.name] = 1
            starts = (
                plan.starts[state.step]
                if state.step < len(plan.starts)
                else []
            )
            for op in starts:
                fu = allocation.fu_map.get(op.id)
                if fu is None:
                    continue
                field_ = fu_fields.get(fu)
                if field_ is not None and field_.width:
                    word[field_.name] = fu_kind_index[fu][op.kind]
                for index, operand in enumerate(op.operands):
                    port = ("fuport", fu.cls, fu.index, index)
                    field_ = mux_fields.get(port)
                    if field_ is None:
                        continue
                    source = value_source(allocation, operand)
                    sources = port_sources[port]
                    word[field_.name] = sources.index(source)
            microcode.words.append(word)

        distinct = {tuple(sorted(word.items())) for word in microcode.words}
        microcode.nanostore_words = len(distinct)
        microcode.encoded_width = (
            _bits_for(len(distinct)) + microcode.sequencing_width
        )
        return microcode
