"""State encoding for hardwired controllers.

§2: "the FSM can be synthesized using known methods, including state
encoding and optimization of the combinational logic."  Three standard
encodings are provided, with a first-order cost model (flip-flops plus
an estimate of next-state logic terms) that the controller-cost bench
compares.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..errors import ControllerError
from .fsm import FSM


def _gray(index: int) -> int:
    return index ^ (index >> 1)


@dataclass
class StateEncoding:
    """Codes assigned to every FSM state.

    Attributes:
        style: "binary", "gray" or "onehot".
        bits: flip-flop count.
        codes: state id → code (an integer whose ``bits``-wide binary
            expansion is the flip-flop pattern).
    """

    style: str
    bits: int
    codes: dict[int, int]

    def code_str(self, state_id: int) -> str:
        return format(self.codes[state_id], f"0{self.bits}b")

    @property
    def flipflops(self) -> int:
        return self.bits

    def next_state_terms(self, fsm: FSM) -> int:
        """A first-order estimate of next-state combinational logic:
        one product term per (transition edge, set bit of the target
        code) — the standard sum-of-products sizing argument."""
        terms = 0
        for state in fsm.states:
            targets = [state.transition.if_true]
            if not state.transition.unconditional:
                targets.append(state.transition.if_false)
            for target in targets:
                if target is None:
                    continue
                terms += bin(self.codes[target]).count("1") or 1
        return terms


def encode_states(fsm: FSM, style: str = "binary") -> StateEncoding:
    """Assign codes to the FSM's states.

    Args:
        fsm: the controller.
        style: ``"binary"`` (minimal bits, sequential codes),
            ``"gray"`` (minimal bits, adjacent states differ in one
            bit along the dominant chain), or ``"onehot"`` (one
            flip-flop per state, trivial decode).
    """
    count = fsm.state_count
    if count == 0:
        return StateEncoding(style, 0, {})
    if style == "binary":
        bits = max(1, math.ceil(math.log2(count)))
        codes = {state.id: state.id for state in fsm.states}
    elif style == "gray":
        bits = max(1, math.ceil(math.log2(count)))
        codes = {state.id: _gray(state.id) for state in fsm.states}
    elif style == "onehot":
        bits = count
        codes = {state.id: 1 << state.id for state in fsm.states}
    else:
        raise ControllerError(f"unknown encoding style {style!r}")
    return StateEncoding(style, bits, codes)
