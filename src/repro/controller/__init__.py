"""Controller synthesis: FSM construction, state encoding, microcode."""

from .encoding import StateEncoding, encode_states
from .fsm import FSM, ControlState, Transition, synthesize_fsm
from .logic import (
    LogicSummary,
    literal_count,
    minimize_next_state_logic,
    minimum_cover,
    prime_implicants,
)
from .microcode import ControlField, Microcode, MicrocodeGenerator

__all__ = [
    "ControlField",
    "ControlState",
    "FSM",
    "LogicSummary",
    "Microcode",
    "MicrocodeGenerator",
    "StateEncoding",
    "Transition",
    "encode_states",
    "literal_count",
    "minimize_next_state_logic",
    "minimum_cover",
    "prime_implicants",
    "synthesize_fsm",
]
