"""Two-level logic minimization for the controller (Quine-McCluskey).

§2: once state encoding is chosen, "the FSM can be synthesized using
known methods, including state encoding and optimization of the
combinational logic."  This module provides that last step: an exact
Quine-McCluskey prime-implicant generator with a greedy cover (exact
branch-and-bound cover for small tables), applied to the FSM's
next-state and done-flag functions.  Unassigned state codes are don't
cares — the classic payoff of encoding choice.

Cubes are strings over {'0','1','-'}; a function's cost is its number
of product terms and total literal count, the standard two-level
sizing the 1980s tools reported.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..errors import ControllerError
from .encoding import StateEncoding
from .fsm import FSM

MAX_QM_BITS = 14


def _combine(cube_a: str, cube_b: str) -> str | None:
    """Merge two cubes differing in exactly one specified bit."""
    difference = 0
    merged = []
    for bit_a, bit_b in zip(cube_a, cube_b):
        if bit_a == bit_b:
            merged.append(bit_a)
        elif "-" in (bit_a, bit_b):
            return None
        else:
            difference += 1
            merged.append("-")
            if difference > 1:
                return None
    return "".join(merged) if difference == 1 else None


def _covers(cube: str, minterm_bits: str) -> bool:
    return all(
        c == "-" or c == m for c, m in zip(cube, minterm_bits)
    )


def _to_bits(value: int, width: int) -> str:
    return format(value, f"0{width}b")


def prime_implicants(width: int, ones: set[int],
                     dont_cares: set[int]) -> list[str]:
    """All prime implicants of the function (ones ∪ don't-cares)."""
    if width > MAX_QM_BITS:
        raise ControllerError(
            f"Quine-McCluskey limited to {MAX_QM_BITS} inputs"
        )
    current = {
        _to_bits(value, width) for value in (ones | dont_cares)
    }
    primes: set[str] = set()
    while current:
        merged_from: set[str] = set()
        next_level: set[str] = set()
        cubes = sorted(current)
        for i, cube_a in enumerate(cubes):
            for cube_b in cubes[i + 1:]:
                merged = _combine(cube_a, cube_b)
                if merged is not None:
                    next_level.add(merged)
                    merged_from.add(cube_a)
                    merged_from.add(cube_b)
        primes |= current - merged_from
        current = next_level
    return sorted(primes)


def minimum_cover(width: int, ones: set[int],
                  dont_cares: set[int]) -> list[str]:
    """A minimal (exact for small tables, greedy otherwise) cover of
    ``ones`` by prime implicants."""
    if not ones:
        return []
    primes = prime_implicants(width, ones, dont_cares)
    minterm_bits = {one: _to_bits(one, width) for one in ones}
    coverage = {
        prime: {
            one for one in ones if _covers(prime, minterm_bits[one])
        }
        for prime in primes
    }

    # Essential primes first.
    chosen: list[str] = []
    uncovered = set(ones)
    for one in sorted(ones):
        covering = [p for p in primes if one in coverage[p]]
        if len(covering) == 1 and covering[0] not in chosen:
            chosen.append(covering[0])
    for prime in chosen:
        uncovered -= coverage[prime]

    remaining_primes = [p for p in primes if p not in chosen]
    if uncovered:
        if len(remaining_primes) <= 18:
            extra = _exact_cover(remaining_primes, coverage, uncovered)
        else:
            extra = _greedy_cover(remaining_primes, coverage, uncovered)
        chosen.extend(extra)
    return sorted(chosen)


def _greedy_cover(primes, coverage, uncovered) -> list[str]:
    chosen = []
    uncovered = set(uncovered)
    while uncovered:
        best = max(
            primes,
            key=lambda p: (len(coverage[p] & uncovered),
                           p.count("-"), p),
        )
        if not coverage[best] & uncovered:  # pragma: no cover
            raise ControllerError("cover construction failed")
        chosen.append(best)
        uncovered -= coverage[best]
    return chosen


def _exact_cover(primes, coverage, uncovered) -> list[str]:
    """Branch-and-bound minimum cover (small candidate sets only)."""
    best: list[str] | None = None

    def search(index: int, chosen: list[str], remaining: set[int]):
        nonlocal best
        if best is not None and len(chosen) >= len(best):
            return
        if not remaining:
            best = list(chosen)
            return
        if index == len(primes):
            return
        # Prune: remaining primes can't help.
        if not any(
            coverage[p] & remaining for p in primes[index:]
        ):
            return
        prime = primes[index]
        if coverage[prime] & remaining:
            chosen.append(prime)
            search(index + 1, chosen, remaining - coverage[prime])
            chosen.pop()
        search(index + 1, chosen, remaining)

    search(0, [], set(uncovered))
    if best is None:  # pragma: no cover
        raise ControllerError("no cover found")
    return best


def literal_count(cubes: list[str]) -> int:
    """Total literals over a cube list (specified bits)."""
    return sum(
        sum(1 for bit in cube if bit != "-") for cube in cubes
    )


# ----------------------------------------------------------------------
# FSM next-state logic
# ----------------------------------------------------------------------


@dataclass
class LogicSummary:
    """Two-level cost of the controller's sequencing logic.

    Inputs: state register bits plus one condition bit.  Outputs: the
    next-state code bits plus the ``done`` flag.  ``naive_terms`` is
    one product term per (transition, asserted output bit) — the
    unoptimized PLA; ``terms`` / ``literals`` are after minimization
    with unused codes as don't cares.
    """

    input_bits: int
    output_bits: int
    naive_terms: int
    terms: int
    literals: int
    covers: dict[str, list[str]] = field(default_factory=dict)

    def report(self) -> str:
        return (
            f"next-state logic: {self.input_bits} in / "
            f"{self.output_bits} out, product terms "
            f"{self.naive_terms} -> {self.terms} "
            f"({self.literals} literals)"
        )


def minimize_next_state_logic(fsm: FSM,
                              encoding: StateEncoding) -> LogicSummary:
    """Minimize the FSM's next-state and done functions under the given
    encoding (one extra input: the branch condition bit)."""
    state_bits = max(encoding.bits, 1)
    input_bits = state_bits + 1  # condition appended as the LSB
    if input_bits > MAX_QM_BITS:
        raise ControllerError(
            f"FSM too large for two-level minimization "
            f"({input_bits} input bits)"
        )

    # done flag + next-state bits (the halt target re-enters code 0 —
    # the harness's idle convention; done distinguishes it).
    output_ones: dict[str, set[int]] = {
        f"ns{bit}": set() for bit in range(state_bits)
    }
    output_ones["done"] = set()
    used_inputs: set[int] = set()
    naive_terms = 0

    for state in fsm.states:
        code = encoding.codes[state.id]
        transition = state.transition
        for cond_value in (0, 1):
            input_word = (code << 1) | cond_value
            used_inputs.add(input_word)
            if transition.unconditional:
                target = transition.if_true
            else:
                target = (
                    transition.if_true if cond_value
                    else transition.if_false
                )
            if target is None:
                output_ones["done"].add(input_word)
                target_code = 0
            else:
                target_code = encoding.codes[target]
            for bit in range(state_bits):
                if target_code >> bit & 1:
                    output_ones[f"ns{bit}"].add(input_word)
        asserted = sum(
            1 for ones in output_ones.values()
            if ((code << 1) in ones) or ((code << 1 | 1) in ones)
        )
        naive_terms += max(asserted, 1) * (
            1 if transition.unconditional else 2
        )

    all_inputs = set(range(1 << input_bits))
    dont_cares = all_inputs - used_inputs

    covers: dict[str, list[str]] = {}
    distinct_cubes: set[str] = set()
    literals = 0
    for name, ones in sorted(output_ones.items()):
        cover = minimum_cover(input_bits, ones, dont_cares)
        covers[name] = cover
        distinct_cubes |= set(cover)
        literals += literal_count(cover)

    return LogicSummary(
        input_bits=input_bits,
        output_bits=state_bits + 1,
        naive_terms=naive_terms,
        terms=len(distinct_cubes),
        literals=literals,
        covers=covers,
    )
