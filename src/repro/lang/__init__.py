"""Behavioral specification language (BSL) frontend.

``compile_source`` is the main entry: BSL text in, validated CDFG out.
"""

from . import ast
from .lexer import Lexer, tokenize
from .parser import Parser, parse
from .semantics import Lowerer, compile_program, compile_source
from .tokens import Token, TokenKind

__all__ = [
    "Lexer",
    "Lowerer",
    "Parser",
    "Token",
    "TokenKind",
    "ast",
    "compile_program",
    "compile_source",
    "parse",
    "tokenize",
]
