"""Hand-written lexer for the behavioral specification language.

Comments run from ``--`` to end of line (the Ada style the paper's
systems used) or are enclosed in ``{ }`` (Pascal style).  Identifiers
are case-sensitive; keywords are lowercase.
"""

from __future__ import annotations

from ..errors import LexError, SourceLocation
from .tokens import KEYWORDS, Token, TokenKind

_TWO_CHAR = {
    ":=": TokenKind.ASSIGN,
    "<<": TokenKind.SHL,
    ">>": TokenKind.SHR,
    "<=": TokenKind.LE,
    ">=": TokenKind.GE,
    "/=": TokenKind.NE,
}

_ONE_CHAR = {
    "(": TokenKind.LPAREN,
    ")": TokenKind.RPAREN,
    "[": TokenKind.LBRACKET,
    "]": TokenKind.RBRACKET,
    ",": TokenKind.COMMA,
    ":": TokenKind.COLON,
    ";": TokenKind.SEMICOLON,
    "+": TokenKind.PLUS,
    "-": TokenKind.MINUS,
    "*": TokenKind.STAR,
    "/": TokenKind.SLASH,
    "&": TokenKind.AMP,
    "|": TokenKind.PIPE,
    "^": TokenKind.CARET,
    "~": TokenKind.TILDE,
    "=": TokenKind.EQ,
    "<": TokenKind.LT,
    ">": TokenKind.GT,
}


class Lexer:
    """Converts source text into a token stream."""

    def __init__(self, source: str) -> None:
        self._source = source
        self._pos = 0
        self._line = 1
        self._column = 1

    def tokenize(self) -> list[Token]:
        """Lex the whole input; the final token is always EOF."""
        tokens: list[Token] = []
        while True:
            token = self._next_token()
            tokens.append(token)
            if token.kind is TokenKind.EOF:
                return tokens

    # ------------------------------------------------------------------

    def _location(self) -> SourceLocation:
        return SourceLocation(self._line, self._column)

    def _peek(self, offset: int = 0) -> str:
        index = self._pos + offset
        return self._source[index] if index < len(self._source) else ""

    def _advance(self, count: int = 1) -> None:
        for _ in range(count):
            if self._pos < len(self._source):
                if self._source[self._pos] == "\n":
                    self._line += 1
                    self._column = 1
                else:
                    self._column += 1
                self._pos += 1

    def _skip_trivia(self) -> None:
        while True:
            char = self._peek()
            if char and char in " \t\r\n":
                self._advance()
            elif char == "-" and self._peek(1) == "-":
                while self._peek() not in ("", "\n"):
                    self._advance()
            elif char == "{":
                start = self._location()
                while self._peek() not in ("", "}"):
                    self._advance()
                if self._peek() != "}":
                    raise LexError("unterminated { comment", start)
                self._advance()
            else:
                return

    def _next_token(self) -> Token:
        self._skip_trivia()
        location = self._location()
        char = self._peek()
        if char == "":
            return Token(TokenKind.EOF, "", location)
        if char.isalpha() or char == "_":
            return self._identifier(location)
        if char.isdigit():
            return self._number(location)
        two = char + self._peek(1)
        if two in _TWO_CHAR:
            self._advance(2)
            return Token(_TWO_CHAR[two], two, location)
        if char in _ONE_CHAR:
            self._advance()
            return Token(_ONE_CHAR[char], char, location)
        raise LexError(f"unexpected character {char!r}", location)

    def _identifier(self, location: SourceLocation) -> Token:
        start = self._pos
        while self._peek().isalnum() or self._peek() == "_":
            self._advance()
        text = self._source[start:self._pos]
        kind = KEYWORDS.get(text, TokenKind.IDENT)
        return Token(kind, text, location)

    def _number(self, location: SourceLocation) -> Token:
        start = self._pos
        while self._peek().isdigit():
            self._advance()
        is_real = False
        if self._peek() == "." and self._peek(1).isdigit():
            is_real = True
            self._advance()
            while self._peek().isdigit():
                self._advance()
        text = self._source[start:self._pos]
        kind = TokenKind.REAL if is_real else TokenKind.INT
        return Token(kind, text, location)


def tokenize(source: str) -> list[Token]:
    """Convenience wrapper: lex ``source`` into tokens."""
    return Lexer(source).tokenize()
