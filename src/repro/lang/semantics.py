"""Semantic analysis and lowering of BSL programs to CDFGs.

This is the "compilation of the formal language into an internal
representation" step of the tutorial's §2.  Lowering performs, in one
pass:

* symbol resolution and type checking (with contextual typing of
  literals — ``I + 1`` types the ``1`` from ``I``);
* per-block variable renaming: inside a block, reads of a variable
  assigned earlier in the same block are wired straight to the defining
  value, so only upward-exposed reads become ``VAR_READ`` ops and only
  the final assignment becomes a ``VAR_WRITE`` — the arc-per-value form
  the paper highlights in Fig. 1;
* structured control lowering (``if`` → :class:`IfRegion`, ``while`` /
  ``for`` → pre-test :class:`LoopRegion`, ``repeat``/``until`` →
  post-test loop whose exit comparison lives *inside* the body's last
  block, exactly as in the paper's sqrt example);
* inline expansion of procedure calls (one of the paper's standard
  high-level transformations), with hygienic renaming of callee locals.
"""

from __future__ import annotations

from ..errors import SemanticError, SourceLocation
from ..ir.cdfg import CDFG, BlockRegion, IfRegion, LoopRegion, Region, SeqRegion
from ..ir.opcodes import OpKind
from ..ir.types import BOOL, ArrayType, FixedType, IntType, Type, is_scalar
from ..ir.values import BasicBlock, Value
from . import ast
from .parser import parse

_ARITH_OPS = {
    "+": OpKind.ADD,
    "-": OpKind.SUB,
    "*": OpKind.MUL,
    "/": OpKind.DIV,
    "mod": OpKind.MOD,
    "&": OpKind.AND,
    "|": OpKind.OR,
    "^": OpKind.XOR,
}

_SHIFT_OPS = {"<<": OpKind.SHL, ">>": OpKind.SHR}

_COMPARE_OPS = {
    "=": OpKind.EQ,
    "/=": OpKind.NE,
    "<": OpKind.LT,
    "<=": OpKind.LE,
    ">": OpKind.GT,
    ">=": OpKind.GE,
}

_DEFAULT_INT = IntType(32)
_DEFAULT_FIXED = FixedType(32, 16)
_SHIFT_AMOUNT = IntType(6, signed=False)


def _common_arith_type(a: Type, b: Type) -> Type:
    from ..ir.types import common_type

    return common_type(a, b)


class Lowerer:
    """Lowers one procedure of a program to a :class:`CDFG`.

    Args:
        program: the parsed program.
        sink: optional :class:`~repro.analysis.diagnostics.DiagnosticSink`.
            When given, recoverable findings (an assignment that
            implicitly truncates, for instance) are reported as
            warnings instead of being silently accepted; hard semantic
            errors still raise.  Lowering also records each op's source
            location into ``cdfg.source_map`` so downstream lint rules
            can point back at the source text.
    """

    def __init__(self, program: ast.Program, sink=None) -> None:
        self._program = program
        self._sink = sink
        self._cdfg: CDFG | None = None
        self._block: BasicBlock | None = None
        self._defs: dict[str, Value] = {}
        self._reads: dict[str, Value] = {}
        self._def_locations: dict[str, SourceLocation] = {}
        self._call_stack: list[str] = []
        self._inline_counter = 0

    # ------------------------------------------------------------------
    # Entry point
    # ------------------------------------------------------------------

    def lower(self, name: str | None = None) -> CDFG:
        """Lower the named procedure (default: the last one defined)."""
        if not self._program.procedures:
            raise SemanticError("program contains no procedures")
        proc = (
            self._program.procedures[-1]
            if name is None
            else self._program.procedure(name)
        )
        cdfg = CDFG(proc.name)
        self._cdfg = cdfg
        for param in proc.params:
            if not is_scalar(param.type) and param.direction == "output":
                raise SemanticError(
                    f"output parameter {param.name!r} must be scalar",
                    param.location,
                )
            if param.direction == "input":
                cdfg.add_input(param.name, param.type)
            else:
                cdfg.add_output(param.name, param.type)
        for decl in proc.decls:
            if decl.name in cdfg.variables or decl.name in cdfg.memories:
                raise SemanticError(
                    f"duplicate declaration of {decl.name!r}", decl.location
                )
            cdfg.add_variable(decl.name, decl.type)
        cdfg.body = self._lower_stmts(proc.body)
        cdfg.validate()
        return cdfg

    # ------------------------------------------------------------------
    # Block management
    # ------------------------------------------------------------------

    @property
    def cdfg(self) -> CDFG:
        assert self._cdfg is not None
        return self._cdfg

    def _current_block(self) -> BasicBlock:
        if self._block is None:
            self._block = self.cdfg.new_block()
            self._defs = {}
            self._reads = {}
            self._def_locations = {}
        return self._block

    def _close_block(self) -> BasicBlock | None:
        """Flush pending variable writes and detach the current block.

        Returns the closed block, or None if no block was open.
        """
        block = self._block
        if block is None:
            return None
        for var in sorted(self._defs):
            op = block.write(var, self._defs[var])
            location = self._def_locations.get(var)
            if location is not None:
                self.cdfg.source_map[op.id] = location
        self._block = None
        self._defs = {}
        self._reads = {}
        self._def_locations = {}
        return block

    def _locate(self, value_or_op, location: SourceLocation) -> None:
        """Record the source location of an op (or a value's producer)."""
        op = getattr(value_or_op, "producer", value_or_op)
        self.cdfg.source_map.setdefault(op.id, location)

    # ------------------------------------------------------------------
    # Statements
    # ------------------------------------------------------------------

    def _lower_stmts(self, stmts: list[ast.Stmt]) -> Region:
        items: list[Region] = []
        for stmt in stmts:
            self._lower_stmt(stmt, items)
        closed = self._close_block()
        if closed is not None:
            items.append(BlockRegion(closed))
        if len(items) == 1:
            return items[0]
        return SeqRegion(items)

    def _flush_into(self, items: list[Region]) -> None:
        closed = self._close_block()
        if closed is not None:
            items.append(BlockRegion(closed))

    def _lower_stmt(self, stmt: ast.Stmt, items: list[Region]) -> None:
        if isinstance(stmt, ast.Assign):
            self._lower_assign(stmt)
        elif isinstance(stmt, ast.If):
            self._lower_if(stmt, items)
        elif isinstance(stmt, ast.While):
            self._lower_while(stmt, items)
        elif isinstance(stmt, ast.Repeat):
            self._lower_repeat(stmt, items)
        elif isinstance(stmt, ast.For):
            self._lower_for(stmt, items)
        elif isinstance(stmt, ast.Call):
            self._lower_call(stmt, items)
        else:  # pragma: no cover - parser produces no other nodes
            raise SemanticError(f"unknown statement {stmt!r}", stmt.location)

    def _lower_assign(self, stmt: ast.Assign) -> None:
        if isinstance(stmt.target, ast.VarRef):
            var = stmt.target.name
            if var in self.cdfg.memories:
                raise SemanticError(
                    f"memory {var!r} needs an index to be assigned",
                    stmt.location,
                )
            var_type = self._scalar_type(var, stmt.location)
            if any(port.name == var for port in self.cdfg.inputs):
                raise SemanticError(
                    f"cannot assign to input {var!r}", stmt.location
                )
            value = self._eval(stmt.value, var_type)
            self._check_truncation(var, var_type, value, stmt.location)
            if value.name is None:
                value.name = var
            self._defs[var] = value
            self._def_locations[var] = stmt.location
        elif isinstance(stmt.target, ast.IndexRef):
            memory = self._memory_type(stmt.target.name, stmt.location)
            index = self._eval(
                stmt.target.index, IntType(memory.address_width, signed=False)
            )
            value = self._eval(stmt.value, memory.element)
            op = self._current_block().emit(
                OpKind.STORE, [index, value], memory=stmt.target.name
            )
            self._locate(op, stmt.location)
        else:  # pragma: no cover
            raise SemanticError("invalid assignment target", stmt.location)

    def _check_truncation(self, var: str, var_type: Type, value: Value,
                          location: SourceLocation) -> None:
        """Warn when an assignment narrows the computed value.

        The expression was evaluated at its natural (widened) type; the
        variable register only holds ``var_type`` bits, so extra bits
        are silently dropped at the write-back.
        """
        if self._sink is None or value.type == var_type:
            return
        from ..ir.types import bit_width

        if not (is_scalar(value.type) and is_scalar(var_type)):
            return
        # A literal only carries the wide *default* type for lack of a
        # numeric context (`n := 3.0` evaluates at fixed<32,16>); when
        # the constant is exactly representable in the destination, the
        # write-back drops nothing and the warning would be noise.
        if value.producer.kind is OpKind.CONST:
            from ..sim.semantics import coerce

            literal = value.producer.attrs["value"]
            if coerce(literal, var_type) == literal:
                return
        if bit_width(value.type) > bit_width(var_type):
            self._sink.warning(
                "lang.implicit-trunc",
                f"assignment to {var!r} truncates {value.type} "
                f"to {var_type}",
                location=location,
                subject=var,
            )

    def _lower_if(self, stmt: ast.If, items: list[Region]) -> None:
        cond = self._eval_condition(stmt.cond)
        cond_block = self._close_block()
        assert cond_block is not None  # the condition was just emitted
        then_region = self._lower_stmts(stmt.then_body)
        else_region = (
            self._lower_stmts(stmt.else_body) if stmt.else_body else None
        )
        items.append(IfRegion(cond_block, cond, then_region, else_region))

    def _lower_while(self, stmt: ast.While, items: list[Region]) -> None:
        self._flush_into(items)
        cond = self._eval_condition(stmt.cond)
        test_block = self._close_block()
        assert test_block is not None
        body = self._lower_stmts(stmt.body)
        items.append(
            LoopRegion(
                body=body,
                test_block=test_block,
                cond=cond,
                exit_on_true=False,
                test_in_body=False,
            )
        )

    def _lower_repeat(self, stmt: ast.Repeat, items: list[Region]) -> None:
        self._flush_into(items)
        body_items: list[Region] = []
        for body_stmt in stmt.body:
            self._lower_stmt(body_stmt, body_items)
        # The exit comparison is computed in the body's final block, so
        # it gets scheduled together with the body (paper Fig. 2).
        cond = self._eval_condition(stmt.cond)
        test_block = self._close_block()
        assert test_block is not None
        body_items.append(BlockRegion(test_block))
        body = (
            body_items[0] if len(body_items) == 1 else SeqRegion(body_items)
        )
        items.append(
            LoopRegion(
                body=body,
                test_block=test_block,
                cond=cond,
                exit_on_true=True,
                test_in_body=True,
            )
        )

    def _lower_for(self, stmt: ast.For, items: list[Region]) -> None:
        var_type = self._scalar_type(stmt.var, stmt.location)
        if not isinstance(var_type, IntType):
            raise SemanticError(
                f"for-loop variable {stmt.var!r} must be an integer",
                stmt.location,
            )
        start_value = self._eval(stmt.start, var_type)
        start_value.name = stmt.var
        self._defs[stmt.var] = start_value
        self._def_locations[stmt.var] = stmt.location
        self._flush_into(items)

        # Pre-test loop: while var <= stop (or >= for downto).
        compare = "<=" if not stmt.downward else ">="
        cond = self._eval_condition(
            ast.Binary(
                stmt.location,
                compare,
                ast.VarRef(stmt.location, stmt.var),
                stmt.stop,
            )
        )
        test_block = self._close_block()
        assert test_block is not None

        step = "+" if not stmt.downward else "-"
        update = ast.Assign(
            stmt.location,
            ast.VarRef(stmt.location, stmt.var),
            ast.Binary(
                stmt.location,
                step,
                ast.VarRef(stmt.location, stmt.var),
                ast.IntLiteral(stmt.location, 1),
            ),
        )
        body = self._lower_stmts(list(stmt.body) + [update])

        trip_count = None
        if isinstance(stmt.start, ast.IntLiteral) and isinstance(
            stmt.stop, ast.IntLiteral
        ):
            if stmt.downward:
                trip_count = max(0, stmt.start.value - stmt.stop.value + 1)
            else:
                trip_count = max(0, stmt.stop.value - stmt.start.value + 1)
        items.append(
            LoopRegion(
                body=body,
                test_block=test_block,
                cond=cond,
                exit_on_true=False,
                test_in_body=False,
                trip_count=trip_count,
            )
        )

    # ------------------------------------------------------------------
    # Procedure inlining
    # ------------------------------------------------------------------

    def _lower_call(self, stmt: ast.Call, items: list[Region]) -> None:
        try:
            callee = self._program.procedure(stmt.name)
        except KeyError:
            raise SemanticError(
                f"call to unknown procedure {stmt.name!r}", stmt.location
            ) from None
        if stmt.name in self._call_stack:
            raise SemanticError(
                f"recursive call to {stmt.name!r} cannot be synthesized",
                stmt.location,
            )
        if len(stmt.args) != len(callee.params):
            raise SemanticError(
                f"{stmt.name!r} expects {len(callee.params)} arguments, "
                f"got {len(stmt.args)}",
                stmt.location,
            )

        self._inline_counter += 1
        tag = f"{stmt.name}${self._inline_counter}"
        rename: dict[str, str] = {}

        # Declare mangled copies of params and locals, bind arguments.
        copy_out: list[tuple[str, ast.Expr]] = []
        for param, arg in zip(callee.params, stmt.args):
            mangled = f"{tag}${param.name}"
            rename[param.name] = mangled
            self.cdfg.add_variable(mangled, param.type)
            if param.direction == "input":
                value = self._eval(arg, param.type)
                value.name = mangled
                self._defs[mangled] = value
                self._def_locations[mangled] = stmt.location
            else:
                if not isinstance(arg, ast.VarRef):
                    raise SemanticError(
                        f"output argument for {param.name!r} must be a "
                        f"variable",
                        stmt.location,
                    )
                copy_out.append((mangled, arg))
        for decl in callee.decls:
            mangled = f"{tag}${decl.name}"
            rename[decl.name] = mangled
            self.cdfg.add_variable(mangled, decl.type)

        self._call_stack.append(stmt.name)
        try:
            for body_stmt in callee.body:
                renamed = _rename_stmt(body_stmt, rename)
                self._lower_stmt(renamed, items)
        finally:
            self._call_stack.pop()

        # Copy outputs back into the caller's variables.
        for mangled, target in copy_out:
            self._lower_assign(
                ast.Assign(
                    stmt.location,
                    target,
                    ast.VarRef(stmt.location, mangled),
                )
            )

    # ------------------------------------------------------------------
    # Expressions
    # ------------------------------------------------------------------

    def _scalar_type(self, name: str, location: SourceLocation) -> Type:
        if name in self.cdfg.variables:
            return self.cdfg.variables[name]
        if name in self.cdfg.memories:
            raise SemanticError(
                f"array {name!r} used without an index", location
            )
        raise SemanticError(f"undeclared variable {name!r}", location)

    def _memory_type(self, name: str, location: SourceLocation) -> ArrayType:
        if name in self.cdfg.memories:
            return self.cdfg.memories[name]
        if name in self.cdfg.variables:
            raise SemanticError(f"{name!r} is scalar, cannot index", location)
        raise SemanticError(f"undeclared array {name!r}", location)

    def _eval_condition(self, expr: ast.Expr) -> Value:
        value = self._eval(expr, None)
        if value.type != BOOL:
            raise SemanticError(
                "condition must be boolean (a comparison or and/or/not)",
                expr.location,
            )
        return value

    def _read_var(self, name: str, location: SourceLocation) -> Value:
        type_ = self._scalar_type(name, location)
        if name in self._defs:
            return self._defs[name]
        if name in self._reads:
            return self._reads[name]
        value = self._current_block().read(name, type_)
        self._locate(value, location)
        self._reads[name] = value
        return value

    def _eval(self, expr: ast.Expr, expected: Type | None) -> Value:
        """Evaluate ``expr`` into the current block, returning its value.

        ``expected`` provides contextual typing for literals.
        """
        block = self._current_block()
        if isinstance(expr, ast.IntLiteral):
            type_ = expected if expected is not None else _DEFAULT_INT
            if isinstance(type_, ArrayType):
                raise SemanticError("literal cannot have array type",
                                    expr.location)
            expr.type = type_
            value = block.const(expr.value, type_)
            self._locate(value, expr.location)
            return value
        if isinstance(expr, ast.RealLiteral):
            type_ = (
                expected
                if isinstance(expected, FixedType)
                else _DEFAULT_FIXED
            )
            expr.type = type_
            value = block.const(type_.quantize(expr.value), type_)
            self._locate(value, expr.location)
            return value
        if isinstance(expr, ast.VarRef):
            value = self._read_var(expr.name, expr.location)
            expr.type = value.type
            return value
        if isinstance(expr, ast.IndexRef):
            memory = self._memory_type(expr.name, expr.location)
            index = self._eval(
                expr.index, IntType(memory.address_width, signed=False)
            )
            op = self._current_block().emit(
                OpKind.LOAD, [index], memory.element, memory=expr.name
            )
            expr.type = memory.element
            self._locate(op, expr.location)
            assert op.result is not None
            return op.result
        if isinstance(expr, ast.Unary):
            return self._eval_unary(expr, expected)
        if isinstance(expr, ast.Binary):
            return self._eval_binary(expr, expected)
        raise SemanticError(f"unknown expression {expr!r}", expr.location)

    def _eval_unary(self, expr: ast.Unary, expected: Type | None) -> Value:
        if expr.op == "-":
            operand = self._eval(expr.operand, expected)
            op = self._current_block().emit(
                OpKind.NEG, [operand], operand.type
            )
        elif expr.op == "not":
            operand = self._eval(expr.operand, None)
            if operand.type != BOOL:
                raise SemanticError("'not' needs a boolean operand",
                                    expr.location)
            op = self._current_block().emit(OpKind.NOT, [operand], BOOL)
        elif expr.op == "~":
            operand = self._eval(expr.operand, expected)
            if not isinstance(operand.type, IntType):
                raise SemanticError("'~' needs an integer operand",
                                    expr.location)
            op = self._current_block().emit(
                OpKind.NOT, [operand], operand.type
            )
        else:  # pragma: no cover
            raise SemanticError(f"unknown unary op {expr.op!r}", expr.location)
        self._locate(op, expr.location)
        expr.type = op.result.type
        assert op.result is not None
        return op.result

    def _eval_binary(self, expr: ast.Binary, expected: Type | None) -> Value:
        block = self._current_block()
        if expr.op in ("and", "or"):
            left = self._eval(expr.left, None)
            right = self._eval(expr.right, None)
            if left.type != BOOL or right.type != BOOL:
                raise SemanticError(
                    f"{expr.op!r} needs boolean operands", expr.location
                )
            kind = OpKind.AND if expr.op == "and" else OpKind.OR
            op = block.emit(kind, [left, right], BOOL)
        elif expr.op in _SHIFT_OPS:
            left = self._eval(expr.left, expected)
            amount = self._eval(expr.right, _SHIFT_AMOUNT)
            op = block.emit(_SHIFT_OPS[expr.op], [left, amount], left.type)
        elif expr.op in _COMPARE_OPS:
            left, right = self._eval_operand_pair(expr.left, expr.right, None)
            op = block.emit(_COMPARE_OPS[expr.op], [left, right], BOOL)
        elif expr.op in _ARITH_OPS:
            left, right = self._eval_operand_pair(
                expr.left, expr.right, expected
            )
            result_type = _common_arith_type(left.type, right.type)
            op = block.emit(_ARITH_OPS[expr.op], [left, right], result_type)
        else:  # pragma: no cover
            raise SemanticError(f"unknown operator {expr.op!r}", expr.location)
        self._locate(op, expr.location)
        assert op.result is not None
        expr.type = op.result.type
        return op.result

    def _eval_operand_pair(
        self, left: ast.Expr, right: ast.Expr, expected: Type | None
    ) -> tuple[Value, Value]:
        """Evaluate both operands with contextual literal typing: a
        literal operand adopts the other operand's type."""
        if expected is not None:
            return self._eval(left, expected), self._eval(right, expected)
        left_literal = isinstance(left, (ast.IntLiteral, ast.RealLiteral))
        right_literal = isinstance(right, (ast.IntLiteral, ast.RealLiteral))
        if left_literal and not right_literal:
            right_value = self._eval(right, None)
            left_value = self._eval(left, right_value.type)
            return left_value, right_value
        left_value = self._eval(left, None)
        right_value = self._eval(right, left_value.type)
        return left_value, right_value


def _rename_expr(expr: ast.Expr, rename: dict[str, str]) -> ast.Expr:
    """Copy ``expr`` with variable names substituted (for inlining)."""
    if isinstance(expr, ast.IntLiteral):
        return ast.IntLiteral(expr.location, expr.value)
    if isinstance(expr, ast.RealLiteral):
        return ast.RealLiteral(expr.location, expr.value)
    if isinstance(expr, ast.VarRef):
        return ast.VarRef(expr.location, rename.get(expr.name, expr.name))
    if isinstance(expr, ast.IndexRef):
        return ast.IndexRef(
            expr.location,
            rename.get(expr.name, expr.name),
            _rename_expr(expr.index, rename),
        )
    if isinstance(expr, ast.Unary):
        return ast.Unary(expr.location, expr.op,
                         _rename_expr(expr.operand, rename))
    if isinstance(expr, ast.Binary):
        return ast.Binary(
            expr.location,
            expr.op,
            _rename_expr(expr.left, rename),
            _rename_expr(expr.right, rename),
        )
    raise SemanticError(f"cannot rename {expr!r}", expr.location)


def _rename_stmt(stmt: ast.Stmt, rename: dict[str, str]) -> ast.Stmt:
    """Copy ``stmt`` with variable names substituted (for inlining)."""
    if isinstance(stmt, ast.Assign):
        return ast.Assign(
            stmt.location,
            _rename_expr(stmt.target, rename),
            _rename_expr(stmt.value, rename),
        )
    if isinstance(stmt, ast.If):
        return ast.If(
            stmt.location,
            _rename_expr(stmt.cond, rename),
            [_rename_stmt(s, rename) for s in stmt.then_body],
            [_rename_stmt(s, rename) for s in stmt.else_body],
        )
    if isinstance(stmt, ast.While):
        return ast.While(
            stmt.location,
            _rename_expr(stmt.cond, rename),
            [_rename_stmt(s, rename) for s in stmt.body],
        )
    if isinstance(stmt, ast.Repeat):
        return ast.Repeat(
            stmt.location,
            [_rename_stmt(s, rename) for s in stmt.body],
            _rename_expr(stmt.cond, rename),
        )
    if isinstance(stmt, ast.For):
        return ast.For(
            stmt.location,
            rename.get(stmt.var, stmt.var),
            _rename_expr(stmt.start, rename),
            _rename_expr(stmt.stop, rename),
            stmt.downward,
            [_rename_stmt(s, rename) for s in stmt.body],
        )
    if isinstance(stmt, ast.Call):
        return ast.Call(
            stmt.location,
            stmt.name,
            [_rename_expr(a, rename) for a in stmt.args],
        )
    raise SemanticError(f"cannot rename {stmt!r}", stmt.location)


def compile_source(source: str, procedure: str | None = None,
                   sink=None) -> CDFG:
    """Parse and lower behavioral source text into a validated CDFG.

    Args:
        source: BSL program text.
        procedure: entry procedure name; defaults to the last procedure.
        sink: optional diagnostic sink for recoverable frontend
            findings (see :class:`Lowerer`).
    """
    from ..obs import trace_span

    with trace_span("compile", procedure=procedure or "") as span:
        program = parse(source)
        cdfg = Lowerer(program, sink=sink).lower(procedure)
        span.set(design=cdfg.name)
    return cdfg


def compile_program(program: ast.Program,
                    procedure: str | None = None, sink=None) -> CDFG:
    """Lower an already-parsed program into a validated CDFG."""
    return Lowerer(program, sink=sink).lower(procedure)
