"""Abstract syntax tree for the behavioral specification language.

The parser produces this tree; semantic analysis annotates expressions
with types (the ``type`` field, filled in by
:mod:`repro.lang.semantics`); lowering turns it into a CDFG.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from ..errors import SourceLocation
from ..ir.types import Type

# ----------------------------------------------------------------------
# Expressions
# ----------------------------------------------------------------------


@dataclass
class Expr:
    """Base class for expressions.  ``type`` is set by semantic analysis
    (None until then, and None for untyped literals pending context)."""

    location: SourceLocation
    type: Optional[Type] = field(default=None, init=False, compare=False)


@dataclass
class IntLiteral(Expr):
    value: int


@dataclass
class RealLiteral(Expr):
    value: float


@dataclass
class VarRef(Expr):
    name: str


@dataclass
class IndexRef(Expr):
    """Array element reference ``name[index]``."""

    name: str
    index: Expr


@dataclass
class Unary(Expr):
    """Unary operators: ``-`` (negate), ``not`` (logical), ``~`` (bitwise)."""

    op: str
    operand: Expr


@dataclass
class Binary(Expr):
    """Binary operators, with source spelling in ``op``:
    ``+ - * / mod << >> & | ^ and or = /= < <= > >=``."""

    op: str
    left: Expr
    right: Expr


# ----------------------------------------------------------------------
# Statements
# ----------------------------------------------------------------------


@dataclass
class Stmt:
    location: SourceLocation


@dataclass
class Assign(Stmt):
    """``target := value`` — target is a VarRef or IndexRef."""

    target: Expr
    value: Expr


@dataclass
class If(Stmt):
    cond: Expr
    then_body: list[Stmt]
    else_body: list[Stmt]


@dataclass
class While(Stmt):
    cond: Expr
    body: list[Stmt]


@dataclass
class Repeat(Stmt):
    """``repeat body until cond`` — post-test loop."""

    body: list[Stmt]
    cond: Expr


@dataclass
class For(Stmt):
    """``for var := start to/downto stop do body``; ``downward`` selects
    the decreasing direction."""

    var: str
    start: Expr
    stop: Expr
    downward: bool
    body: list[Stmt]


@dataclass
class Call(Stmt):
    """Procedure call statement; always inlined during lowering."""

    name: str
    args: list[Expr]


# ----------------------------------------------------------------------
# Declarations
# ----------------------------------------------------------------------


@dataclass
class Param:
    """A formal parameter: direction is 'input' or 'output'."""

    name: str
    type: Type
    direction: str
    location: SourceLocation


@dataclass
class VarDecl:
    name: str
    type: Type
    location: SourceLocation


@dataclass
class Procedure:
    name: str
    params: list[Param]
    decls: list[VarDecl]
    body: list[Stmt]
    location: SourceLocation


@dataclass
class Program:
    """A compilation unit: one or more procedures.  The last procedure
    is the synthesis entry point unless a name is given explicitly."""

    procedures: list[Procedure]

    def procedure(self, name: str) -> Procedure:
        for proc in self.procedures:
            if proc.name == name:
                return proc
        raise KeyError(f"no procedure named {name!r}")
