"""Token definitions for the behavioral specification language (BSL).

BSL is the small Pascal/ISPS-flavoured procedural language the library
accepts as behavioral input — assignments, ``if``/``while``/``repeat``/
``for`` control constructs and procedure calls, matching the paper's
description of the input languages used by 1980s HLS systems.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from ..errors import SourceLocation


class TokenKind(enum.Enum):
    # Literals and identifiers
    IDENT = "identifier"
    INT = "integer literal"
    REAL = "real literal"
    # Keywords
    PROCEDURE = "procedure"
    INPUT = "input"
    OUTPUT = "output"
    VAR = "var"
    BEGIN = "begin"
    END = "end"
    IF = "if"
    THEN = "then"
    ELSE = "else"
    WHILE = "while"
    DO = "do"
    REPEAT = "repeat"
    UNTIL = "until"
    FOR = "for"
    TO = "to"
    DOWNTO = "downto"
    AND = "and"
    OR = "or"
    NOT = "not"
    MOD = "mod"
    INT_TYPE = "int"
    UINT_TYPE = "uint"
    FIXED_TYPE = "fixed"
    UFIXED_TYPE = "ufixed"
    # Punctuation and operators
    LPAREN = "("
    RPAREN = ")"
    LBRACKET = "["
    RBRACKET = "]"
    COMMA = ","
    COLON = ":"
    SEMICOLON = ";"
    ASSIGN = ":="
    PLUS = "+"
    MINUS = "-"
    STAR = "*"
    SLASH = "/"
    SHL = "<<"
    SHR = ">>"
    AMP = "&"
    PIPE = "|"
    CARET = "^"
    TILDE = "~"
    EQ = "="
    NE = "/="
    LT = "<"
    LE = "<="
    GT = ">"
    GE = ">="
    EOF = "end of input"


KEYWORDS: dict[str, TokenKind] = {
    "procedure": TokenKind.PROCEDURE,
    "input": TokenKind.INPUT,
    "output": TokenKind.OUTPUT,
    "var": TokenKind.VAR,
    "begin": TokenKind.BEGIN,
    "end": TokenKind.END,
    "if": TokenKind.IF,
    "then": TokenKind.THEN,
    "else": TokenKind.ELSE,
    "while": TokenKind.WHILE,
    "do": TokenKind.DO,
    "repeat": TokenKind.REPEAT,
    "until": TokenKind.UNTIL,
    "for": TokenKind.FOR,
    "to": TokenKind.TO,
    "downto": TokenKind.DOWNTO,
    "and": TokenKind.AND,
    "or": TokenKind.OR,
    "not": TokenKind.NOT,
    "mod": TokenKind.MOD,
    "int": TokenKind.INT_TYPE,
    "uint": TokenKind.UINT_TYPE,
    "fixed": TokenKind.FIXED_TYPE,
    "ufixed": TokenKind.UFIXED_TYPE,
}


@dataclass(frozen=True)
class Token:
    """One lexical token with its source location."""

    kind: TokenKind
    text: str
    location: SourceLocation

    def __repr__(self) -> str:
        return f"Token({self.kind.name}, {self.text!r} @ {self.location})"
