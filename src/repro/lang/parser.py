"""Recursive-descent parser for the behavioral specification language.

Grammar (EBNF, ``;`` separators Pascal-style):

.. code-block:: text

    program    = procedure { procedure } ;
    procedure  = "procedure" IDENT "(" [ params ] ")" ";"
                 [ "var" { varline } ] block [ ";" ] ;
    params     = param { ";" param } ;
    param      = ( "input" | "output" ) identlist ":" type ;
    varline    = identlist ":" type ";" ;
    identlist  = IDENT { "," IDENT } ;
    type       = ( "int" | "uint" ) "<" INT ">" [ "[" INT "]" ]
               | ( "fixed" | "ufixed" ) "<" INT "," INT ">" [ "[" INT "]" ] ;
    block      = "begin" { statement ";" } "end" ;
    statement  = assign | ifstmt | whilestmt | repeatstmt | forstmt
               | call | block ;
    assign     = lvalue ":=" expr ;
    lvalue     = IDENT [ "[" expr "]" ] ;
    ifstmt     = "if" expr "then" body [ "else" body ] ;
    whilestmt  = "while" expr "do" body ;
    repeatstmt = "repeat" { statement ";" } "until" expr ;
    forstmt    = "for" IDENT ":=" expr ( "to" | "downto" ) expr "do" body ;
    call       = IDENT "(" [ expr { "," expr } ] ")" ;
    body       = statement | block ;

Expression precedence, loosest first: ``or``; ``and``; ``not``;
comparisons; ``+ - | ^``; ``* / mod & << >>``; unary ``- ~``; primary.
"""

from __future__ import annotations

from ..errors import ParseError
from ..ir.types import ArrayType, FixedType, IntType, Type
from . import ast
from .lexer import tokenize
from .tokens import Token, TokenKind

_COMPARISONS = {
    TokenKind.EQ: "=",
    TokenKind.NE: "/=",
    TokenKind.LT: "<",
    TokenKind.LE: "<=",
    TokenKind.GT: ">",
    TokenKind.GE: ">=",
}

_ADDITIVE = {
    TokenKind.PLUS: "+",
    TokenKind.MINUS: "-",
    TokenKind.PIPE: "|",
    TokenKind.CARET: "^",
}

_MULTIPLICATIVE = {
    TokenKind.STAR: "*",
    TokenKind.SLASH: "/",
    TokenKind.MOD: "mod",
    TokenKind.AMP: "&",
    TokenKind.SHL: "<<",
    TokenKind.SHR: ">>",
}


class Parser:
    """Parses a token stream into a :class:`repro.lang.ast.Program`."""

    def __init__(self, tokens: list[Token]) -> None:
        self._tokens = tokens
        self._index = 0

    # ------------------------------------------------------------------
    # Token plumbing
    # ------------------------------------------------------------------

    def _peek(self) -> Token:
        return self._tokens[self._index]

    def _advance(self) -> Token:
        token = self._tokens[self._index]
        if token.kind is not TokenKind.EOF:
            self._index += 1
        return token

    def _check(self, kind: TokenKind) -> bool:
        return self._peek().kind is kind

    def _accept(self, kind: TokenKind) -> Token | None:
        if self._check(kind):
            return self._advance()
        return None

    def _expect(self, kind: TokenKind) -> Token:
        token = self._peek()
        if token.kind is not kind:
            raise ParseError(
                f"expected {kind.value!r}, found {token.text or 'end of input'!r}",
                token.location,
            )
        return self._advance()

    # ------------------------------------------------------------------
    # Declarations
    # ------------------------------------------------------------------

    def parse_program(self) -> ast.Program:
        procedures = [self.parse_procedure()]
        while self._check(TokenKind.PROCEDURE):
            procedures.append(self.parse_procedure())
        self._expect(TokenKind.EOF)
        return ast.Program(procedures)

    def parse_procedure(self) -> ast.Procedure:
        start = self._expect(TokenKind.PROCEDURE)
        name = self._expect(TokenKind.IDENT).text
        self._expect(TokenKind.LPAREN)
        params: list[ast.Param] = []
        if not self._check(TokenKind.RPAREN):
            params.extend(self._parse_param_group())
            while self._accept(TokenKind.SEMICOLON):
                params.extend(self._parse_param_group())
        self._expect(TokenKind.RPAREN)
        self._expect(TokenKind.SEMICOLON)
        decls: list[ast.VarDecl] = []
        while self._accept(TokenKind.VAR):
            while self._check(TokenKind.IDENT):
                decls.extend(self._parse_var_line())
        body = self._parse_block()
        self._accept(TokenKind.SEMICOLON)
        return ast.Procedure(name, params, decls, body, start.location)

    def _parse_param_group(self) -> list[ast.Param]:
        token = self._peek()
        if self._accept(TokenKind.INPUT):
            direction = "input"
        elif self._accept(TokenKind.OUTPUT):
            direction = "output"
        else:
            raise ParseError(
                f"expected 'input' or 'output', found {token.text!r}",
                token.location,
            )
        names = self._parse_ident_list()
        self._expect(TokenKind.COLON)
        type_ = self._parse_type()
        return [
            ast.Param(name, type_, direction, token.location) for name in names
        ]

    def _parse_var_line(self) -> list[ast.VarDecl]:
        start = self._peek()
        names = self._parse_ident_list()
        self._expect(TokenKind.COLON)
        type_ = self._parse_type()
        self._expect(TokenKind.SEMICOLON)
        return [ast.VarDecl(name, type_, start.location) for name in names]

    def _parse_ident_list(self) -> list[str]:
        names = [self._expect(TokenKind.IDENT).text]
        while self._accept(TokenKind.COMMA):
            names.append(self._expect(TokenKind.IDENT).text)
        return names

    def _parse_type(self) -> Type:
        token = self._advance()
        if token.kind in (TokenKind.INT_TYPE, TokenKind.UINT_TYPE):
            self._expect(TokenKind.LT)
            width = int(self._expect(TokenKind.INT).text)
            self._expect(TokenKind.GT)
            base: Type = IntType(width, signed=token.kind is TokenKind.INT_TYPE)
        elif token.kind in (TokenKind.FIXED_TYPE, TokenKind.UFIXED_TYPE):
            self._expect(TokenKind.LT)
            width = int(self._expect(TokenKind.INT).text)
            self._expect(TokenKind.COMMA)
            frac = int(self._expect(TokenKind.INT).text)
            self._expect(TokenKind.GT)
            base = FixedType(
                width, frac, signed=token.kind is TokenKind.FIXED_TYPE
            )
        else:
            raise ParseError(f"expected a type, found {token.text!r}",
                             token.location)
        if self._accept(TokenKind.LBRACKET):
            length = int(self._expect(TokenKind.INT).text)
            self._expect(TokenKind.RBRACKET)
            return ArrayType(base, length)
        return base

    # ------------------------------------------------------------------
    # Statements
    # ------------------------------------------------------------------

    def _parse_block(self) -> list[ast.Stmt]:
        self._expect(TokenKind.BEGIN)
        stmts = self._parse_statements_until(TokenKind.END)
        self._expect(TokenKind.END)
        return stmts

    def _parse_statements_until(self, *stop: TokenKind) -> list[ast.Stmt]:
        stmts: list[ast.Stmt] = []
        while self._peek().kind not in stop:
            stmts.append(self._parse_statement())
            if not self._accept(TokenKind.SEMICOLON):
                break
        return stmts

    def _parse_body(self) -> list[ast.Stmt]:
        """A loop/branch body: either one statement or a begin/end block."""
        if self._check(TokenKind.BEGIN):
            return self._parse_block()
        return [self._parse_statement()]

    def _parse_statement(self) -> ast.Stmt:
        token = self._peek()
        if token.kind is TokenKind.IF:
            return self._parse_if()
        if token.kind is TokenKind.WHILE:
            return self._parse_while()
        if token.kind is TokenKind.REPEAT:
            return self._parse_repeat()
        if token.kind is TokenKind.FOR:
            return self._parse_for()
        if token.kind is TokenKind.IDENT:
            return self._parse_assign_or_call()
        raise ParseError(f"expected a statement, found {token.text!r}",
                         token.location)

    def _parse_if(self) -> ast.Stmt:
        start = self._expect(TokenKind.IF)
        cond = self.parse_expr()
        self._expect(TokenKind.THEN)
        then_body = self._parse_body()
        else_body: list[ast.Stmt] = []
        # Tolerate the common `...; else` spelling.
        if (
            self._check(TokenKind.SEMICOLON)
            and self._tokens[self._index + 1].kind is TokenKind.ELSE
        ):
            self._advance()
        if self._accept(TokenKind.ELSE):
            else_body = self._parse_body()
        return ast.If(start.location, cond, then_body, else_body)

    def _parse_while(self) -> ast.Stmt:
        start = self._expect(TokenKind.WHILE)
        cond = self.parse_expr()
        self._expect(TokenKind.DO)
        body = self._parse_body()
        return ast.While(start.location, cond, body)

    def _parse_repeat(self) -> ast.Stmt:
        start = self._expect(TokenKind.REPEAT)
        body = self._parse_statements_until(TokenKind.UNTIL)
        self._expect(TokenKind.UNTIL)
        cond = self.parse_expr()
        return ast.Repeat(start.location, body, cond)

    def _parse_for(self) -> ast.Stmt:
        start = self._expect(TokenKind.FOR)
        var = self._expect(TokenKind.IDENT).text
        self._expect(TokenKind.ASSIGN)
        begin = self.parse_expr()
        downward = False
        if self._accept(TokenKind.DOWNTO):
            downward = True
        else:
            self._expect(TokenKind.TO)
        stop = self.parse_expr()
        self._expect(TokenKind.DO)
        body = self._parse_body()
        return ast.For(start.location, var, begin, stop, downward, body)

    def _parse_assign_or_call(self) -> ast.Stmt:
        name_token = self._expect(TokenKind.IDENT)
        if self._check(TokenKind.LPAREN):
            self._advance()
            args: list[ast.Expr] = []
            if not self._check(TokenKind.RPAREN):
                args.append(self.parse_expr())
                while self._accept(TokenKind.COMMA):
                    args.append(self.parse_expr())
            self._expect(TokenKind.RPAREN)
            return ast.Call(name_token.location, name_token.text, args)
        target: ast.Expr
        if self._accept(TokenKind.LBRACKET):
            index = self.parse_expr()
            self._expect(TokenKind.RBRACKET)
            target = ast.IndexRef(name_token.location, name_token.text, index)
        else:
            target = ast.VarRef(name_token.location, name_token.text)
        self._expect(TokenKind.ASSIGN)
        value = self.parse_expr()
        return ast.Assign(name_token.location, target, value)

    # ------------------------------------------------------------------
    # Expressions
    # ------------------------------------------------------------------

    def parse_expr(self) -> ast.Expr:
        return self._parse_or()

    def _parse_or(self) -> ast.Expr:
        expr = self._parse_and()
        while self._check(TokenKind.OR):
            token = self._advance()
            right = self._parse_and()
            expr = ast.Binary(token.location, "or", expr, right)
        return expr

    def _parse_and(self) -> ast.Expr:
        expr = self._parse_not()
        while self._check(TokenKind.AND):
            token = self._advance()
            right = self._parse_not()
            expr = ast.Binary(token.location, "and", expr, right)
        return expr

    def _parse_not(self) -> ast.Expr:
        if self._check(TokenKind.NOT):
            token = self._advance()
            operand = self._parse_not()
            return ast.Unary(token.location, "not", operand)
        return self._parse_comparison()

    def _parse_comparison(self) -> ast.Expr:
        expr = self._parse_additive()
        if self._peek().kind in _COMPARISONS:
            token = self._advance()
            right = self._parse_additive()
            expr = ast.Binary(
                token.location, _COMPARISONS[token.kind], expr, right
            )
        return expr

    def _parse_additive(self) -> ast.Expr:
        expr = self._parse_multiplicative()
        while self._peek().kind in _ADDITIVE:
            token = self._advance()
            right = self._parse_multiplicative()
            expr = ast.Binary(token.location, _ADDITIVE[token.kind], expr, right)
        return expr

    def _parse_multiplicative(self) -> ast.Expr:
        expr = self._parse_unary()
        while self._peek().kind in _MULTIPLICATIVE:
            token = self._advance()
            right = self._parse_unary()
            expr = ast.Binary(
                token.location, _MULTIPLICATIVE[token.kind], expr, right
            )
        return expr

    def _parse_unary(self) -> ast.Expr:
        if self._check(TokenKind.MINUS):
            token = self._advance()
            return ast.Unary(token.location, "-", self._parse_unary())
        if self._check(TokenKind.TILDE):
            token = self._advance()
            return ast.Unary(token.location, "~", self._parse_unary())
        return self._parse_primary()

    def _parse_primary(self) -> ast.Expr:
        token = self._advance()
        if token.kind is TokenKind.INT:
            return ast.IntLiteral(token.location, int(token.text))
        if token.kind is TokenKind.REAL:
            return ast.RealLiteral(token.location, float(token.text))
        if token.kind is TokenKind.IDENT:
            if self._accept(TokenKind.LBRACKET):
                index = self.parse_expr()
                self._expect(TokenKind.RBRACKET)
                return ast.IndexRef(token.location, token.text, index)
            return ast.VarRef(token.location, token.text)
        if token.kind is TokenKind.LPAREN:
            expr = self.parse_expr()
            self._expect(TokenKind.RPAREN)
            return expr
        raise ParseError(f"expected an expression, found {token.text!r}",
                         token.location)


def parse(source: str) -> ast.Program:
    """Parse behavioral source text into an AST program."""
    return Parser(tokenize(source)).parse_program()
