"""Datapath allocation: FUs, registers, interconnect (paper §3.2).

Allocator families, matching the tutorial's survey:

==============================  ========================================
class                           paper reference
==============================  ========================================
CliqueAllocator                 Tseng & Siewiorek (§3.2.2, Fig. 7)
LeftEdgeRegisterAllocator       REAL (§3.2.1)
GreedyDatapathAllocator         Hafer local / EMUCS global (§3.2.1, Fig. 6)
ColoringRegisterAllocator       conflict-graph dual of the clique method
==============================  ========================================

Interconnect accounting (multiplexers, buses) lives in
:mod:`repro.allocation.interconnect`.
"""

from .base import Allocation, Allocator, FUInstance, ops_compatible
from .clique import (
    CliqueAllocator,
    clique_partition,
    exact_minimum_clique_cover,
    fu_compatibility_graph,
    register_compatibility_graph,
)
from .coloring import ColoringRegisterAllocator, register_conflict_graph
from .greedy import GreedyDatapathAllocator
from .interconnect import (
    BusAllocation,
    InterconnectEstimate,
    allocate_buses,
    estimate_interconnect,
    value_source,
)
from .left_edge import LeftEdgeRegisterAllocator
from .lifetimes import ValueLifetime, compute_lifetimes, minimum_registers
from .rules import RuleBasedAllocator, RuleFiring

__all__ = [
    "Allocation",
    "Allocator",
    "BusAllocation",
    "CliqueAllocator",
    "ColoringRegisterAllocator",
    "FUInstance",
    "GreedyDatapathAllocator",
    "InterconnectEstimate",
    "LeftEdgeRegisterAllocator",
    "RuleBasedAllocator",
    "RuleFiring",
    "ValueLifetime",
    "allocate_buses",
    "clique_partition",
    "compute_lifetimes",
    "estimate_interconnect",
    "exact_minimum_clique_cover",
    "fu_compatibility_graph",
    "minimum_registers",
    "ops_compatible",
    "register_compatibility_graph",
    "register_conflict_graph",
    "value_source",
]
