"""Interconnect (communication path) allocation and accounting.

§2: "Communications paths, including buses and multiplexers, must be
chosen so that the functional units and registers are connected as
necessary to support the data transfers required by the specification
and the schedule.  The most simple type of communication path
allocation is based only on multiplexers.  Buses, which can be seen as
distributed multiplexers, offer the advantage of requiring less wiring,
but they may be slower."

Given a complete :class:`~repro.allocation.base.Allocation`, this
module derives every data transfer, counts the multiplexers a
mux-only interconnect needs, and alternatively packs the transfers
onto shared buses.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..ir.opcodes import OpKind
from ..ir.values import Value
from .base import Allocation

Source = tuple
Destination = tuple


def value_source(allocation: Allocation, value: Value) -> Source:
    """Where a consumed value comes from, as a hashable source id.

    * a register, when the value is stored;
    * a constant input, for CONST values;
    * the producing FU's output, for values chained in the same step;
    * the producing combinational logic, for chained free ops.
    """
    if value.id in allocation.register_map:
        return ("reg", allocation.register_map[value.id])
    producer = value.producer
    if producer.kind is OpKind.CONST:
        return ("const", repr(producer.attrs["value"]))
    fu = allocation.fu_map.get(producer.id)
    if fu is not None:
        return ("fu", fu.cls, fu.index)
    return ("logic", producer.id)


@dataclass
class InterconnectEstimate:
    """Multiplexer accounting for one allocation.

    Attributes:
        port_sources: destination port → set of distinct sources.
        mux_count: ports needing a multiplexer (more than one source).
        mux_inputs: total multiplexer inputs over those ports (the
            paper's "multiplexing cost").
        transfers: (step, source, destination) triples, one per data
            movement, used by bus allocation.
    """

    port_sources: dict[Destination, set[Source]] = field(
        default_factory=dict
    )
    transfers: list[tuple[int, Source, Destination]] = field(
        default_factory=list
    )
    #: (destination, source) → widest value (bits) ever moved along
    #: that edge.  Purely additive accounting used by the structural
    #: netlist; the mux cost model above does not read it.
    widths: dict[tuple[Destination, Source], int] = field(
        default_factory=dict
    )

    @property
    def mux_count(self) -> int:
        return sum(
            1 for sources in self.port_sources.values() if len(sources) > 1
        )

    @property
    def mux_inputs(self) -> int:
        return sum(
            len(sources)
            for sources in self.port_sources.values()
            if len(sources) > 1
        )


def estimate_interconnect(allocation: Allocation) -> InterconnectEstimate:
    """Derive all transfers and multiplexer needs of ``allocation``."""
    schedule = allocation.schedule
    problem = schedule.problem
    estimate = InterconnectEstimate()

    def note(step: int, source: Source, destination: Destination,
             width: int = 1) -> None:
        estimate.port_sources.setdefault(destination, set()).add(source)
        estimate.transfers.append((step, source, destination))
        edge = (destination, source)
        estimate.widths[edge] = max(estimate.widths.get(edge, 0), width)

    from ..ir.types import bit_width

    for op in problem.ops:
        fu = allocation.fu_map.get(op.id)
        if fu is not None:
            for index, operand in enumerate(op.operands):
                source = value_source(allocation, operand)
                destination = ("fuport", fu.cls, fu.index, index)
                note(schedule.start[op.id], source, destination,
                     bit_width(operand.type))
        result = op.result
        if result is not None and result.id in allocation.register_map:
            if op.kind is OpKind.VAR_READ:
                continue  # arrived in the register before the block
            register = allocation.register_map[result.id]
            if fu is not None:
                source = ("fu", fu.cls, fu.index)
            elif op.kind is OpKind.CONST:
                source = ("const", repr(op.attrs["value"]))
            else:
                source = ("logic", op.id)
            note(schedule.end(op.id), source, ("regin", register),
                 bit_width(result.type))
    return estimate


@dataclass
class BusAllocation:
    """Transfers packed onto shared buses.

    A bus carries at most one *source* per control step (a source may
    broadcast to several destinations over one bus).  ``bus_of`` maps
    each (step, source) group to its bus index.
    """

    bus_of: dict[tuple[int, Source], int] = field(default_factory=dict)

    @property
    def bus_count(self) -> int:
        if not self.bus_of:
            return 0
        return max(self.bus_of.values()) + 1


def allocate_buses(estimate: InterconnectEstimate) -> BusAllocation:
    """Pack transfers onto the minimum number of single-step buses.

    Per step, each distinct source needs its own bus; buses are reused
    across steps (the count is the max per-step source count — the bus
    analogue of the left-edge bound).
    """
    allocation = BusAllocation()
    by_step: dict[int, list[Source]] = {}
    for step, source, _ in estimate.transfers:
        group = by_step.setdefault(step, [])
        if source not in group:
            group.append(source)
    for step in sorted(by_step):
        for index, source in enumerate(sorted(by_step[step])):
            allocation.bus_of[(step, source)] = index
    return allocation
