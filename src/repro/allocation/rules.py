"""Rule-based datapath allocation (after Kowalski's DAA).

§3.2.1: "The DAA used a local criterion to select which element to
assign next, but chose where to assign it on the basis of rules that
encoded expert knowledge about the data path design of microprocessors.
Once this knowledge base had been tested and improved through repeated
interviews with designers, the DAA was able to produce much cleaner
data paths."  §3.3 adds that DAA "was the first expert system which
performed data path synthesis", and §4 asks how a system should
"explain to the user what is going on during the design process".

This allocator is a compact homage: an ordered production system whose
rules inspect the partial datapath and nominate a unit for the next
operation.  Each firing is recorded in an *explanation trace* — the
DAA-style answer to the paper's human-factors question.

The knowledge base (in priority order):

1. ``accumulator`` — an op consuming the result of another op already
   placed on unit U prefers U (accumulation chains stay put, saving a
   route through the register file).
2. ``port-affinity`` — prefer a unit that already sees one of the op's
   operand sources on the matching port (no new mux input).
3. ``load-balance`` — otherwise take the least-loaded compatible unit.
4. ``open-unit`` — no compatible unit: open a new one.

Registers are allocated with the left-edge algorithm first, exactly as
in :class:`~repro.allocation.greedy.GreedyDatapathAllocator` (REAL's
phase ordering), so the rules can reason about operand sources.
"""

from __future__ import annotations

from dataclasses import dataclass

from .base import Allocation, Allocator, FUInstance
from .greedy import _DatapathState
from .interconnect import value_source
from .left_edge import LeftEdgeRegisterAllocator


@dataclass(frozen=True)
class RuleFiring:
    """One recorded decision: which rule placed which op where."""

    rule: str
    op_id: int
    unit: FUInstance
    reason: str

    def __str__(self) -> str:
        return f"[{self.rule}] op{self.op_id} -> {self.unit}: {self.reason}"


class RuleBasedAllocator(Allocator):
    """DAA-style production-system FU allocation with a decision trace.

    After :meth:`allocate`, ``trace`` holds one :class:`RuleFiring` per
    placed operation — the self-explaining design process of §4.
    """

    name = "rules"

    def __init__(self, schedule) -> None:
        super().__init__(schedule)
        self.trace: list[RuleFiring] = []

    def allocate(self) -> Allocation:
        seed = LeftEdgeRegisterAllocator(self.schedule).allocate()
        allocation = Allocation(
            self.schedule,
            register_map=dict(seed.register_map),
            allocator=self.name,
        )
        state = _DatapathState(self.schedule, allocation)
        self.trace = []

        op_ids = sorted(
            self.schedule.problem.compute_op_ids(),
            key=lambda op_id: (self.schedule.start[op_id], op_id),
        )
        for op_id in op_ids:
            firing = self._apply_rules(state, op_id)
            state.assign(op_id, firing.unit)
            self.trace.append(firing)
        return allocation

    # ------------------------------------------------------------------

    def _apply_rules(self, state: _DatapathState,
                     op_id: int) -> RuleFiring:
        problem = self.schedule.problem
        op = problem.op(op_id)
        candidates = state.compatible_units(op_id)

        if not candidates:
            unit = state.open_unit(op_id)
            return RuleFiring(
                "open-unit", op_id, unit,
                "no compatible unit free in this op's steps",
            )

        # Rule 1: accumulator — stay on the unit that produced an
        # operand (only meaningful when that unit is free here).
        for operand in op.operands:
            producer_unit = state.allocation.fu_map.get(
                operand.producer.id
            )
            if producer_unit is not None and producer_unit in candidates:
                return RuleFiring(
                    "accumulator", op_id, producer_unit,
                    f"operand {operand!r} produced on the same unit",
                )

        # Rule 2: port affinity — a unit already wired to one of this
        # op's sources on the right port.
        for unit in candidates:
            for index, operand in enumerate(op.operands):
                source = value_source(state.allocation, operand)
                known = state.port_sources.get(
                    ("fuport", unit, index), set()
                )
                if source in known:
                    return RuleFiring(
                        "port-affinity", op_id, unit,
                        f"port in{index} already sees {source}",
                    )

        # Rule 3: load balance.
        unit = min(
            candidates,
            key=lambda u: (len(state.unit_busy.get(u, [])), u.index),
        )
        return RuleFiring(
            "load-balance", op_id, unit,
            f"least-loaded of {len(candidates)} compatible units",
        )

    def explanation(self) -> str:
        """Human-readable decision trace (§4 human factors)."""
        return "\n".join(str(firing) for firing in self.trace)
