"""Clique-partitioning allocation (Tseng & Siewiorek, paper Fig. 7).

§3.2.2: "creating graphs in which the elements to be assigned to
hardware … are represented by nodes, and there is an arc between two
nodes if and only if the corresponding elements can share the same
hardware.  The problem then becomes one of finding those sets of nodes
… all of whose members are connected to one another … the so-called
clique finding problem. … Unfortunately, finding the maximal cliques in
a graph is an NP-hard problem, so in practice, greedy heuristics are
employed."

The greedy heuristic implemented is Tseng & Siewiorek's: repeatedly
merge the compatible pair with the most common neighbours (ties broken
deterministically), shrinking the graph until no edges remain; each
super-node is one clique = one shared hardware unit.  For small graphs
an exact minimum clique cover (exponential) is available for tests.
"""

from __future__ import annotations

from itertools import combinations
from typing import Hashable

import networkx as nx

from .base import Allocation, Allocator, FUInstance, ops_compatible
from .lifetimes import compute_lifetimes


def clique_partition(graph: nx.Graph) -> list[set[Hashable]]:
    """Partition nodes into cliques (Tseng-Siewiorek greedy merging).

    Nodes must be sortable for deterministic tie-breaking.  Returns
    cliques sorted by their smallest member.
    """
    work = nx.Graph()
    work.add_nodes_from(graph.nodes)
    work.add_edges_from(graph.edges)
    members: dict[Hashable, set[Hashable]] = {
        node: {node} for node in work.nodes
    }

    while work.number_of_edges() > 0:
        best_pair = None
        best_common = -1
        for u, v in sorted(work.edges, key=lambda e: tuple(sorted(e))):
            common = len(set(work[u]) & set(work[v]))
            if common > best_common:
                best_common = common
                best_pair = tuple(sorted((u, v)))
        assert best_pair is not None
        u, v = best_pair
        # Merge v into u: u stays adjacent only to common neighbours,
        # so every member of the super-node remains pairwise adjacent.
        common_neighbors = (set(work[u]) & set(work[v])) - {u, v}
        members[u] |= members.pop(v)
        work.remove_node(v)
        for neighbor in list(work[u]):
            if neighbor not in common_neighbors:
                work.remove_edge(u, neighbor)

    return sorted(members.values(), key=lambda clique: sorted(clique)[0])


def exact_minimum_clique_cover(graph: nx.Graph,
                               max_nodes: int = 16) -> list[set[Hashable]]:
    """Optimal clique cover by exhaustive search (small graphs only).

    Equivalent to optimal coloring of the complement graph.  Used by
    tests to certify the greedy heuristic on the paper's examples.
    """
    nodes = sorted(graph.nodes)
    if len(nodes) > max_nodes:
        raise ValueError(f"exact cover limited to {max_nodes} nodes")
    if not nodes:
        return []

    best: list[set[Hashable]] | None = None

    def extend(index: int, cliques: list[set[Hashable]]) -> None:
        nonlocal best
        if best is not None and len(cliques) >= len(best):
            return
        if index == len(nodes):
            best = [set(c) for c in cliques]
            return
        node = nodes[index]
        for clique in cliques:
            if all(graph.has_edge(node, member) for member in clique):
                clique.add(node)
                extend(index + 1, cliques)
                clique.remove(node)
        cliques.append({node})
        extend(index + 1, cliques)
        cliques.pop()

    extend(0, [])
    assert best is not None
    return sorted(best, key=lambda clique: sorted(clique)[0])


def fu_compatibility_graph(schedule) -> nx.Graph:
    """Fig. 7's graph: nodes = resource-using ops; edge ⇔ same class and
    disjoint active steps."""
    graph = nx.Graph()
    op_ids = schedule.problem.compute_op_ids()
    graph.add_nodes_from(op_ids)
    for op_a, op_b in combinations(op_ids, 2):
        if ops_compatible(schedule, op_a, op_b):
            graph.add_edge(op_a, op_b)
    return graph


def register_compatibility_graph(schedule) -> nx.Graph:
    """Nodes = register-needing values; edge ⇔ disjoint lifetimes."""
    lifetimes = compute_lifetimes(schedule)
    graph = nx.Graph()
    graph.add_nodes_from(lt.value.id for lt in lifetimes)
    for lt_a, lt_b in combinations(lifetimes, 2):
        if not lt_a.conflicts_with(lt_b):
            graph.add_edge(lt_a.value.id, lt_b.value.id)
    return graph


class CliqueAllocator(Allocator):
    """FU and register allocation by greedy clique partitioning."""

    name = "clique"

    def allocate(self) -> Allocation:
        schedule = self.schedule
        problem = schedule.problem
        allocation = Allocation(schedule, allocator=self.name)

        # Functional units, class by class.
        fu_graph = fu_compatibility_graph(schedule)
        by_class: dict[str, list[int]] = {}
        for op_id in fu_graph.nodes:
            cls = problem.op_class(op_id)
            assert cls is not None
            by_class.setdefault(cls, []).append(op_id)
        for cls in sorted(by_class):
            subgraph = fu_graph.subgraph(by_class[cls])
            for index, clique in enumerate(clique_partition(subgraph)):
                for op_id in clique:
                    allocation.fu_map[op_id] = FUInstance(cls, index)

        # Registers.
        reg_graph = register_compatibility_graph(schedule)
        for index, clique in enumerate(clique_partition(reg_graph)):
            for value_id in clique:
                allocation.register_map[value_id] = index

        return allocation
