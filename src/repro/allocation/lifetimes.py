"""Value lifetime analysis over a scheduled block.

§2: "In memory allocation, values that are generated in one control
step and used in another must be assigned to storage.  Values may be
assigned to the same register when their lifetimes do not overlap."

Storage model (documented once here, used by every allocator):

* A computing operation delivers its result at the **end** of its last
  active step (``def_step``); the value is latched into a register on
  that clock edge and can be read from the register in any later step.
* A consumer chained combinationally in the producer's own step reads
  the raw wire, not a register; a value whose every use is chained
  needs no register at all.
* A value read by an operation starting at step ``s`` must be held in
  its register **through** step ``s`` (``last_use``).
* Block inputs (``VAR_READ``) are available "before step 0"
  (``def_step = -1``) — they arrive in the variable's register.
* A value written to a variable (``VAR_WRITE``) must survive to the
  end of the block (``last_use = block length``), where it becomes the
  variable's carried value for the next block/iteration.

Two values may share a register iff their occupancy intervals
``(def_step, last_use]`` are disjoint; a value dying in step ``t`` and
a value born at the end of step ``t`` are compatible (read happens
before the clock edge that latches the newcomer).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..ir.opcodes import OpKind
from ..ir.values import Value
from ..scheduling.base import Schedule


@dataclass
class ValueLifetime:
    """Register occupancy of one value under a given schedule.

    Attributes:
        value: the IR value.
        def_step: step at whose end the value is latched (-1 for block
            inputs that arrive in variable registers).
        last_use: last step the value must be readable in.
        carrier: variable name when this value enters or leaves the
            block through a variable register, else None.  Allocators
            use it as an affinity hint (in/out values of one variable
            share its register whenever compatible).
    """

    value: Value
    def_step: int
    last_use: int
    carrier: str | None = None

    @property
    def needs_register(self) -> bool:
        """True when the value crosses at least one step boundary."""
        return self.last_use > self.def_step

    def conflicts_with(self, other: "ValueLifetime") -> bool:
        """Overlapping occupancy ⇒ cannot share a register."""
        return (
            self.def_step < other.last_use
            and other.def_step < self.last_use
        )

    def __repr__(self) -> str:
        return (
            f"<Lifetime {self.value!r} ({self.def_step}, {self.last_use}]"
            + (f" carrier={self.carrier}" if self.carrier else "")
            + ">"
        )


def compute_lifetimes(schedule: Schedule,
                      live_out: frozenset[str] | None = None,
                      ) -> list[ValueLifetime]:
    """Lifetimes of every register-needing value in the scheduled region.

    Returns lifetimes sorted by (def_step, value id); values whose uses
    are all chained in the defining step are excluded.

    Args:
        schedule: a validated schedule of the block.
        live_out: variables live at the block's exit, from
            :func:`repro.analysis.liveness.live_out_variables`.  When
            given, a value written to a variable that is *not* live out
            does not have to survive to the end of the block (the write
            lands in a register nothing downstream reads).  ``None``
            keeps the conservative pre-analysis behaviour: every
            written variable is assumed live.
    """
    problem = schedule.problem
    block_length = schedule.length
    lifetimes: list[ValueLifetime] = []
    in_region = {op.id for op in problem.ops}

    for op in problem.ops:
        value = op.result
        if value is None:
            continue
        if op.kind is OpKind.VAR_READ:
            def_step = -1
            carrier: str | None = op.attrs["var"]
        else:
            def_step = schedule.end(op.id)
            carrier = None

        last_use = def_step
        for user, _ in value.uses:
            if user.id not in in_region:
                continue
            if user.kind is OpKind.VAR_WRITE:
                if live_out is not None \
                        and user.attrs["var"] not in live_out:
                    continue  # dead store: nothing reads the register
                # The value leaves the block in the variable's register.
                last_use = max(last_use, block_length)
                carrier = carrier or user.attrs["var"]
            else:
                last_use = max(last_use, schedule.start[user.id])
        if op.kind is OpKind.CONST and carrier is None:
            # Constants are hardwired operand inputs — storage is only
            # needed when a constant is carried out through a variable
            # register (a bare move such as `I := 0`).
            continue
        lifetime = ValueLifetime(value, def_step, last_use, carrier)
        if lifetime.needs_register:
            lifetimes.append(lifetime)

    lifetimes.sort(key=lambda lt: (lt.def_step, lt.value.id))
    return lifetimes


def minimum_registers(lifetimes: list[ValueLifetime]) -> int:
    """The interval-graph lower bound: the maximum number of values
    simultaneously live in any step (exactly achievable by left-edge)."""
    if not lifetimes:
        return 0
    low = min(lt.def_step for lt in lifetimes)
    high = max(lt.last_use for lt in lifetimes)
    best = 0
    for step in range(low, high + 1):
        live = sum(
            1 for lt in lifetimes if lt.def_step < step <= lt.last_use
        )
        best = max(best, live)
    return best
