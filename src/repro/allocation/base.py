"""Allocation substrate: the result container and the legality checker.

§2: "Allocation consists in assigning the operations to hardware, i.e.
allocating functional units, storage and communication paths."  An
:class:`Allocation` records the first two (operation → FU instance,
value → register); communication paths are derived from it by
:mod:`repro.allocation.interconnect`.

As with scheduling, a single checker (:meth:`Allocation.validate`) is
the source of truth all allocators and tests share.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..analysis.liveness import live_out_variables
from ..errors import AllocationError
from ..scheduling.base import Schedule
from .lifetimes import ValueLifetime, compute_lifetimes


@dataclass(frozen=True)
class FUInstance:
    """One functional-unit instance: a resource class plus an index."""

    cls: str
    index: int

    def __str__(self) -> str:
        return f"{self.cls}{self.index}"


@dataclass
class Allocation:
    """Operation→FU and value→register assignment for one schedule.

    Attributes:
        schedule: the schedule this allocation implements.
        fu_map: op id → FU instance, for every resource-using op.
        register_map: value id → register index, for every
            register-needing value.
        allocator: name of the algorithm that produced it.
    """

    schedule: Schedule
    fu_map: dict[int, FUInstance] = field(default_factory=dict)
    register_map: dict[int, int] = field(default_factory=dict)
    allocator: str = "?"

    # Summary metrics ---------------------------------------------------

    def fu_count(self, cls: str | None = None) -> int:
        instances = set(self.fu_map.values())
        if cls is not None:
            instances = {fu for fu in instances if fu.cls == cls}
        return len(instances)

    def fu_instances(self) -> list[FUInstance]:
        return sorted(set(self.fu_map.values()),
                      key=lambda fu: (fu.cls, fu.index))

    @property
    def register_count(self) -> int:
        return len(set(self.register_map.values()))

    def ops_on(self, fu: FUInstance) -> list[int]:
        return sorted(
            op_id for op_id, unit in self.fu_map.items() if unit == fu
        )

    def values_in(self, register: int) -> list[int]:
        return sorted(
            value_id
            for value_id, reg in self.register_map.items()
            if reg == register
        )

    def signature(self) -> tuple:
        """Hashable identity of the allocation's decisions (op → FU,
        value → register), for caching and for stage-level differential
        comparison.

        Ops and values are identified by the producing op's position in
        the problem's op order, not by raw ids — ids are process-global
        counters, and signatures must compare equal across processes
        and across repeated compiles of the same source.
        """
        problem = self.schedule.problem
        op_index = {op.id: index for index, op in enumerate(problem.ops)}
        value_index = {
            op.result.id: index
            for index, op in enumerate(problem.ops)
            if op.result is not None
        }
        return (
            tuple(sorted(
                (op_index[op_id], (fu.cls, fu.index))
                for op_id, fu in self.fu_map.items()
            )),
            tuple(sorted(
                (value_index.get(value_id, -1), register)
                for value_id, register in self.register_map.items()
            )),
        )

    # Legality ----------------------------------------------------------

    def validate(self) -> None:
        """Raise :class:`AllocationError` unless:

        * every resource-using op is mapped to an FU of its class;
        * no FU instance runs two ops in overlapping steps;
        * every register-needing value is mapped to a register;
        * no register holds two values with overlapping lifetimes.
        """
        schedule = self.schedule
        problem = schedule.problem

        for op in problem.ops:
            cls = problem.op_class(op.id)
            if cls is None:
                continue
            fu = self.fu_map.get(op.id)
            if fu is None:
                raise AllocationError(
                    f"[{self.allocator}] op{op.id} has no functional unit"
                )
            if fu.cls != cls:
                raise AllocationError(
                    f"[{self.allocator}] op{op.id} ({cls}) bound to "
                    f"{fu} of wrong class"
                )

        by_unit: dict[FUInstance, list[int]] = {}
        for op_id, fu in self.fu_map.items():
            by_unit.setdefault(fu, []).append(op_id)
        for fu, op_ids in by_unit.items():
            spans = sorted(
                (schedule.start[op_id], busy_end(schedule, op_id), op_id)
                for op_id in op_ids
            )
            for (s1, e1, op1), (s2, e2, op2) in zip(spans, spans[1:]):
                if s2 <= e1:
                    raise AllocationError(
                        f"[{self.allocator}] {fu} runs op{op1} "
                        f"[{s1},{e1}] and op{op2} [{s2},{e2}] "
                        f"simultaneously"
                    )

        lifetimes = compute_lifetimes(schedule,
                                      live_out_variables(schedule))
        for lifetime in lifetimes:
            if lifetime.value.id not in self.register_map:
                raise AllocationError(
                    f"[{self.allocator}] {lifetime.value!r} needs a "
                    f"register but has none"
                )
        by_register: dict[int, list[ValueLifetime]] = {}
        for lifetime in lifetimes:
            register = self.register_map[lifetime.value.id]
            by_register.setdefault(register, []).append(lifetime)
        for register, held in by_register.items():
            held.sort(key=lambda lt: (lt.def_step, lt.value.id))
            for first, second in zip(held, held[1:]):
                if first.conflicts_with(second):
                    raise AllocationError(
                        f"[{self.allocator}] register r{register} holds "
                        f"overlapping values {first.value!r} and "
                        f"{second.value!r}"
                    )

    def report(self) -> str:
        """Human-readable summary (used by examples and benches)."""
        lines = [
            f"allocation[{self.allocator}] for "
            f"{self.schedule.problem.label}:"
        ]
        for fu in self.fu_instances():
            ops = ", ".join(f"op{i}" for i in self.ops_on(fu))
            lines.append(f"  {fu}: {ops}")
        registers = sorted(set(self.register_map.values()))
        for register in registers:
            values = ", ".join(f"v{i}" for i in self.values_in(register))
            lines.append(f"  r{register}: {values}")
        return "\n".join(lines)


class Allocator:
    """Base class: construct with a schedule, call :meth:`allocate`."""

    name = "allocator"

    def __init__(self, schedule: Schedule) -> None:
        self.schedule = schedule

    def allocate(self) -> Allocation:
        raise NotImplementedError


def busy_end(schedule: Schedule, op_id: int) -> int:
    """Last step the op *holds* its unit (its occupancy window end —
    equal to ``end()`` for non-pipelined units)."""
    occupancy = max(schedule.problem.occupancy(op_id), 1)
    return schedule.start[op_id] + occupancy - 1


def ops_compatible(schedule: Schedule, op_a: int, op_b: int) -> bool:
    """Two ops can share an FU iff same class and disjoint *occupancy*
    windows ("mutually exclusive operations … clearly can share
    functional units"; pipelined units overlap in latency but not in
    occupancy)."""
    problem = schedule.problem
    if problem.op_class(op_a) != problem.op_class(op_b):
        return False
    return (
        busy_end(schedule, op_a) < schedule.start[op_b]
        or busy_end(schedule, op_b) < schedule.start[op_a]
    )
