"""Register allocation by conflict-graph coloring.

The dual formulation of Fig. 7's clique approach: instead of cliques in
the *compatibility* graph, color the *conflict* graph (values connected
iff their lifetimes overlap); each color is a register.  Greedy
largest-degree-first coloring is used — on interval conflict graphs it
matches the left-edge optimum, which tests assert.
"""

from __future__ import annotations

from itertools import combinations

import networkx as nx

from .base import Allocation, Allocator
from .left_edge import LeftEdgeRegisterAllocator
from .lifetimes import compute_lifetimes


def register_conflict_graph(schedule) -> nx.Graph:
    """Nodes = register-needing values; edge ⇔ overlapping lifetimes."""
    lifetimes = compute_lifetimes(schedule)
    graph = nx.Graph()
    graph.add_nodes_from(lt.value.id for lt in lifetimes)
    for lt_a, lt_b in combinations(lifetimes, 2):
        if lt_a.conflicts_with(lt_b):
            graph.add_edge(lt_a.value.id, lt_b.value.id)
    return graph


class ColoringRegisterAllocator(Allocator):
    """Conflict-graph-coloring registers; FU assignment as left-edge."""

    name = "coloring"

    def allocate(self) -> Allocation:
        seed = LeftEdgeRegisterAllocator(self.schedule).allocate()
        allocation = Allocation(
            self.schedule,
            fu_map=dict(seed.fu_map),
            allocator=self.name,
        )
        conflict = register_conflict_graph(self.schedule)
        order = sorted(
            conflict.nodes,
            key=lambda node: (-conflict.degree(node), node),
        )
        colors: dict[int, int] = {}
        for node in order:
            taken = {
                colors[neighbor]
                for neighbor in conflict[node]
                if neighbor in colors
            }
            color = 0
            while color in taken:
                color += 1
            colors[node] = color
        allocation.register_map = colors
        return allocation
