"""Iterative/constructive datapath allocation (paper §3.2.1, Fig. 6).

"Iterative/constructive techniques select an operation, value or
interconnection to be assigned, make the assignment, and then iterate.
The rules which determine the next operation … to be selected can vary
from global rules … to local selection rules, which select the items in
a fixed order, usually as they occur in the data flow graph."

Three selection policies are provided:

* ``local`` (Hafer's allocator, Fig. 6) — operations in control-step
  order; each is placed on the compatible FU that adds the least
  multiplexing cost ("a2 was assigned to adder2 since the increase in
  multiplexing cost required by that allocation was zero; a4 was
  assigned to adder1 because there was already a connection from the
  register to that adder").
* ``global`` (EMUCS) — at every step, the (operation, unit) pair with
  the minimum incremental cost over *all* unassigned operations is
  chosen ("a global selection criterion, based on minimizing both the
  number of functional units and registers and the multiplexing
  needed").
* ``blind`` — the Fig. 6 counter-example: first compatible unit
  "without checking for interconnection costs, then the final
  multiplexing would have been more expensive".

Registers are allocated first with the left-edge algorithm (REAL's
phase ordering), so operand sources are known when FU costs are
evaluated.
"""

from __future__ import annotations

from ..ir.opcodes import OpKind
from .base import Allocation, Allocator, FUInstance, busy_end
from .interconnect import Source, value_source
from .left_edge import LeftEdgeRegisterAllocator


class GreedyDatapathAllocator(Allocator):
    """Interconnect-aware constructive FU allocation.

    Args:
        schedule: the schedule to allocate.
        selection: ``"local"``, ``"global"`` or ``"blind"``.
    """

    name = "greedy"

    def __init__(self, schedule, selection: str = "local") -> None:
        super().__init__(schedule)
        if selection not in ("local", "global", "blind"):
            raise ValueError(f"unknown selection rule {selection!r}")
        self._selection = selection
        self.name = f"greedy/{selection}"

    def allocate(self) -> Allocation:
        # Registers first (REAL phase ordering), keeping its register
        # map but replacing its FU assignment with ours.
        seed = LeftEdgeRegisterAllocator(self.schedule).allocate()
        allocation = Allocation(
            self.schedule,
            register_map=dict(seed.register_map),
            allocator=self.name,
        )
        if self._selection == "global":
            self._allocate_global(allocation)
        else:
            self._allocate_local(allocation,
                                 blind=self._selection == "blind")
        return allocation

    # ------------------------------------------------------------------

    def _allocate_local(self, allocation: Allocation, blind: bool) -> None:
        state = _DatapathState(self.schedule, allocation)
        op_ids = sorted(
            self.schedule.problem.compute_op_ids(),
            key=lambda op_id: (self.schedule.start[op_id], op_id),
        )
        for op_id in op_ids:
            candidates = state.compatible_units(op_id)
            if not candidates:
                unit = state.open_unit(op_id)
            elif blind:
                unit = candidates[0]
            else:
                unit = min(
                    candidates,
                    key=lambda u: (state.cost(op_id, u), u.index),
                )
            state.assign(op_id, unit)

    def _allocate_global(self, allocation: Allocation) -> None:
        state = _DatapathState(self.schedule, allocation)
        pending = set(self.schedule.problem.compute_op_ids())
        while pending:
            best: tuple[int, int, int, FUInstance | None] | None = None
            for op_id in sorted(pending):
                candidates = state.compatible_units(op_id)
                if not candidates:
                    # Opening a unit costs every operand port plus the
                    # register write path.
                    op = self.schedule.problem.op(op_id)
                    open_cost = len(op.operands) + 1
                    key = (open_cost, 1, op_id, None)
                else:
                    unit = min(
                        candidates,
                        key=lambda u: (state.cost(op_id, u), u.index),
                    )
                    key = (state.cost(op_id, unit), 0, op_id, unit)
                if best is None or key < best:
                    best = key
            assert best is not None
            _, _, op_id, unit = best
            if unit is None:
                unit = state.open_unit(op_id)
            state.assign(op_id, unit)
            pending.discard(op_id)


class _DatapathState:
    """Incremental interconnect bookkeeping during greedy allocation."""

    def __init__(self, schedule, allocation: Allocation) -> None:
        self.schedule = schedule
        self.problem = schedule.problem
        self.allocation = allocation
        self.unit_counts: dict[str, int] = {}
        self.unit_busy: dict[FUInstance, list[tuple[int, int]]] = {}
        # (unit, port) -> known sources; ("regin", r) -> known sources
        self.port_sources: dict[tuple, set[Source]] = {}

    # Compatibility -----------------------------------------------------

    def compatible_units(self, op_id: int) -> list[FUInstance]:
        cls = self.problem.op_class(op_id)
        assert cls is not None
        begin = self.schedule.start[op_id]
        end = busy_end(self.schedule, op_id)
        units = []
        for index in range(self.unit_counts.get(cls, 0)):
            unit = FUInstance(cls, index)
            overlap = any(
                begin <= window_end and window_begin <= end
                for window_begin, window_end in self.unit_busy.get(
                    unit, []
                )
            )
            if not overlap:
                units.append(unit)
        return units

    def open_unit(self, op_id: int) -> FUInstance:
        cls = self.problem.op_class(op_id)
        assert cls is not None
        index = self.unit_counts.get(cls, 0)
        self.unit_counts[cls] = index + 1
        return FUInstance(cls, index)

    # Cost model ---------------------------------------------------------

    def cost(self, op_id: int, unit: FUInstance) -> int:
        """Multiplexer inputs added by running ``op_id`` on ``unit``."""
        op = self.problem.op(op_id)
        added = 0
        for index, operand in enumerate(op.operands):
            source = value_source(self.allocation, operand)
            known = self.port_sources.get(("fuport", unit, index), set())
            if source not in known:
                added += 1
        result = op.result
        if result is not None and result.id in self.allocation.register_map:
            register = self.allocation.register_map[result.id]
            known = self.port_sources.get(("regin", register), set())
            if ("fu", unit.cls, unit.index) not in known:
                added += 1
        return added

    # Commitment ----------------------------------------------------------

    def assign(self, op_id: int, unit: FUInstance) -> None:
        op = self.problem.op(op_id)
        self.allocation.fu_map[op_id] = unit
        self.unit_busy.setdefault(unit, []).append(
            (self.schedule.start[op_id], busy_end(self.schedule, op_id))
        )
        for index, operand in enumerate(op.operands):
            source = value_source(self.allocation, operand)
            self.port_sources.setdefault(
                ("fuport", unit, index), set()
            ).add(source)
        result = op.result
        if result is not None and result.id in self.allocation.register_map:
            register = self.allocation.register_map[result.id]
            if op.kind is not OpKind.VAR_READ:
                self.port_sources.setdefault(
                    ("regin", register), set()
                ).add(("fu", unit.cls, unit.index))
