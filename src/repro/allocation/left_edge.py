"""Left-edge register allocation (Kurdahi & Parker's REAL program).

§3.2.1: "The REAL program separated out register allocation and
performed it after scheduling, but prior to operator and interconnect
allocation.  REAL is constructive, and selects the earliest value to
assign at each step, sharing registers among values whenever possible."

The left-edge algorithm (borrowed from channel routing) sorts value
lifetimes by their left edge (definition step) and packs each value
into the lowest-indexed register that is free — optimal in register
count for interval lifetimes (it meets the max-live lower bound).

Carrier affinity: values that enter or leave the block through the same
variable are steered to that variable's register when compatible, which
keeps the datapath's variable registers stable across blocks.
"""

from __future__ import annotations

from ..analysis.liveness import live_out_variables
from .base import Allocation, Allocator, FUInstance, busy_end
from .lifetimes import compute_lifetimes


class LeftEdgeRegisterAllocator(Allocator):
    """Optimal-count register allocation; FU assignment greedy-by-step.

    REAL proper only allocates registers; to produce a complete
    :class:`Allocation` (so the shared checker applies), functional
    units are assigned with plain earliest-index sharing, which leaves
    FU counts identical to clique partitioning on every schedule where
    compatibility is interval-structured (always true here, since ops
    occupy step intervals).
    """

    name = "left-edge"

    def allocate(self) -> Allocation:
        schedule = self.schedule
        allocation = Allocation(schedule, allocator=self.name)
        self._allocate_registers(allocation)
        self._allocate_fus(allocation)
        return allocation

    # ------------------------------------------------------------------

    def _allocate_registers(self, allocation: Allocation) -> None:
        lifetimes = compute_lifetimes(self.schedule,
                                      live_out_variables(self.schedule))
        # Left edge order: earliest definition first, stable by id.
        lifetimes.sort(key=lambda lt: (lt.def_step, lt.last_use,
                                       lt.value.id))
        register_free_at: list[int] = []   # register -> next free step
        register_carrier: dict[int, str] = {}

        for lifetime in lifetimes:
            candidates = [
                register
                for register, free_at in enumerate(register_free_at)
                if free_at <= lifetime.def_step
            ]
            chosen: int | None = None
            if lifetime.carrier is not None:
                for register in candidates:
                    if register_carrier.get(register) == lifetime.carrier:
                        chosen = register
                        break
            if chosen is None and candidates:
                chosen = candidates[0]
            if chosen is None:
                chosen = len(register_free_at)
                register_free_at.append(lifetime.last_use)
            else:
                register_free_at[chosen] = lifetime.last_use
            if lifetime.carrier is not None:
                register_carrier.setdefault(chosen, lifetime.carrier)
            allocation.register_map[lifetime.value.id] = chosen

    def _allocate_fus(self, allocation: Allocation) -> None:
        schedule = self.schedule
        problem = schedule.problem
        busy_until: dict[tuple[str, int], int] = {}
        counts: dict[str, int] = {}
        op_ids = sorted(
            problem.compute_op_ids(),
            key=lambda op_id: (schedule.start[op_id], op_id),
        )
        for op_id in op_ids:
            cls = problem.op_class(op_id)
            assert cls is not None
            chosen: int | None = None
            for index in range(counts.get(cls, 0)):
                if busy_until[(cls, index)] < schedule.start[op_id]:
                    chosen = index
                    break
            if chosen is None:
                chosen = counts.get(cls, 0)
                counts[cls] = chosen + 1
            busy_until[(cls, chosen)] = busy_end(schedule, op_id)
            allocation.fu_map[op_id] = FUInstance(cls, chosen)
