"""Incremental re-synthesis: redo only what a source edit touched.

The flow (ScaleHLS-style cheap re-evaluation, applied to the paper's
pipeline): compile and optimize the edited source as usual, diff the
resulting CDFG against the baseline design's CDFG with
:func:`~repro.analysis.impact.diff_cdfgs`, then synthesize the new
CDFG with *schedule hints* for every content-unchanged block — the
engine replays the baseline's start times onto the fresh block
(validating them against its dependences and constraints) instead of
re-running the scheduler.  Dirty, added, and structurally shifted
blocks are scheduled for real.  Allocation, binding, datapath and
controller synthesis always re-run — they are deterministic functions
of (CDFG, schedules) and fast compared to scheduling, and re-running
them keeps the produced design indistinguishable from a full
resynthesis.

Replay is *provably safe* per block (the replayed schedule is
re-validated) but exact output equality with a from-scratch run
additionally assumes the scheduler is deterministic on unchanged
content — true for every built-in scheduler.  The escape hatch for
doubt is ``verify=True``: it runs the full pipeline from scratch and
compares stage signatures, raising
:class:`~repro.errors.VerificationError` naming the first diverging
stage.  Benchmarks keep it on once per workload so the reported
speedups are certified equivalent.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from ..analysis.impact import CDFGDelta, diff_cdfgs
from ..errors import VerificationError
from ..lang import compile_source
from ..obs import metrics, trace_span
from ..transforms import optimize
from .design import SynthesizedDesign
from .engine import (
    SynthesisOptions,
    lookup_design,
    record_design,
    source_digest,
    synthesize,
    synthesize_cdfg,
)


@dataclass
class ResynthesisReport:
    """The incrementally re-synthesized design plus what was reused."""

    design: SynthesizedDesign
    delta: CDFGDelta
    #: Block names whose baseline schedule was replayed.
    replayed_blocks: list[str] = field(default_factory=list)
    #: Block names scheduled from scratch.
    scheduled_blocks: list[str] = field(default_factory=list)
    #: True after a passing differential verification; None when
    #: verification was not requested.
    verified: bool | None = None


def differential_verify(design: SynthesizedDesign, source: str,
                        procedure: str | None = None,
                        options: SynthesisOptions | None = None) -> bool:
    """Prove ``design`` equivalent to a full resynthesis of ``source``.

    Runs the whole pipeline from scratch (no hints, no caches) and
    compares per-stage decision signatures.  Returns True; raises
    :class:`~repro.errors.VerificationError` naming the first
    diverging stage otherwise.
    """
    options = options or SynthesisOptions()
    with trace_span("resynthesize.verify"):
        reference = synthesize(source, procedure, options)
    ours = design.stage_signatures()
    theirs = reference.stage_signatures()
    for stage in ours:
        if ours[stage] != theirs[stage]:
            raise VerificationError(
                f"incremental resynthesis diverged from full "
                f"resynthesis at the {stage} stage"
            )
    return True


def resynthesize(baseline: SynthesizedDesign, source: str,
                 procedure: str | None = None,
                 options: SynthesisOptions | None = None,
                 verify: bool = False) -> ResynthesisReport:
    """Re-synthesize an edited ``source`` against a baseline design.

    Args:
        baseline: a design previously synthesized **with the same
            options** (scheduler, model, constraints…) from a close
            ancestor of ``source``; its per-block schedules seed the
            replay.  A baseline built under different options is not
            an error — its hints simply fail validation block by
            block and everything is scheduled fresh.
        source: the edited BSL program text.
        procedure: entry procedure (default: last defined).
        options: pipeline knobs (default: baseline-compatible
            defaults).
        verify: also run a full from-scratch resynthesis and raise
            :class:`~repro.errors.VerificationError` unless the stage
            signatures match (the differential escape hatch).
    """
    options = options or SynthesisOptions()
    with trace_span("resynthesize", procedure=procedure or "") as span:
        cdfg = compile_source(source, procedure)
        if options.optimize_ir:
            optimize(cdfg, unroll=options.unroll,
                     tree_height=options.tree_height,
                     if_conversion=options.if_conversion)
        run_options = replace(options, optimize_ir=False)
        delta = diff_cdfgs(baseline.cdfg, cdfg)
        baseline_ids = {
            block.name: block.id for block in baseline.cdfg.blocks()
        }
        hints: dict[str, tuple] = {}
        for name in delta.unchanged:
            schedule = baseline.schedules.get(baseline_ids[name])
            if schedule is not None:
                hints[name] = schedule.signature()
        replayed_before = metrics().counter(
            "engine.blocks.replayed"
        ).value
        design = synthesize_cdfg(cdfg, run_options,
                                 schedule_hints=hints)
        replayed_count = metrics().counter(
            "engine.blocks.replayed"
        ).value - replayed_before
        metrics().counter("resynthesize.runs").inc()
        metrics().counter("resynthesize.blocks.dirty").inc(
            len(delta.dirty) + len(delta.added)
        )
        span.set(dirty=len(delta.dirty), replayed=replayed_count)
    # A hint can fail validation and fall back to real scheduling, so
    # the replayed list is derived from schedules, not from the delta:
    # a block was replayed iff its final schedule equals its hint.
    block_names = {
        block.id: block.name for block in cdfg.blocks()
    }
    replayed: list[str] = []
    scheduled: list[str] = []
    for block_id, schedule in design.schedules.items():
        name = block_names.get(block_id, "?")
        if name in hints and schedule.signature() == hints[name]:
            replayed.append(name)
        else:
            scheduled.append(name)
    report = ResynthesisReport(
        design=design,
        delta=delta,
        replayed_blocks=sorted(replayed),
        scheduled_blocks=sorted(scheduled),
    )
    if verify:
        report.verified = differential_verify(design, source,
                                              procedure, options)
    return report


def resynthesize_from_cache(old_source: str, new_source: str,
                            procedure: str | None = None,
                            options: SynthesisOptions | None = None,
                            verify: bool = False) -> ResynthesisReport:
    """Incremental re-synthesis seeded from the two-tier design cache.

    The baseline for ``old_source`` comes from
    :func:`~repro.core.engine.lookup_design` — in a fresh process with
    an active :mod:`repro.store` this loads the template a previous
    process persisted, so an edit-compile-resynthesize loop stays warm
    across CLI invocations.  When the baseline is not cached it is
    synthesized (and recorded) first.

    The incremental result is recorded under ``new_source``'s key only
    after a **passing** differential verification: the store must only
    ever serve designs indistinguishable from a full synthesis.
    """
    options = options or SynthesisOptions()
    digest = source_digest(old_source)
    baseline = lookup_design(digest, procedure, options)
    if baseline is None:
        baseline = synthesize(old_source, procedure, options,
                              use_cache=True)
    report = resynthesize(baseline, new_source, procedure, options,
                          verify=verify)
    if report.verified:
        record_design(source_digest(new_source), procedure, options,
                      report.design)
    return report
