"""The end-to-end HLS engine: behavioral source in, design out.

Implements the complete pipeline of the paper's §2: compile →
high-level transformations → scheduling → allocation → module binding →
controller synthesis.  Every stage is pluggable (scheduler and
allocator families are selected by name), so the engine is also the
harness design-space exploration drives.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from ..allocation import (
    CliqueAllocator,
    ColoringRegisterAllocator,
    GreedyDatapathAllocator,
    LeftEdgeRegisterAllocator,
    RuleBasedAllocator,
)
from ..binding import ComponentLibrary, ModuleBinder
from ..controller.fsm import synthesize_fsm
from ..datapath.plan import plan_block
from ..errors import HLSError
from ..ir.cdfg import CDFG, IfRegion, LoopRegion
from ..lang import compile_source
from ..scheduling import (
    ASAPScheduler,
    BranchAndBoundScheduler,
    ForceDirectedScheduler,
    FreedomBasedScheduler,
    ListScheduler,
    ResourceConstraints,
    ResourceModel,
    SchedulingProblem,
    SimulatedAnnealingScheduler,
    UniversalFUModel,
    YSCScheduler,
)
from ..transforms import optimize
from .design import SynthesizedDesign

SCHEDULERS: dict[str, Callable] = {
    "asap": ASAPScheduler,
    "list": ListScheduler,
    "force-directed": ForceDirectedScheduler,
    "freedom-based": FreedomBasedScheduler,
    "branch-and-bound": BranchAndBoundScheduler,
    "ysc": YSCScheduler,
    "annealing": SimulatedAnnealingScheduler,
}

ALLOCATORS: dict[str, Callable] = {
    "clique": CliqueAllocator,
    "left-edge": LeftEdgeRegisterAllocator,
    "greedy": GreedyDatapathAllocator,
    "coloring": ColoringRegisterAllocator,
    "rules": RuleBasedAllocator,
}


@dataclass
class SynthesisOptions:
    """Knobs of one synthesis run.

    Attributes:
        scheduler: one of :data:`SCHEDULERS`.
        allocator: one of :data:`ALLOCATORS`.
        model: resource/delay model (default: the paper's universal FU).
        constraints: per-class unit limits.
        optimize_ir: run the standard transformation pipeline first.
        unroll: fully unroll constant-trip loops during optimization.
        tree_height: rebalance associative chains during optimization.
        library: component library for module binding.
    """

    scheduler: str = "list"
    allocator: str = "left-edge"
    model: ResourceModel | None = None
    constraints: ResourceConstraints | None = None
    optimize_ir: bool = True
    unroll: bool = False
    tree_height: bool = False
    library: ComponentLibrary | None = None


def _region_condition_values(cdfg: CDFG) -> dict[int, set[int]]:
    """Block id → condition value ids the controller reads there."""
    conditions: dict[int, set[int]] = {}
    for region in cdfg.body.walk():
        if isinstance(region, (IfRegion, LoopRegion)):
            block = region.cond.producer.block
            conditions.setdefault(block.id, set()).add(region.cond.id)
    return conditions


def synthesize_cdfg(cdfg: CDFG,
                    options: SynthesisOptions | None = None
                    ) -> SynthesizedDesign:
    """Run scheduling → allocation → binding → control on a CDFG.

    The CDFG is optimized in place when ``options.optimize_ir`` is set.
    """
    options = options or SynthesisOptions()
    model = options.model or UniversalFUModel()
    constraints = options.constraints or ResourceConstraints.unlimited()

    log: list[str] = []
    if options.optimize_ir:
        report = optimize(cdfg, unroll=options.unroll,
                          tree_height=options.tree_height)
        log.append(f"optimize: {report}")

    scheduler_factory = SCHEDULERS.get(options.scheduler)
    if scheduler_factory is None:
        raise HLSError(f"unknown scheduler {options.scheduler!r}")
    allocator_factory = ALLOCATORS.get(options.allocator)
    if allocator_factory is None:
        raise HLSError(f"unknown allocator {options.allocator!r}")

    design = SynthesizedDesign(
        cdfg=cdfg,
        model=model,
        constraints=constraints,
        scheduler_name=options.scheduler,
        allocator_name=options.allocator,
        log=log,
    )
    conditions = _region_condition_values(cdfg)

    bindings = []
    binder = ModuleBinder(options.library)
    for block in cdfg.blocks():
        if not block.ops:
            continue
        problem = SchedulingProblem.from_block(block, model, constraints)
        schedule = scheduler_factory(problem).schedule()
        schedule.validate()
        allocation = allocator_factory(schedule).allocate()
        allocation.validate()
        plan = plan_block(
            block, schedule, allocation,
            live_out_values=conditions.get(block.id, set()),
        )
        design.schedules[block.id] = schedule
        design.allocations[block.id] = allocation
        design.plans[block.id] = plan
        binding = binder.bind(allocation)
        bindings.append(binding)
        usage = ", ".join(
            f"{cls}={count}"
            for cls, count in sorted(schedule.resource_usage().items())
        )
        log.append(
            f"schedule[{options.scheduler}] {block.name}: "
            f"{schedule.length} steps, peak usage {{{usage or '-'}}}"
        )
        log.append(
            f"allocate[{options.allocator}] {block.name}: "
            f"{allocation.fu_count()} FUs, "
            f"{allocation.register_count} registers"
        )

    design.binding = binder.merge(bindings)
    for fu in sorted(design.binding.components,
                     key=lambda f: (f.cls, f.index)):
        component = design.binding.components[fu]
        log.append(
            f"bind: {fu} -> {component.name} "
            f"({design.binding.widths[fu]} bits)"
        )
    design.fsm = synthesize_fsm(cdfg, design.plans)
    log.append(f"control: FSM with {design.fsm.state_count} states")
    return design


def synthesize(source: str, procedure: str | None = None,
               options: SynthesisOptions | None = None,
               **option_kwargs) -> SynthesizedDesign:
    """Compile behavioral source and synthesize it.

    Args:
        source: BSL program text.
        procedure: entry procedure (default: last defined).
        options: a full :class:`SynthesisOptions`; otherwise
            ``option_kwargs`` are forwarded to its constructor
            (``scheduler=``, ``allocator=``, ``constraints=``, …).
    """
    if options is None:
        options = SynthesisOptions(**option_kwargs)
    elif option_kwargs:
        raise HLSError("pass either options or keyword options, not both")
    cdfg = compile_source(source, procedure)
    return synthesize_cdfg(cdfg, options)
