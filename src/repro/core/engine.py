"""The end-to-end HLS engine: behavioral source in, design out.

Implements the complete pipeline of the paper's §2: compile →
high-level transformations → scheduling → allocation → module binding →
controller synthesis.  Every stage is pluggable (scheduler and
allocator families are selected by name), so the engine is also the
harness design-space exploration drives.
"""

from __future__ import annotations

import hashlib
import time
from collections import OrderedDict
from dataclasses import dataclass, replace
from typing import Callable, Hashable, Mapping

from ..allocation import (
    CliqueAllocator,
    ColoringRegisterAllocator,
    GreedyDatapathAllocator,
    LeftEdgeRegisterAllocator,
    RuleBasedAllocator,
)
from ..binding import ComponentLibrary, ModuleBinder
from ..controller.fsm import synthesize_fsm
from ..datapath.plan import plan_block
from ..errors import HLSError, SchedulingError
from ..ir.cdfg import CDFG, IfRegion, LoopRegion
from ..lang import compile_source
from ..obs import (
    maybe_memory,
    maybe_tracing,
    memory_span,
    metrics,
    pow2_bucket,
    trace_span,
    tracer,
    tracing_enabled,
)
from ..scheduling import (
    ASAPScheduler,
    BranchAndBoundScheduler,
    ForceDirectedScheduler,
    FreedomBasedScheduler,
    ListScheduler,
    ResourceConstraints,
    ResourceModel,
    Schedule,
    SchedulingProblem,
    SimulatedAnnealingScheduler,
    UniversalFUModel,
    YSCScheduler,
)
from ..transforms import optimize
from .design import SynthesizedDesign

SCHEDULERS: dict[str, Callable] = {
    "asap": ASAPScheduler,
    "list": ListScheduler,
    "force-directed": ForceDirectedScheduler,
    "freedom-based": FreedomBasedScheduler,
    "branch-and-bound": BranchAndBoundScheduler,
    "ysc": YSCScheduler,
    "annealing": SimulatedAnnealingScheduler,
}

ALLOCATORS: dict[str, Callable] = {
    "clique": CliqueAllocator,
    "left-edge": LeftEdgeRegisterAllocator,
    "greedy": GreedyDatapathAllocator,
    "coloring": ColoringRegisterAllocator,
    "rules": RuleBasedAllocator,
}


@dataclass
class SynthesisOptions:
    """Knobs of one synthesis run.

    Attributes:
        scheduler: one of :data:`SCHEDULERS`.
        allocator: one of :data:`ALLOCATORS`.
        model: resource/delay model (default: the paper's universal FU).
        constraints: per-class unit limits.
        optimize_ir: run the standard transformation pipeline first.
        unroll: fully unroll constant-trip loops during optimization.
        tree_height: rebalance associative chains during optimization.
        if_conversion: convert small branches into straight-line mux
            selection during optimization (the third opt-in directive
            of the §2 transformation repertoire; directive DSE sweeps
            it together with ``unroll``/``tree_height``).
        narrow: run the range-driven bitwidth-narrowing pass
            (:class:`repro.transforms.narrow.RangeNarrowing`) after
            optimization, shrinking value and register widths to their
            proven intervals.
        assume_ranges: trusted input contracts for the range analysis,
            as ``(port name, lo, hi)`` triples (e.g. the paper's sqrt
            operating interval ``("X", 0.0625, 1.0)``).  Narrowing
            under a contract is only sound for inputs honoring it;
            unknown port names are ignored.
        library: component library for module binding.
        verify: run the :mod:`repro.verify` stage contracts after each
            pipeline stage and raise
            :class:`~repro.errors.VerificationError` on any violation.
        trace: enable :mod:`repro.obs` span tracing for this run
            (equivalent to env ``REPRO_TRACE=1`` scoped to the call).
            Pure observability — never changes what is synthesized.
        memory: enable :mod:`repro.obs.resource` per-stage heap-peak
            gauges for this run (equivalent to env ``REPRO_MEM=1``
            scoped to the call).  Pure observability, like ``trace``.
        fault_spec: deterministic fault-injection spec for the
            :mod:`repro.exec` task runtime (testing knob, equivalent
            to env ``REPRO_FAULT`` scoped to runs derived from these
            options; see ``docs/resilience.md`` for the grammar).
            Only parallel task execution consults it — the pipeline
            itself never injects faults.
    """

    scheduler: str = "list"
    allocator: str = "left-edge"
    model: ResourceModel | None = None
    constraints: ResourceConstraints | None = None
    optimize_ir: bool = True
    unroll: bool = False
    tree_height: bool = False
    if_conversion: bool = False
    narrow: bool = False
    assume_ranges: tuple[tuple[str, float, float], ...] = ()
    library: ComponentLibrary | None = None
    verify: bool = False
    trace: bool = False
    memory: bool = False
    fault_spec: str | None = None

    def with_constraints(
        self,
        constraints: ResourceConstraints | Mapping[str, int] | None,
    ) -> "SynthesisOptions":
        """A copy of these options with only the constraints replaced.

        The single way DSE derives per-point options — new fields added
        to :class:`SynthesisOptions` are carried along automatically
        instead of having to be re-listed at every call site.
        """
        if constraints is not None and not isinstance(
            constraints, ResourceConstraints
        ):
            constraints = ResourceConstraints(dict(constraints))
        return replace(self, constraints=constraints)

    def cache_key(self) -> tuple[Hashable, ...]:
        """A hashable key identifying every behavior-relevant knob.

        Model and library objects are keyed by identity (they are
        stateless strategy objects); the key tuple keeps a reference to
        them, so an entry can never collide with a different object
        that happens to reuse a freed id.
        """
        limits = (
            None
            if self.constraints is None
            else tuple(sorted(self.constraints.limits.items()))
        )
        # ``trace`` and ``memory`` are deliberately absent: both
        # observe a run without changing its result, so observed and
        # unobserved runs share cache entries.  ``fault_spec`` is
        # absent for the same reason — faults kill or delay a task,
        # never alter a design that completes.
        return (
            self.scheduler,
            self.allocator,
            self.model,
            limits,
            self.optimize_ir,
            self.unroll,
            self.tree_height,
            self.if_conversion,
            self.narrow,
            self.assume_ranges,
            self.library,
            self.verify,
        )


def source_digest(source: str) -> str:
    """Stable digest of behavioral source text, for cache keys."""
    return hashlib.sha256(source.encode("utf-8")).hexdigest()


class SynthesisCache:
    """A bounded LRU cache of synthesized designs.

    Keyed by ``(source digest, entry procedure, options cache key)``;
    the design-space explorers use it so re-probing a constraint the
    binary search (or an earlier sweep) already built never re-runs
    the synthesis pipeline.  Entries are complete
    :class:`SynthesizedDesign` objects and must be treated as
    immutable by callers.
    """

    def __init__(self, max_entries: int = 256) -> None:
        self.max_entries = max_entries
        self._entries: OrderedDict[tuple, SynthesizedDesign] = OrderedDict()
        # Counters live in the global metrics registry (one family per
        # process — every instance shares them, and in practice the
        # process-global cache is the only instance).
        registry = metrics()
        self._hits = registry.counter("cache.hits")
        self._misses = registry.counter("cache.misses")
        self._evictions = registry.counter("cache.evictions")
        self._occupancy = registry.gauge("cache.entries")
        registry.gauge("cache.max_entries").set(max_entries)

    @property
    def hits(self) -> int:
        return self._hits.value

    @property
    def misses(self) -> int:
        return self._misses.value

    @property
    def evictions(self) -> int:
        return self._evictions.value

    def get(self, key: tuple) -> SynthesizedDesign | None:
        design = self._entries.get(key)
        if design is None:
            self._misses.inc()
            return None
        self._entries.move_to_end(key)
        self._hits.inc()
        return design

    def put(self, key: tuple, design: SynthesizedDesign) -> None:
        self._entries[key] = design
        self._entries.move_to_end(key)
        while len(self._entries) > self.max_entries:
            self._entries.popitem(last=False)
            self._evictions.inc()
        self._occupancy.set(len(self._entries))

    def clear(self) -> None:
        self._entries.clear()
        self._hits.reset()
        self._misses.reset()
        self._evictions.reset()
        self._occupancy.set(0)

    def __len__(self) -> int:
        return len(self._entries)

    def stats(self) -> dict[str, int]:
        """Occupancy and counters, read back from the metrics registry."""
        return {
            "entries": len(self._entries),
            "max_entries": self.max_entries,
            "hits": self._hits.value,
            "misses": self._misses.value,
            "evictions": self._evictions.value,
        }


#: Process-global design cache shared by every exploration entry point.
_SYNTHESIS_CACHE = SynthesisCache()


def synthesis_cache() -> SynthesisCache:
    """The process-global :class:`SynthesisCache`."""
    return _SYNTHESIS_CACHE


def clear_synthesis_cache() -> None:
    """Drop every cached design and reset the hit/miss counters."""
    _SYNTHESIS_CACHE.clear()


def _store_tier(digest: str, procedure: str | None,
                options: SynthesisOptions):
    """(store, key) of the persistent tier, or (None, None).

    Imported lazily: :mod:`repro.store` pulls in :mod:`repro.exec`
    for its fault hooks, and the engine must stay importable first.
    """
    from ..store import active_store, store_key

    store = active_store()
    if store is None:
        return None, None
    key = store_key(digest, procedure, options)
    if key is None:
        return None, None
    return store, key


def lookup_design(digest: str, procedure: str | None,
                  options: SynthesisOptions) -> SynthesizedDesign | None:
    """Two-tier design lookup: the in-memory LRU, then the persistent
    store (when one is active — see :func:`repro.store.active_store`).

    A store hit is re-inserted into the LRU under the in-memory key,
    so repeated lookups in one process pay the pickle load once.
    Cached designs are shared objects; callers must not mutate them.
    """
    key = (digest, procedure, options.cache_key())
    design = _SYNTHESIS_CACHE.get(key)
    if design is not None:
        return design
    store, store_key_ = _store_tier(digest, procedure, options)
    if store is None:
        return None
    design = store.get(store_key_)
    if design is not None:
        _SYNTHESIS_CACHE.put(key, design)
    return design


def record_design(digest: str, procedure: str | None,
                  options: SynthesisOptions,
                  design: SynthesizedDesign) -> None:
    """Insert a design into both cache tiers (store tier only when one
    is active and the options are stably keyable)."""
    _SYNTHESIS_CACHE.put((digest, procedure, options.cache_key()),
                         design)
    store, store_key_ = _store_tier(digest, procedure, options)
    if store is not None:
        store.put(store_key_, design, fault_spec=options.fault_spec)


def _verify_stages(design: SynthesizedDesign, stages: tuple[str, ...],
                   log: list[str]) -> None:
    """Opt-in engine hook: run stage contracts, raise on violations.

    Imported lazily — :mod:`repro.verify` imports the pipeline
    packages, so the engine must not import it at module level.
    """
    from ..errors import VerificationError
    from ..verify import verify_design

    with trace_span("verify", stages=",".join(stages)) as span:
        report = verify_design(design, stages=stages)
        span.set(violations=len(report.violations))
    log.append(
        f"verify[{','.join(stages)}]: "
        f"{'ok' if report.ok else f'{len(report.violations)} violations'}"
    )
    if not report.ok:
        raise VerificationError(report.render(), report.violations)


def _region_condition_values(cdfg: CDFG) -> dict[int, set[int]]:
    """Block id → condition value ids the controller reads there."""
    conditions: dict[int, set[int]] = {}
    for region in cdfg.body.walk():
        if isinstance(region, (IfRegion, LoopRegion)):
            block = region.cond.producer.block
            conditions.setdefault(block.id, set()).add(region.cond.id)
    return conditions


def synthesize_cdfg(cdfg: CDFG,
                    options: SynthesisOptions | None = None,
                    problem_cache: dict[int, SchedulingProblem] | None = None,
                    schedule_hints: Mapping[str, tuple] | None = None,
                    ) -> SynthesizedDesign:
    """Run scheduling → allocation → binding → control on a CDFG.

    The CDFG is optimized in place when ``options.optimize_ir`` is set;
    everything after that point only reads the CDFG.

    Args:
        cdfg: the design to synthesize.
        options: pipeline knobs.
        problem_cache: optional block-id → :class:`SchedulingProblem`
            memo for resynthesizing the *same* CDFG under different
            resource constraints (the DSE fast path).  Each block's
            dependence graph and derived memos are built once and
            shared across runs via
            :meth:`SchedulingProblem.with_constraints`.  Only valid
            while the CDFG and resource model stay the same.
        schedule_hints: block name → position-indexed start tuple (the
            :meth:`~repro.scheduling.Schedule.signature` format) from a
            previously synthesized design.  A hinted block skips the
            scheduler: its start times are replayed onto the fresh
            block and validated; a hint that no longer fits (different
            op count, dependence or resource violation) silently falls
            back to real scheduling.  Only pass hints for blocks whose
            content is known unchanged — incremental re-synthesis
            (:func:`repro.core.incremental.resynthesize`) derives them
            from an :func:`~repro.analysis.impact.diff_cdfgs` delta.
    """
    options = options or SynthesisOptions()
    with maybe_tracing(options.trace), maybe_memory(options.memory):
        return _synthesize_cdfg(cdfg, options, problem_cache,
                                schedule_hints)


def _replay_schedule(problem: SchedulingProblem, hint: tuple,
                     scheduler_name: str) -> Schedule | None:
    """Rebuild a block's schedule from a position-indexed start tuple.

    Returns a validated :class:`Schedule`, or None when the hint does
    not fit this problem (wrong op count / illegal under its
    constraints) — the caller then runs the scheduler for real.
    """
    ops = problem.ops
    start: dict[int, int] = {}
    for index, begin in hint:
        if not 0 <= index < len(ops):
            metrics().counter("engine.blocks.replay_rejected").inc()
            return None
        start[ops[index].id] = begin
    if len(start) != len(ops):
        metrics().counter("engine.blocks.replay_rejected").inc()
        return None
    schedule = Schedule(problem, start, scheduler=scheduler_name)
    try:
        schedule.validate()
    except SchedulingError:
        metrics().counter("engine.blocks.replay_rejected").inc()
        return None
    return schedule


def _synthesize_cdfg(cdfg: CDFG, options: SynthesisOptions,
                     problem_cache: dict[int, SchedulingProblem] | None,
                     schedule_hints: Mapping[str, tuple] | None = None,
                     ) -> SynthesizedDesign:
    """The pipeline proper, with per-stage spans and metrics."""
    model = options.model or UniversalFUModel()
    constraints = options.constraints or ResourceConstraints.unlimited()

    log: list[str] = []
    if options.optimize_ir:
        with memory_span("transforms"):
            report = optimize(cdfg, unroll=options.unroll,
                              tree_height=options.tree_height,
                              if_conversion=options.if_conversion)
        log.append(f"optimize: {report}")
    if options.narrow:
        from ..transforms.narrow import RangeNarrowing

        assume = {name: (lo, hi) for name, lo, hi in options.assume_ranges}
        narrow_pass = RangeNarrowing(assume=assume)
        with memory_span("transforms"), trace_span("pass.range-narrow"):
            narrow_pass.run(cdfg)
        log.append(f"narrow: {narrow_pass.summary()}")

    scheduler_factory = SCHEDULERS.get(options.scheduler)
    if scheduler_factory is None:
        raise HLSError(f"unknown scheduler {options.scheduler!r}")
    allocator_factory = ALLOCATORS.get(options.allocator)
    if allocator_factory is None:
        raise HLSError(f"unknown allocator {options.allocator!r}")

    design = SynthesizedDesign(
        cdfg=cdfg,
        model=model,
        constraints=constraints,
        scheduler_name=options.scheduler,
        allocator_name=options.allocator,
        log=log,
    )
    conditions = _region_condition_values(cdfg)

    bindings = []
    binder = ModuleBinder(options.library)
    for block in cdfg.blocks():
        if not block.ops:
            continue
        if problem_cache is not None:
            base_problem = problem_cache.get(block.id)
            if base_problem is None:
                base_problem = SchedulingProblem.from_block(block, model)
                problem_cache[block.id] = base_problem
            problem = base_problem.with_constraints(constraints)
        else:
            problem = SchedulingProblem.from_block(block, model, constraints)
        schedule = None
        replayed = False
        hint = (schedule_hints.get(block.name)
                if schedule_hints else None)
        if hint is not None:
            with trace_span("schedule", block=block.name,
                            scheduler=options.scheduler,
                            replayed=True) as span:
                schedule = _replay_schedule(problem, hint,
                                            options.scheduler)
                if schedule is not None:
                    replayed = True
                    span.set(steps=schedule.length)
                    metrics().counter("engine.blocks.replayed").inc()
        if schedule is None:
            with trace_span("schedule", block=block.name,
                            scheduler=options.scheduler) as span, \
                    memory_span("schedule"):
                started = time.perf_counter()
                schedule = scheduler_factory(problem).schedule()
                elapsed_ms = (time.perf_counter() - started) * 1e3
                schedule.validate()
                span.set(steps=schedule.length)
            metrics().counter(
                "scheduler.invocations", scheduler=options.scheduler
            ).inc()
            metrics().histogram(
                "scheduler.latency_ms", scheduler=options.scheduler
            ).observe(elapsed_ms)
        # Magnitude-class counters: deterministic shape signal for the
        # coverage fingerprint (repro.obs.coverage) — a constrained
        # schedule that stretches 4x or an allocation squeezed onto
        # one FU is a different pipeline path, and should count as
        # new coverage even when no branch counter says so.
        metrics().counter(
            "engine.schedule.steps",
            bucket=str(pow2_bucket(schedule.length)),
        ).inc()
        with trace_span("allocate", block=block.name,
                        allocator=options.allocator) as span, \
                memory_span("allocate"):
            allocation = allocator_factory(schedule).allocate()
            allocation.validate()
            span.set(fus=allocation.fu_count(),
                     registers=allocation.register_count)
        metrics().counter(
            "allocator.invocations", allocator=options.allocator
        ).inc()
        metrics().counter(
            "engine.allocation.fus",
            bucket=str(pow2_bucket(allocation.fu_count())),
        ).inc()
        with trace_span("datapath", block=block.name), \
                memory_span("datapath"):
            plan = plan_block(
                block, schedule, allocation,
                live_out_values=conditions.get(block.id, set()),
            )
        design.schedules[block.id] = schedule
        design.allocations[block.id] = allocation
        design.plans[block.id] = plan
        with trace_span("bind", block=block.name), \
                memory_span("bind"):
            binding = binder.bind(allocation)
        bindings.append(binding)
        usage = ", ".join(
            f"{cls}={count}"
            for cls, count in sorted(schedule.resource_usage().items())
        )
        log.append(
            f"schedule[{options.scheduler}] {block.name}: "
            f"{schedule.length} steps, peak usage {{{usage or '-'}}}"
            + (" (replayed)" if replayed else "")
        )
        log.append(
            f"allocate[{options.allocator}] {block.name}: "
            f"{allocation.fu_count()} FUs, "
            f"{allocation.register_count} registers"
        )

    if options.verify:
        _verify_stages(design, ("scheduling", "allocation"), log)

    with trace_span("bind", phase="merge"):
        design.binding = binder.merge(bindings)
    for fu in sorted(design.binding.components,
                     key=lambda f: (f.cls, f.index)):
        component = design.binding.components[fu]
        log.append(
            f"bind: {fu} -> {component.name} "
            f"({design.binding.widths[fu]} bits)"
        )
    if options.verify:
        _verify_stages(design, ("binding",), log)
    with trace_span("controller") as span, memory_span("controller"):
        design.fsm = synthesize_fsm(cdfg, design.plans)
        span.set(states=design.fsm.state_count)
    log.append(f"control: FSM with {design.fsm.state_count} states")
    if options.verify:
        _verify_stages(design, ("controller", "netlist"), log)
    return design


def _ledger_tier():
    """The :mod:`repro.obs.ledger` module iff this run should append a
    record, else None.

    Imported lazily for the same reason as :func:`_store_tier`, and
    None whenever no ledger is active or a multi-run driver (a DSE
    sweep, the fuzzer) has claimed the record via ``ledger_scope()``.
    """
    from ..obs import ledger

    if ledger.active_ledger() is None or ledger.in_ledger_scope():
        return None
    return ledger


def synthesize(source: str, procedure: str | None = None,
               options: SynthesisOptions | None = None,
               use_cache: bool = False,
               **option_kwargs) -> SynthesizedDesign:
    """Compile behavioral source and synthesize it.

    Args:
        source: BSL program text.
        procedure: entry procedure (default: last defined).
        options: a full :class:`SynthesisOptions`; otherwise
            ``option_kwargs`` are forwarded to its constructor
            (``scheduler=``, ``allocator=``, ``constraints=``, …).
        use_cache: look the design up in (and store it into) the
            two-tier design cache — the process-global
            :class:`SynthesisCache`, backed by the persistent
            :mod:`repro.store` tier when one is active.  Cached
            designs are shared objects — callers must not mutate them.

    When a run ledger is active (:func:`repro.obs.ledger.active_ledger`)
    and no enclosing driver holds a ``ledger_scope()``, exactly one
    :class:`~repro.obs.ledger.RunRecord` is appended per call — cache
    hits included (they are runs too; ``extra.cached`` marks them).
    """
    if options is None:
        options = SynthesisOptions(**option_kwargs)
    elif option_kwargs:
        raise HLSError("pass either options or keyword options, not both")
    ledger = _ledger_tier()
    with maybe_tracing(options.trace), maybe_memory(options.memory):
        metrics_before = metrics().snapshot() if ledger else None
        span_base = len(tracer()) if ledger else 0
        started = time.perf_counter()
        cached = False
        with trace_span("synthesize", scheduler=options.scheduler,
                        allocator=options.allocator) as span:
            digest: str | None = None
            if use_cache or ledger is not None:
                digest = source_digest(source)
            design: SynthesizedDesign | None = None
            if use_cache:
                design = lookup_design(digest, procedure, options)
                if design is not None:
                    cached = True
                    span.set(cached=True)
            if design is None:
                with memory_span("compile"):
                    cdfg = compile_source(source, procedure)
                span.set(design=cdfg.name)
                design = synthesize_cdfg(cdfg, options)
                if use_cache:
                    record_design(digest, procedure, options, design)
        if ledger is not None:
            span_records = (tracer().records()[span_base:]
                            if tracing_enabled() else ())
            record = ledger.build_record(
                "synth", design.cdfg.name,
                design=design,
                source_digest=digest,
                options=options,
                metrics_before=metrics_before,
                span_records=span_records,
                wall_s=time.perf_counter() - started,
                extra={
                    "cached": cached,
                    "scheduler": options.scheduler,
                    "allocator": options.allocator,
                },
            )
            ledger.active_ledger().append(
                record, fault_spec=options.fault_spec
            )
        return design
