"""End-to-end synthesis engine and design container."""

from .design import SynthesizedDesign
from .engine import (
    ALLOCATORS,
    SCHEDULERS,
    SynthesisOptions,
    synthesize,
    synthesize_cdfg,
)

__all__ = [
    "ALLOCATORS",
    "SCHEDULERS",
    "SynthesisOptions",
    "SynthesizedDesign",
    "synthesize",
    "synthesize_cdfg",
]
