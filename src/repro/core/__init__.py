"""End-to-end synthesis engine and design container."""

from .design import SynthesizedDesign
from .engine import (
    ALLOCATORS,
    SCHEDULERS,
    SynthesisCache,
    SynthesisOptions,
    clear_synthesis_cache,
    source_digest,
    synthesis_cache,
    synthesize,
    synthesize_cdfg,
)

__all__ = [
    "ALLOCATORS",
    "SCHEDULERS",
    "SynthesisCache",
    "SynthesisOptions",
    "SynthesizedDesign",
    "clear_synthesis_cache",
    "source_digest",
    "synthesis_cache",
    "synthesize",
    "synthesize_cdfg",
]
