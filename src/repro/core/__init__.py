"""End-to-end synthesis engine and design container."""

from .design import SynthesizedDesign
from .engine import (
    ALLOCATORS,
    SCHEDULERS,
    SynthesisCache,
    SynthesisOptions,
    clear_synthesis_cache,
    lookup_design,
    record_design,
    source_digest,
    synthesis_cache,
    synthesize,
    synthesize_cdfg,
)
from .incremental import (
    ResynthesisReport,
    differential_verify,
    resynthesize,
    resynthesize_from_cache,
)

__all__ = [
    "ALLOCATORS",
    "SCHEDULERS",
    "ResynthesisReport",
    "SynthesisCache",
    "SynthesisOptions",
    "SynthesizedDesign",
    "clear_synthesis_cache",
    "differential_verify",
    "lookup_design",
    "record_design",
    "resynthesize",
    "resynthesize_from_cache",
    "source_digest",
    "synthesis_cache",
    "synthesize",
    "synthesize_cdfg",
]
