"""The synthesized design: everything the flow produced, in one object.

A :class:`SynthesizedDesign` bundles the optimized CDFG, the per-block
schedules/allocations/plans, the module binding and the FSM controller.
It is what the RTL simulator executes, what the Verilog emitter prints,
and what the estimators measure.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..allocation.base import Allocation
from ..binding.binder import Binding
from ..controller.fsm import FSM
from ..datapath.plan import BlockPlan, StorageRef
from ..ir.cdfg import CDFG
from ..ir.types import bit_width
from ..scheduling.base import (
    ResourceConstraints,
    ResourceModel,
    Schedule,
)


@dataclass
class SynthesizedDesign:
    """Complete output of one synthesis run."""

    cdfg: CDFG
    model: ResourceModel
    constraints: ResourceConstraints
    schedules: dict[int, Schedule] = field(default_factory=dict)
    allocations: dict[int, Allocation] = field(default_factory=dict)
    plans: dict[int, BlockPlan] = field(default_factory=dict)
    binding: Binding | None = None
    fsm: FSM | None = None
    scheduler_name: str = "?"
    allocator_name: str = "?"
    #: Decision log — the paper's §1.2 "self-documenting design
    #: process": what each stage did and why, appended by the engine.
    log: list[str] = field(default_factory=list)

    # ------------------------------------------------------------------
    # Storage inventory
    # ------------------------------------------------------------------

    def storage_registers(self) -> dict[StorageRef, int]:
        """Every physical register with its width in bits.

        Variable registers take their declared width; each temp index
        takes the widest value ever stored in it (temps are shared
        across blocks — their lifetimes never cross block boundaries).
        """
        registers: dict[StorageRef, int] = {
            ("var", name): bit_width(type_)
            for name, type_ in self.cdfg.variables.items()
        }
        for plan in self.plans.values():
            for value_id, storage in plan.storage_of.items():
                if storage[0] != "tmp":
                    continue
                value = None
                for op in plan.block.ops:
                    if op.result is not None and op.result.id == value_id:
                        value = op.result
                        break
                width = bit_width(value.type) if value is not None else 1
                registers[storage] = max(registers.get(storage, 0), width)
        return registers

    @property
    def register_count(self) -> int:
        return len(self.storage_registers())

    @property
    def temp_register_count(self) -> int:
        return sum(
            1 for ref in self.storage_registers() if ref[0] == "tmp"
        )

    @property
    def fu_count(self) -> int:
        instances = set()
        for allocation in self.allocations.values():
            instances.update(allocation.fu_map.values())
        return len(instances)

    @property
    def state_count(self) -> int:
        return self.fsm.state_count if self.fsm is not None else 0

    def stage_signatures(self) -> dict[str, tuple]:
        """Per-stage decision signatures, in pipeline order.

        Two designs synthesized from the same CDFG along different code
        paths (cached vs uncached, serial vs parallel, incremental vs
        reference) must produce *equal* signatures stage by stage; the
        differential engine compares them in order to name the first
        stage where two paths diverged.
        """
        # Blocks are keyed by their name (the problem label), not their
        # id — like op/value ids, block ids are process-local counters
        # and signatures must compare equal across processes.
        return {
            "scheduling": tuple(sorted(
                (schedule.problem.label, schedule.signature())
                for schedule in self.schedules.values()
            )),
            "allocation": tuple(sorted(
                (allocation.schedule.problem.label,
                 allocation.signature())
                for allocation in self.allocations.values()
            )),
            "binding": (
                () if self.binding is None else self.binding.signature()
            ),
            "controller": (
                () if self.fsm is None else self.fsm.signature()
            ),
        }

    def report(self) -> str:
        """A compact human-readable design summary."""
        lines = [f"design {self.cdfg.name}:"]
        lines.append(
            f"  scheduler={self.scheduler_name} "
            f"allocator={self.allocator_name} "
            f"constraints=({self.constraints})"
        )
        lines.append(
            f"  controller: {self.state_count} states; "
            f"datapath: {self.fu_count} FUs, "
            f"{self.register_count} registers "
            f"({self.temp_register_count} temps)"
        )
        if self.binding is not None:
            lines.append("  " + self.binding.report().replace("\n", "\n  "))
        return "\n".join(lines)

    def log_text(self) -> str:
        """The design-process log as one printable block."""
        return "\n".join(self.log)

    def to_dict(self) -> dict:
        """A JSON-serializable summary of the design (for tooling).

        Contains the structural inventory, per-block schedules (step →
        op descriptions) and the process log; no object references.
        """
        schedules = {}
        for block_id, schedule in sorted(self.schedules.items()):
            steps = []
            for step in range(schedule.length):
                cells = [
                    {
                        "op": op_id,
                        "what": schedule.problem.op(op_id).describe(),
                        "class": schedule.problem.op_class(op_id),
                    }
                    for op_id in schedule.ops_in_step(step)
                    if schedule.start[op_id] == step
                ]
                steps.append(cells)
            schedules[schedule.problem.label] = steps
        binding = {}
        if self.binding is not None:
            binding = {
                str(fu): {
                    "component": component.name,
                    "width": self.binding.widths[fu],
                }
                for fu, component in self.binding.components.items()
            }
        return {
            "name": self.cdfg.name,
            "scheduler": self.scheduler_name,
            "allocator": self.allocator_name,
            "constraints": str(self.constraints),
            "states": self.state_count,
            "functional_units": self.fu_count,
            "registers": self.register_count,
            "schedules": schedules,
            "binding": binding,
            "log": list(self.log),
        }
