"""As-late-as-possible scheduling (unconstrained, deadline-driven).

ALAP places each operation at the latest step that still lets all of
its successors finish by the deadline.  On its own it is rarely the
final schedule; its role is to bound each op's legal range —
``[ASAP(op), ALAP(op)]`` is the *freedom* (MAHA) or *time frame*
(force-directed/HAL) every global scheduler in this package consumes.
"""

from __future__ import annotations

from ..errors import SchedulingError
from .base import Schedule, Scheduler


class ALAPScheduler(Scheduler):
    """Latest-start schedule against a deadline (resource-unconstrained).

    Args:
        problem: the scheduling problem.
        deadline: number of control steps available; defaults to the
            problem's ``time_limit`` or, failing that, the critical
            path length (the tightest feasible deadline).
    """

    name = "alap"

    def __init__(self, problem, deadline: int | None = None) -> None:
        super().__init__(problem)
        if deadline is None:
            deadline = problem.time_limit
        if deadline is None:
            deadline = max(problem.critical_path(), 1)
        self.deadline = deadline

    def schedule(self) -> Schedule:
        problem = self.problem
        if problem.critical_path() > self.deadline:
            raise SchedulingError(
                f"deadline {self.deadline} shorter than critical path "
                f"{problem.critical_path()}"
            )
        start: dict[int, int] = {}
        for op_id in reversed(problem.topological()):
            delay = problem.delay(op_id)
            latest = self.deadline - max(delay, 1)
            for succ in problem.graph.successors(op_id):
                offset = problem.edge_offset(op_id, succ)
                latest = min(latest, start[succ] - offset)
            if latest < 0:
                raise SchedulingError(
                    f"op{op_id} cannot meet deadline {self.deadline}"
                )
            start[op_id] = latest
        return Schedule(problem, start, scheduler=self.name)
