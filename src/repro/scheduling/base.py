"""Scheduling substrate: resource models, problems, schedules, checker.

Terminology follows the paper's §2: scheduling "consists in assigning
the operations to so-called control steps", where "a control step is
the fundamental sequencing unit in synchronous systems; it corresponds
to a clock cycle".

Model of time used throughout the package:

* An operation with delay ``d >= 1`` occupies control steps
  ``[start, start + d - 1]`` on its resource class (multicycle
  operations hold their functional unit for every step — non-pipelined
  units).
* An operation with delay ``0`` is *free*: it consumes no resource and
  is chained combinationally inside the step where its inputs settle.
  The paper's example: "the shift operation is free" — a constant
  shift is pure wiring.
* A data edge ``u -> v``: a free producer's value is available within
  its own step, so ``start(v) >= start(u)``.  A computing producer's
  value settles at the end of step ``end(u) = start(u) + delay(u) - 1``;
  a free consumer may chain into that same step
  (``start(v) >= end(u)``), while a computing consumer needs the next
  one (``start(v) >= end(u) + 1``).  :func:`dependence_offset` encodes
  this rule once for every scheduler and for the checker.

Every scheduler returns a :class:`Schedule`; :meth:`Schedule.validate`
is the single source of truth for legality, shared by all tests.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Mapping

import networkx as nx

from ..errors import SchedulingError
from ..ir.cdfg import CDFG, LoopRegion
from ..ir.dfg import dependence_graph, topological_order
from ..ir.opcodes import OpKind, op_info
from ..ir.values import BasicBlock, Operation

# ----------------------------------------------------------------------
# Resource models
# ----------------------------------------------------------------------

_PLUMBING_KINDS = frozenset(
    {OpKind.CONST, OpKind.VAR_READ, OpKind.NOP, OpKind.MUX}
)


class ResourceModel:
    """Maps operations to resource classes and delays.

    ``op_class(op)`` returns the resource class the op competes for, or
    None when the op is free.  ``delay(op)`` returns the op's latency in
    control steps (0 for free ops).  Subclasses define concrete cost
    models; tests and benches use them to reproduce specific figures.
    """

    def op_class(self, op: Operation) -> str | None:
        raise NotImplementedError

    def delay(self, op: Operation) -> int:
        raise NotImplementedError

    def occupancy(self, op: Operation) -> int:
        """Control steps the op *holds its functional unit* for.

        Defaults to the full delay (non-pipelined units).  A pipelined
        unit accepts a new operation every ``occupancy`` steps while
        each result still takes ``delay`` steps to appear — the
        distinction Sehwa's pipelined datapaths rely on.
        """
        return self.delay(op)

    def cache_token(self) -> tuple | None:
        """Value-level identity for persistent cache keys.

        In-memory caches key models by object identity; the disk store
        (:mod:`repro.store`) needs a token that is equal across
        processes for models that behave identically.  The default —
        None — marks the model *unstorable*: designs built with it are
        cached in memory only, which is always safe.  Subclasses whose
        behavior is fully determined by plain-data configuration
        override this.
        """
        return None

    # Convenience -------------------------------------------------------

    def is_free(self, op: Operation) -> bool:
        return self.op_class(op) is None and self.delay(op) == 0

    def classes_used(self, ops: Iterable[Operation]) -> list[str]:
        """Sorted resource classes appearing among ``ops``."""
        found = {
            cls
            for op in ops
            if (cls := self.op_class(op)) is not None
        }
        return sorted(found)


def _shift_by_constant(op: Operation) -> bool:
    return (
        op.kind in (OpKind.SHL, OpKind.SHR)
        and op.operands[1].producer.kind is OpKind.CONST
    )


def _is_bare_move(op: Operation) -> bool:
    """A VAR_WRITE whose value comes straight from a CONST or VAR_READ —
    a pure register transfer with no computation attached."""
    if op.kind is not OpKind.VAR_WRITE:
        return False
    producer = op.operands[0].producer
    return producer.kind in (OpKind.CONST, OpKind.VAR_READ)


class UniversalFUModel(ResourceModel):
    """The paper's §2 cost model: one kind of functional unit.

    Every computational operation runs on a universal FU in one control
    step.  Shifts by constants are free ("the shift operation is
    free").  Bare register moves (``I := 0``) cost a step on the FU
    when ``count_bare_moves`` is set — that is the paper's "trivial
    special case [with] just one functional unit and one memory" in
    which *every* operation, moves included, lands in its own step
    (3 + 4x5 = 23); with two FUs the same model gives 2 + 4x2 = 10.

    Memory LOAD/STORE ops occupy the ``mem`` class (one step).
    """

    def __init__(self, count_bare_moves: bool = True,
                 memory_class: str = "mem") -> None:
        self._count_bare_moves = count_bare_moves
        self._memory_class = memory_class

    def op_class(self, op: Operation) -> str | None:
        if op.kind in _PLUMBING_KINDS:
            return None
        if op.kind in (OpKind.LOAD, OpKind.STORE):
            return self._memory_class
        if op.kind is OpKind.VAR_WRITE:
            if self._count_bare_moves and _is_bare_move(op):
                return "fu"
            return None
        if _shift_by_constant(op):
            return None
        return "fu"

    def delay(self, op: Operation) -> int:
        return 0 if self.op_class(op) is None else 1

    def cache_token(self) -> tuple:
        return ("universal", self._count_bare_moves, self._memory_class)


DEFAULT_TYPED_DELAYS: dict[str, int] = {
    "add": 1,
    "mul": 2,
    "div": 4,
    "shift": 1,
    "logic": 1,
    "cmp": 1,
    "mem": 1,
}


class TypedFUModel(ResourceModel):
    """Typed functional units (adders, multipliers, …) with per-class
    delays — the model used by the classic HAL/EWF benchmark results.

    Args:
        delays: control-step latency per class; unlisted classes get 1.
        single_cycle: force every delay to 1 (many published baselines
            assume unit delays).
        free_const_shifts: constant shifts are wiring (default True).
    """

    def __init__(self, delays: Mapping[str, int] | None = None,
                 single_cycle: bool = False,
                 free_const_shifts: bool = True,
                 pipelined_classes: Iterable[str] = ()) -> None:
        self._delays = dict(DEFAULT_TYPED_DELAYS)
        if delays:
            self._delays.update(delays)
        if single_cycle:
            self._delays = {key: 1 for key in self._delays}
        self._free_const_shifts = free_const_shifts
        self._pipelined = frozenset(pipelined_classes)

    def op_class(self, op: Operation) -> str | None:
        if op.kind in _PLUMBING_KINDS or op.kind is OpKind.VAR_WRITE:
            return None
        if self._free_const_shifts and _shift_by_constant(op):
            return None
        return op_info(op.kind).fu_class

    def delay(self, op: Operation) -> int:
        cls = self.op_class(op)
        if cls is None:
            return 0
        return self._delays.get(cls, 1)

    def occupancy(self, op: Operation) -> int:
        cls = self.op_class(op)
        if cls is None:
            return 0
        if cls in self._pipelined:
            return 1
        return self._delays.get(cls, 1)

    def cache_token(self) -> tuple:
        return (
            "typed",
            tuple(sorted(self._delays.items())),
            self._free_const_shifts,
            tuple(sorted(self._pipelined)),
        )


# ----------------------------------------------------------------------
# Problems
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class ResourceConstraints:
    """Per-class unit counts available to the scheduler.

    ``limits[cls]`` is the number of units of that class; classes not
    present are unlimited.  ``unlimited()`` builds the empty constraint.
    """

    limits: Mapping[str, int] = field(default_factory=dict)

    @classmethod
    def unlimited(cls) -> "ResourceConstraints":
        return cls({})

    def limit(self, resource_class: str) -> int | None:
        return self.limits.get(resource_class)

    def __str__(self) -> str:
        if not self.limits:
            return "unlimited"
        return ", ".join(f"{k}={v}" for k, v in sorted(self.limits.items()))


def dependence_offset(delay_u: int, delay_v: int) -> int:
    """Minimum ``start(v) - start(u)`` along a dependence edge.

    Encodes the chaining rule documented in the module docstring.
    """
    if delay_u == 0:
        return 0
    if delay_v == 0:
        return delay_u - 1
    return delay_u


@dataclass(frozen=True)
class TimingConstraint:
    """A designer-imposed bound between two operations' start steps.

    ``min_offset <= start(to_op) - start(from_op) <= max_offset``
    (either bound may be None).  These model the paper's §4 "local
    timing constraints" (Nestor, Borriello): interface protocols that
    require two operations a fixed distance apart.

    Minimum offsets (>= 0) are folded into the dependence graph so
    constructive schedulers honour them natively; maximum offsets are
    enforced by the checker and by the branch-and-bound search.
    """

    from_op: int
    to_op: int
    min_offset: int | None = None
    max_offset: int | None = None

    def __post_init__(self) -> None:
        if self.min_offset is None and self.max_offset is None:
            raise SchedulingError("timing constraint with no bounds")
        if (
            self.min_offset is not None
            and self.max_offset is not None
            and self.min_offset > self.max_offset
        ):
            raise SchedulingError(
                f"empty timing window [{self.min_offset}, "
                f"{self.max_offset}]"
            )


#: Global switch for the per-problem memoization below.  Always on in
#: production; the perf bench harness disables it to time a faithful
#: replica of the original (recompute-everything) implementation.
_PROBLEM_CACHING = True


def set_problem_caching(enabled: bool) -> bool:
    """Enable/disable :class:`SchedulingProblem` memoization globally.

    Returns the previous setting.  Only the perf benchmark harness
    should ever turn this off — it restores the pre-optimization
    behavior so baseline timings stay honest.
    """
    global _PROBLEM_CACHING
    previous = _PROBLEM_CACHING
    _PROBLEM_CACHING = enabled
    return previous


class SchedulingProblem:
    """One scheduling region: ops + dependences + model + constraints.

    A region is normally one basic block (loop boundaries delimit
    regions, as in the paper's Fig. 2 where dummy nodes mark the loop).
    ``from_blocks`` fuses several straight-line blocks into one region.

    The dependence graph, model and constraints are fixed after
    construction, so derived queries (topological order, per-op delays
    and classes, per-edge offsets, critical path) are memoized.  The
    cached topological order is shared — treat the returned list as
    immutable.
    """

    def __init__(self, ops: list[Operation], model: ResourceModel,
                 constraints: ResourceConstraints | None = None,
                 time_limit: int | None = None,
                 label: str = "region",
                 timing_constraints: list[TimingConstraint] | None = None,
                 ) -> None:
        self.ops = list(ops)
        self.model = model
        self.constraints = constraints or ResourceConstraints.unlimited()
        self.time_limit = time_limit
        self.label = label
        self.graph: nx.DiGraph = dependence_graph(self.ops)
        self._by_id = {op.id: op for op in self.ops}
        self.timing_constraints = list(timing_constraints or [])
        self._topo_cache: list[int] | None = None
        self._critical_cache: int | None = None
        self._path_lengths_cache: dict[int, int] | None = None
        self._delay_cache: dict[int, int] = {}
        self._occupancy_cache: dict[int, int] = {}
        self._class_cache: dict[int, str | None] = {}
        self._offset_cache: dict[tuple[int, int], int] = {}
        self._fold_min_offsets()

    def _fold_min_offsets(self) -> None:
        """Fold non-negative minimum offsets into the dependence graph
        so every constructive scheduler honours them natively."""
        for constraint in self.timing_constraints:
            for op_id in (constraint.from_op, constraint.to_op):
                if op_id not in self._by_id:
                    raise SchedulingError(
                        f"timing constraint names unknown op{op_id}"
                    )
            if constraint.min_offset is None or constraint.min_offset < 0:
                continue
            u, v = constraint.from_op, constraint.to_op
            existing = self.graph.get_edge_data(u, v)
            if existing is None:
                self.graph.add_edge(
                    u, v, reason="timing",
                    min_offset=constraint.min_offset,
                )
            else:
                existing["min_offset"] = max(
                    existing.get("min_offset", 0), constraint.min_offset
                )
            if not nx.is_directed_acyclic_graph(self.graph):
                raise SchedulingError(
                    f"timing constraint op{u}->op{v} creates a cycle"
                )

    # Constructors ------------------------------------------------------

    @classmethod
    def from_block(cls, block: BasicBlock, model: ResourceModel,
                   constraints: ResourceConstraints | None = None,
                   time_limit: int | None = None) -> "SchedulingProblem":
        return cls(list(block.ops), model, constraints, time_limit,
                   label=block.name)

    @classmethod
    def from_blocks(cls, blocks: list[BasicBlock], model: ResourceModel,
                    constraints: ResourceConstraints | None = None,
                    time_limit: int | None = None,
                    label: str = "region") -> "SchedulingProblem":
        ops: list[Operation] = []
        for block in blocks:
            ops.extend(block.ops)
        return cls(ops, model, constraints, time_limit, label=label)

    def with_constraints(
        self, constraints: ResourceConstraints | None
    ) -> "SchedulingProblem":
        """A problem over the same region under different constraints.

        Shares the dependence graph and every structure-derived memo
        with the original (none of them depend on the constraints);
        design-space exploration uses this to rescore one region under
        many budgets without rebuilding it.  The shared graph must be
        treated as immutable.
        """
        clone = object.__new__(SchedulingProblem)
        clone.ops = self.ops
        clone.model = self.model
        clone.constraints = constraints or ResourceConstraints.unlimited()
        clone.time_limit = self.time_limit
        clone.label = self.label
        clone.graph = self.graph
        clone._by_id = self._by_id
        clone.timing_constraints = self.timing_constraints
        if _PROBLEM_CACHING:
            # Warm the scalar memos so every sibling problem inherits
            # them (the dict memos are shared live either way).
            self.topological()
            self.critical_path()
        clone._topo_cache = self._topo_cache
        clone._critical_cache = self._critical_cache
        clone._path_lengths_cache = self._path_lengths_cache
        clone._delay_cache = self._delay_cache
        clone._occupancy_cache = self._occupancy_cache
        clone._class_cache = self._class_cache
        clone._offset_cache = self._offset_cache
        return clone

    # Queries -----------------------------------------------------------

    def op(self, op_id: int) -> Operation:
        return self._by_id[op_id]

    def edge_offset(self, u: int, v: int) -> int:
        """Minimum ``start(v) - start(u)`` for graph edge ``u -> v``:
        the chaining rule, raised by any folded timing minimum."""
        if _PROBLEM_CACHING:
            cached = self._offset_cache.get((u, v))
            if cached is not None:
                return cached
        data = self.graph.edges[u, v]
        if data.get("reason") == "timing":
            base = 0
        else:
            base = dependence_offset(self.delay(u), self.delay(v))
        offset = max(base, data.get("min_offset", 0))
        if _PROBLEM_CACHING:
            self._offset_cache[(u, v)] = offset
        return offset

    def delay(self, op_id: int) -> int:
        if _PROBLEM_CACHING:
            try:
                return self._delay_cache[op_id]
            except KeyError:
                pass
        delay = self.model.delay(self._by_id[op_id])
        if _PROBLEM_CACHING:
            self._delay_cache[op_id] = delay
        return delay

    def occupancy(self, op_id: int) -> int:
        if _PROBLEM_CACHING:
            try:
                return self._occupancy_cache[op_id]
            except KeyError:
                pass
        occupancy = self.model.occupancy(self._by_id[op_id])
        if _PROBLEM_CACHING:
            self._occupancy_cache[op_id] = occupancy
        return occupancy

    def op_class(self, op_id: int) -> str | None:
        if _PROBLEM_CACHING:
            try:
                return self._class_cache[op_id]
            except KeyError:
                pass
        cls = self.model.op_class(self._by_id[op_id])
        if _PROBLEM_CACHING:
            self._class_cache[op_id] = cls
        return cls

    def topological(self) -> list[int]:
        """Deterministic topological order (cached — do not mutate)."""
        if _PROBLEM_CACHING and self._topo_cache is not None:
            return self._topo_cache
        topo = topological_order(self.graph)
        if _PROBLEM_CACHING:
            self._topo_cache = topo
        return topo

    def compute_op_ids(self) -> list[int]:
        """Ids of ops that consume a resource (non-free), sorted."""
        return sorted(
            op.id for op in self.ops if self.op_class(op.id) is not None
        )

    def path_lengths_to_sink(self) -> dict[int, int]:
        """Delay-weighted longest path from each op to any sink
        (cached — the list scheduler's priority and the critical path
        both read it)."""
        if _PROBLEM_CACHING and self._path_lengths_cache is not None:
            return self._path_lengths_cache
        from ..ir.dfg import path_length_to_sink

        lengths = path_length_to_sink(self.graph, self.model.delay,
                                      order=self.topological())
        if _PROBLEM_CACHING:
            self._path_lengths_cache = lengths
        return lengths

    def critical_path(self) -> int:
        if _PROBLEM_CACHING and self._critical_cache is not None:
            return self._critical_cache
        length = max(self.path_lengths_to_sink().values(), default=0)
        if _PROBLEM_CACHING:
            self._critical_cache = length
        return length


# ----------------------------------------------------------------------
# Schedules
# ----------------------------------------------------------------------


class Schedule:
    """An assignment of every operation to a start control step."""

    # Sweeps hold one Schedule per (block, design point); slots keep
    # the per-instance cost to the three fields.  Subclasses that add
    # state (PipelineSchedule) get a __dict__ as usual.
    __slots__ = ("problem", "start", "scheduler")

    def __init__(self, problem: SchedulingProblem,
                 start: Mapping[int, int],
                 scheduler: str = "?") -> None:
        self.problem = problem
        self.start = dict(start)
        self.scheduler = scheduler

    # Time accounting ---------------------------------------------------

    def end(self, op_id: int) -> int:
        """Last control step the op is active in."""
        return self.start[op_id] + max(self.problem.delay(op_id), 1) - 1

    @property
    def length(self) -> int:
        """Number of control steps used (0 for an empty region)."""
        if not self.start:
            return 0
        return max(self.end(op_id) for op_id in self.start) + 1

    def ops_in_step(self, step: int) -> list[int]:
        """Ids of ops active during ``step`` (sorted)."""
        return sorted(
            op_id
            for op_id in self.start
            if self.start[op_id] <= step <= self.end(op_id)
        )

    def steps(self) -> list[list[int]]:
        """Op ids active in each step, index = control step."""
        return [self.ops_in_step(step) for step in range(self.length)]

    def busy_usage(self) -> dict[tuple[int, str], int]:
        """Units held per (step, class): pipelined units are only
        busy for their occupancy window, not their full latency."""
        usage: dict[tuple[int, str], int] = {}
        for op_id in self.start:
            cls = self.problem.op_class(op_id)
            if cls is None:
                continue
            begin = self.start[op_id]
            for k in range(self.problem.occupancy(op_id)):
                usage[(begin + k, cls)] = usage.get(
                    (begin + k, cls), 0
                ) + 1
        return usage

    def resource_usage(self) -> dict[str, int]:
        """Peak simultaneous units used per resource class."""
        peak: dict[str, int] = {}
        for (_, cls), used in self.busy_usage().items():
            peak[cls] = max(peak.get(cls, 0), used)
        return peak

    # Legality ----------------------------------------------------------

    def validate(self) -> None:
        """Raise :class:`SchedulingError` unless the schedule is legal:

        * every op scheduled, at a non-negative step;
        * every dependence respected (with free-op chaining);
        * no step uses more units of a class than the constraints allow;
        * the time limit (when given) is met.
        """
        problem = self.problem
        for op in problem.ops:
            if op.id not in self.start:
                raise SchedulingError(
                    f"[{self.scheduler}] op{op.id} not scheduled"
                )
            if self.start[op.id] < 0:
                raise SchedulingError(
                    f"[{self.scheduler}] op{op.id} at negative step"
                )
        for u, v in problem.graph.edges:
            earliest = self.start[u] + problem.edge_offset(u, v)
            if self.start[v] < earliest:
                raise SchedulingError(
                    f"[{self.scheduler}] dependence violated: "
                    f"op{u}@{self.start[u]} -> op{v}@{self.start[v]} "
                    f"(earliest legal start {earliest})"
                )
        for constraint in problem.timing_constraints:
            distance = (
                self.start[constraint.to_op]
                - self.start[constraint.from_op]
            )
            if (
                constraint.min_offset is not None
                and distance < constraint.min_offset
            ):
                raise SchedulingError(
                    f"[{self.scheduler}] timing minimum violated: "
                    f"op{constraint.from_op}->op{constraint.to_op} "
                    f"distance {distance} < {constraint.min_offset}"
                )
            if (
                constraint.max_offset is not None
                and distance > constraint.max_offset
            ):
                raise SchedulingError(
                    f"[{self.scheduler}] timing maximum violated: "
                    f"op{constraint.from_op}->op{constraint.to_op} "
                    f"distance {distance} > {constraint.max_offset}"
                )
        for (step, cls), used in sorted(self.busy_usage().items()):
            limit = problem.constraints.limit(cls)
            if limit is not None and used > limit:
                raise SchedulingError(
                    f"[{self.scheduler}] step {step} uses {used} "
                    f"{cls!r} units, limit {limit}"
                )
        if problem.time_limit is not None and self.length > problem.time_limit:
            raise SchedulingError(
                f"[{self.scheduler}] schedule length {self.length} exceeds "
                f"time limit {problem.time_limit}"
            )

    def signature(self) -> tuple:
        """Hashable identity of the schedule's decisions (op → start),
        for caching and for stage-level differential comparison.

        Ops are identified by their *position* in the problem's op
        order, not their raw id — value/op ids are process-global
        counters, and signatures must compare equal across processes
        (serial vs parallel exploration) and across repeated compiles
        of the same source.
        """
        return tuple(
            (index, self.start[op.id])
            for index, op in enumerate(self.problem.ops)
            if op.id in self.start
        )

    # Rendering ---------------------------------------------------------

    def table(self) -> str:
        """Human-readable step table (for reports and benches)."""
        lines = [f"schedule[{self.scheduler}] for {self.problem.label}: "
                 f"{self.length} steps"]
        for step, op_ids in enumerate(self.steps()):
            cells = []
            for op_id in op_ids:
                if self.start[op_id] != step:
                    continue  # show multicycle ops at their start only
                op = self.problem.op(op_id)
                cls = self.problem.op_class(op_id)
                tag = f"[{cls}]" if cls else "[free]"
                cells.append(f"op{op_id}:{op.describe()}{tag}")
            lines.append(f"  step {step}: " + "; ".join(cells))
        return "\n".join(lines)

    def __repr__(self) -> str:
        return (
            f"<Schedule {self.scheduler} {self.problem.label}: "
            f"{self.length} steps, {len(self.start)} ops>"
        )


class Scheduler:
    """Base class: construct with a problem, call :meth:`schedule`."""

    name = "scheduler"

    def __init__(self, problem: SchedulingProblem) -> None:
        self.problem = problem

    def schedule(self) -> Schedule:
        raise NotImplementedError


# ----------------------------------------------------------------------
# Whole-procedure accounting
# ----------------------------------------------------------------------


def total_steps(cdfg: CDFG, block_lengths: Mapping[int, int],
                default_trips: int = 1) -> int:
    """Total control steps for one activation of the procedure.

    Sums block schedule lengths over the region tree, multiplying loop
    bodies by their trip counts (``default_trips`` when unknown) —
    the paper's ``3 + 4x5 = 23`` arithmetic.  Branches contribute the
    *longer* arm (worst case).
    """
    from ..ir.cdfg import BlockRegion, IfRegion, Region, SeqRegion

    def steps_of(region: Region) -> int:
        if isinstance(region, BlockRegion):
            return block_lengths.get(region.block.id, 0)
        if isinstance(region, SeqRegion):
            return sum(steps_of(item) for item in region.items)
        if isinstance(region, IfRegion):
            cond = block_lengths.get(region.cond_block.id, 0)
            then_steps = steps_of(region.then_region)
            else_steps = (
                steps_of(region.else_region)
                if region.else_region is not None
                else 0
            )
            return cond + max(then_steps, else_steps)
        if isinstance(region, LoopRegion):
            trips = region.trip_count or default_trips
            body = steps_of(region.body)
            if region.test_in_body:
                return trips * body
            test = block_lengths.get(region.test_block.id, 0)
            return (trips + 1) * test + trips * body
        raise SchedulingError(f"unknown region {region!r}")

    return steps_of(cdfg.body)
