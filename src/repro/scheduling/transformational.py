"""Transformational schedulers: exhaustive search, branch-and-bound,
and the YSC-style heuristic serializer.

§3.1.2 splits scheduling algorithms into transformational and
iterative/constructive.  The transformational family "begins with a
default schedule, usually either maximally serial or maximally
parallel, and applies transformations to it":

* :class:`ExhaustiveScheduler` — Barbacci's EXPL "tried all possible
  combinations of serial and parallel transformations and chose the
  best design found … computationally very expensive".  We enumerate
  every resource-legal start assignment within a horizon and keep the
  best; ``states_visited`` exposes the cost the paper warns about.
* :class:`BranchAndBoundScheduler` — the same search "improved somewhat
  by using branch-and-bound techniques, which cut off the search along
  any path that can be recognized to be suboptimal".  The lower bound
  is the delay-accurate tail (remaining critical path) of each op.
  The result is provably optimal in schedule length.
* :class:`YSCScheduler` — the Yorktown Silicon Compiler heuristic:
  "begins with each operation being done on a separate functional unit
  and all operations being done in the same control step", then adds
  control steps where resources conflict, moving the most mobile
  operations later until the constraints are met.
"""

from __future__ import annotations

from ..errors import SchedulingError
from .base import (
    Schedule,
    Scheduler,
    SchedulingProblem,
)
from .list_scheduler import ListScheduler
from .mobility import unconstrained_asap

_DEFAULT_MAX_OPS = 24


def _tails(problem: SchedulingProblem) -> dict[int, int]:
    """tail(op) = minimal steps from op's start to the schedule's end,
    computed with the exact dependence-offset arithmetic (so it is a
    safe lower bound for branch-and-bound pruning)."""
    tails: dict[int, int] = {}
    for op_id in reversed(problem.topological()):
        delay = problem.delay(op_id)
        best = max(delay, 1)
        for succ in problem.graph.successors(op_id):
            offset = problem.edge_offset(op_id, succ)
            best = max(best, offset + tails[succ])
        tails[op_id] = best
    return tails


class BranchAndBoundScheduler(Scheduler):
    """Optimal resource-constrained scheduler (branch and bound).

    Args:
        problem: the scheduling problem (resource constraints honoured).
        max_ops: safety cap on problem size — the search is exponential
            in the worst case.
        prune: enable lower-bound pruning (True).  With ``prune=False``
            the search enumerates the entire bounded space (EXPL-style
            exhaustive search); the optimum found is identical.

    After :meth:`schedule`, ``states_visited`` holds the number of
    partial assignments explored — the paper's cost argument made
    measurable.
    """

    name = "branch-and-bound"

    def __init__(self, problem: SchedulingProblem,
                 max_ops: int = _DEFAULT_MAX_OPS,
                 prune: bool = True) -> None:
        super().__init__(problem)
        self._prune = prune
        self.states_visited = 0
        if len(problem.compute_op_ids()) > max_ops:
            raise SchedulingError(
                f"{self.name} limited to {max_ops} resource-using ops "
                f"({len(problem.compute_op_ids())} given); use list or "
                f"force-directed scheduling for larger regions"
            )

    def schedule(self) -> Schedule:
        problem = self.problem
        # A good feasible schedule bounds the search space.  The list
        # incumbent may violate *maximum* timing offsets (constructive
        # schedulers only honour minimums); in that case search from a
        # loose horizon instead.
        incumbent = ListScheduler(problem, "path_length").schedule()
        try:
            incumbent.validate()
            best_length = incumbent.length
            best_start = dict(incumbent.start)
        except SchedulingError:
            best_length = incumbent.length + len(problem.ops) + 1
            best_start = {}
        if not problem.ops:
            return Schedule(problem, {}, scheduler=self.name)

        order = problem.topological()
        tails = _tails(problem)
        preds = {
            op_id: list(problem.graph.predecessors(op_id))
            for op_id in order
        }
        occupancy = {
            op_id: problem.occupancy(op_id) for op_id in order
        }
        classes = {op_id: problem.op_class(op_id) for op_id in order}
        limits = {
            cls: problem.constraints.limit(cls)
            for cls in problem.model.classes_used(problem.ops)
        }

        # Timing windows, indexed by the later (topologically) op.
        windows_by_to: dict[int, list] = {}
        for constraint in problem.timing_constraints:
            windows_by_to.setdefault(constraint.to_op, []).append(
                constraint
            )

        start: dict[int, int] = {}
        usage: dict[tuple[int, str], int] = {}
        self.states_visited = 0

        def horizon() -> int:
            """Latest useful start bound given the current best."""
            return best_length - 1

        def dfs(index: int, partial_bound: int) -> None:
            nonlocal best_length, best_start
            self.states_visited += 1
            if index == len(order):
                if partial_bound < best_length:
                    best_length = partial_bound
                    best_start = dict(start)
                return
            op_id = order[index]
            cls = classes[op_id]
            ready = 0
            for pred in preds[op_id]:
                offset = problem.edge_offset(pred, op_id)
                ready = max(ready, start[pred] + offset)
            latest = horizon() if self._prune else best_length - 1
            # Any start beyond best_length - tail cannot improve (or,
            # without pruning, cannot stay within the horizon).
            latest = min(latest, best_length - tails[op_id] - (
                1 if self._prune else 0
            ))
            # Designer timing windows against already-placed partners.
            for constraint in windows_by_to.get(op_id, []):
                if constraint.from_op in start:
                    base = start[constraint.from_op]
                    if constraint.min_offset is not None:
                        ready = max(ready, base + constraint.min_offset)
                    if constraint.max_offset is not None:
                        latest = min(latest, base + constraint.max_offset)
            busy = occupancy[op_id]
            for step in range(ready, latest + 1):
                if cls is not None:
                    limit = limits.get(cls)
                    if limit is not None and any(
                        usage.get((step + k, cls), 0) >= limit
                        for k in range(busy)
                    ):
                        continue
                    for k in range(busy):
                        usage[(step + k, cls)] = (
                            usage.get((step + k, cls), 0) + 1
                        )
                start[op_id] = step
                new_bound = max(partial_bound, step + tails[op_id])
                if not self._prune or new_bound < best_length:
                    dfs(index + 1, new_bound)
                del start[op_id]
                if cls is not None:
                    for k in range(busy):
                        usage[(step + k, cls)] -= 1

        dfs(0, 0)
        if not best_start and problem.ops:
            raise SchedulingError(
                f"[{self.name}] no schedule satisfies the constraints "
                f"of {problem.label}"
            )
        return Schedule(problem, best_start, scheduler=self.name)


class ExhaustiveScheduler(BranchAndBoundScheduler):
    """EXPL-style exhaustive search (branch and bound with pruning
    disabled): visits the whole bounded design space."""

    name = "exhaustive"

    def __init__(self, problem: SchedulingProblem,
                 max_ops: int = 12) -> None:
        super().__init__(problem, max_ops=max_ops, prune=False)


class YSCScheduler(Scheduler):
    """Yorktown Silicon Compiler heuristic: maximally parallel start,
    then serialize over-subscribed steps by postponing mobile ops.

    §3.1.1: "It begins with each operation being done on a separate
    functional unit and all operations being done in the same control
    step … If there is too much hardware or there are too many
    operations chained together in the same control step, more control
    steps are added and the datapath structure is again optimized.
    This process is repeated until the hardware and time constraints
    are met."
    """

    name = "ysc"

    def schedule(self) -> Schedule:
        problem = self.problem
        start = unconstrained_asap(problem)
        delays = {op.id: problem.delay(op.id) for op in problem.ops}
        guard = 0

        while True:
            guard += 1
            if guard > 100 * (len(problem.ops) + 1) ** 2:
                raise SchedulingError("YSC serialization did not converge")
            violation = self._first_violation(start, delays)
            if violation is None:
                return Schedule(problem, start, scheduler=self.name)
            step, cls, op_ids = violation
            # Postpone the op with the most slack below it (largest
            # remaining tail = most critical stays put).
            tails = _tails(problem)
            victim = max(op_ids, key=lambda i: (-tails[i], i))
            start[victim] = step + 1
            self._repair_successors(start, delays, victim)

    # ------------------------------------------------------------------

    def _first_violation(
        self, start: dict[int, int], delays: dict[int, int]
    ) -> tuple[int, str, list[int]] | None:
        problem = self.problem
        if not start:
            return None
        length = max(
            start[op.id] + max(delays[op.id], 1) for op in problem.ops
        )
        for step in range(length):
            counts: dict[str, list[int]] = {}
            for op in problem.ops:
                cls = problem.op_class(op.id)
                if cls is None:
                    continue
                begin = start[op.id]
                busy = max(problem.occupancy(op.id), 1)
                if begin <= step <= begin + busy - 1:
                    counts.setdefault(cls, []).append(op.id)
            for cls, op_ids in sorted(counts.items()):
                limit = problem.constraints.limit(cls)
                if limit is not None and len(op_ids) > limit:
                    movable = [i for i in op_ids if start[i] == step]
                    if movable:
                        return step, cls, movable
        return None

    def _repair_successors(self, start: dict[int, int],
                           delays: dict[int, int], moved: int) -> None:
        """Push successors later so dependences hold again."""
        problem = self.problem
        for op_id in problem.topological():
            earliest = start[op_id]
            for pred in problem.graph.predecessors(op_id):
                offset = problem.edge_offset(pred, op_id)
                earliest = max(earliest, start[pred] + offset)
            start[op_id] = earliest
