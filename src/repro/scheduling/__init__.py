"""Scheduling: assigning operations to control steps (paper §3.1).

Six scheduler families, matching the tutorial's survey:

================  ==========================================  ==========
class             paper reference                              style
================  ==========================================  ==========
ASAPScheduler     CMUDA / MIMOLA / Flamel (§3.1.2, Fig. 3)     constructive, local
ListScheduler     BUD / Elf / ISYN (§3.1.2, Fig. 4)            constructive, priority
ForceDirected…    HAL (§3.1.2, Fig. 5)                         global, time-constrained
FreedomBased…     MAHA (§3.1.2)                                global, allocates FUs too
BranchAndBound…   EXPL + bounding (§3.1.2)                     transformational, optimal
YSCScheduler      Yorktown Silicon Compiler (§3.1.1)           transformational, heuristic
================  ==========================================  ==========
"""

from .alap import ALAPScheduler
from .annealing import SimulatedAnnealingScheduler
from .asap import ASAPScheduler
from .base import (
    DEFAULT_TYPED_DELAYS,
    ResourceConstraints,
    ResourceModel,
    Schedule,
    Scheduler,
    SchedulingProblem,
    TimingConstraint,
    TypedFUModel,
    UniversalFUModel,
    dependence_offset,
    set_problem_caching,
    total_steps,
)
from .force_directed import ForceDirectedScheduler, distribution_graph
from .freedom_based import FreedomBasedScheduler
from .list_scheduler import (
    PRIORITY_FUNCTIONS,
    ListScheduler,
    mobility_priority,
    path_length_priority,
    urgency_priority,
)
from .mobility import TimeFrames, compute_time_frames, unconstrained_asap
from .transformational import (
    BranchAndBoundScheduler,
    ExhaustiveScheduler,
    YSCScheduler,
)

__all__ = [
    "ALAPScheduler",
    "ASAPScheduler",
    "BranchAndBoundScheduler",
    "DEFAULT_TYPED_DELAYS",
    "ExhaustiveScheduler",
    "ForceDirectedScheduler",
    "FreedomBasedScheduler",
    "ListScheduler",
    "PRIORITY_FUNCTIONS",
    "ResourceConstraints",
    "ResourceModel",
    "Schedule",
    "Scheduler",
    "SchedulingProblem",
    "SimulatedAnnealingScheduler",
    "TimeFrames",
    "TimingConstraint",
    "TypedFUModel",
    "UniversalFUModel",
    "YSCScheduler",
    "compute_time_frames",
    "dependence_offset",
    "distribution_graph",
    "mobility_priority",
    "path_length_priority",
    "set_problem_caching",
    "total_steps",
    "unconstrained_asap",
    "urgency_priority",
]
