"""Force-directed scheduling (Paulin & Knight's HAL system).

§3.1.2: "the range of possible control steps for each operation is used
to form a so-called Distribution Graph.  The distribution graph shows,
for each control step, how heavily loaded that step is, given that all
possible schedules are equally likely.  If an operation could be done
in any of k control steps, then 1/k is added to each of those control
steps … Operations are then selected and placed so as to balance the
distribution as much as possible."

This is a *time-constrained* scheduler: it minimizes the number of
functional units needed to meet a deadline.  "The number of functional
units allocated is then the maximum number required in any control
step."
"""

from __future__ import annotations

from ..errors import SchedulingError
from .base import Schedule, Scheduler, SchedulingProblem
from .mobility import TimeFrames, compute_time_frames


def _frames_with_fixed(problem: SchedulingProblem, deadline: int,
                       fixed: dict[int, int]) -> TimeFrames:
    """ASAP/ALAP frames where ``fixed`` ops are pinned to their step."""
    asap: dict[int, int] = {}
    for op_id in problem.topological():
        earliest = 0
        for pred in problem.graph.predecessors(op_id):
            offset = problem.edge_offset(pred, op_id)
            earliest = max(earliest, asap[pred] + offset)
        if op_id in fixed:
            if fixed[op_id] < earliest:
                raise SchedulingError(
                    f"op{op_id} pinned at {fixed[op_id]} before its "
                    f"earliest legal step {earliest}"
                )
            earliest = fixed[op_id]
        asap[op_id] = earliest
    alap: dict[int, int] = {}
    for op_id in reversed(problem.topological()):
        delay = problem.delay(op_id)
        latest = deadline - max(delay, 1)
        for succ in problem.graph.successors(op_id):
            offset = problem.edge_offset(op_id, succ)
            latest = min(latest, alap[succ] - offset)
        if op_id in fixed:
            if fixed[op_id] > latest:
                raise SchedulingError(
                    f"op{op_id} pinned at {fixed[op_id]} after its "
                    f"latest legal step {latest}"
                )
            latest = fixed[op_id]
        if latest < asap[op_id]:
            raise SchedulingError(
                f"op{op_id} has empty time frame under deadline {deadline}"
            )
        alap[op_id] = latest
    return TimeFrames(asap=asap, alap=alap, deadline=deadline)


def _occupancy_probability(frames: TimeFrames, delay: int, op_id: int,
                           step: int) -> float:
    """Probability that the op is active in ``step`` when every start in
    its frame is equally likely (multicycle ops occupy delay steps)."""
    first = frames.asap[op_id]
    last = frames.alap[op_id]
    width = last - first + 1
    span = max(delay, 1)
    active_starts = sum(
        1 for t in range(first, last + 1) if t <= step <= t + span - 1
    )
    return active_starts / width


def distribution_graph(problem: SchedulingProblem, frames: TimeFrames,
                       resource_class: str) -> list[float]:
    """The HAL distribution graph for one resource class (Fig. 5)."""
    graph = [0.0] * frames.deadline
    for op in problem.ops:
        if problem.op_class(op.id) != resource_class:
            continue
        delay = problem.delay(op.id)
        for step in range(frames.deadline):
            graph[step] += _occupancy_probability(
                frames, delay, op.id, step
            )
    return graph


class ForceDirectedScheduler(Scheduler):
    """Time-constrained scheduler balancing distribution graphs.

    Args:
        problem: the scheduling problem.
        deadline: available control steps; defaults to the problem's
            time limit, else the critical path length.
    """

    name = "force-directed"

    def __init__(self, problem: SchedulingProblem,
                 deadline: int | None = None) -> None:
        super().__init__(problem)
        if deadline is None:
            deadline = problem.time_limit
        if deadline is None:
            base = compute_time_frames(problem)
            deadline = base.deadline
        self.deadline = deadline

    def schedule(self) -> Schedule:
        problem = self.problem
        fixed: dict[int, int] = {}
        pending = set(problem.compute_op_ids())

        while pending:
            frames = _frames_with_fixed(problem, self.deadline, fixed)
            graphs = {
                cls: distribution_graph(problem, frames, cls)
                for cls in problem.model.classes_used(problem.ops)
            }
            best: tuple[float, int, int] | None = None
            for op_id in sorted(pending):
                cls = problem.op_class(op_id)
                assert cls is not None
                for step in frames.frame(op_id):
                    force = self._total_force(
                        problem, frames, graphs, op_id, step
                    )
                    key = (force, op_id, step)
                    if best is None or key < best:
                        best = key
            assert best is not None
            _, op_id, step = best
            fixed[op_id] = step
            pending.discard(op_id)

        # Free ops take their earliest start under the pinned schedule.
        frames = _frames_with_fixed(problem, self.deadline, fixed)
        start = dict(fixed)
        for op in problem.ops:
            if op.id not in start:
                start[op.id] = frames.asap[op.id]
        return Schedule(problem, start, scheduler=self.name)

    # ------------------------------------------------------------------

    def _total_force(self, problem: SchedulingProblem, frames: TimeFrames,
                     graphs: dict[str, list[float]], op_id: int,
                     step: int) -> float:
        """Self force of pinning ``op_id`` at ``step`` plus the implied
        forces on its direct predecessors and successors."""
        force = self._self_force(problem, frames, graphs, op_id,
                                 step, step)
        delay = problem.delay(op_id)
        for pred in problem.graph.predecessors(op_id):
            offset = problem.edge_offset(pred, op_id)
            new_last = min(frames.alap[pred], step - offset)
            if new_last < frames.alap[pred]:
                force += self._self_force(
                    problem, frames, graphs, pred,
                    frames.asap[pred], new_last,
                )
        for succ in problem.graph.successors(op_id):
            offset = problem.edge_offset(op_id, succ)
            new_first = max(frames.asap[succ], step + offset)
            if new_first > frames.asap[succ]:
                force += self._self_force(
                    problem, frames, graphs, succ,
                    new_first, frames.alap[succ],
                )
        return force

    def _self_force(self, problem: SchedulingProblem, frames: TimeFrames,
                    graphs: dict[str, list[float]], op_id: int,
                    new_first: int, new_last: int) -> float:
        """Change in (DG-weighted) expected load if the op's frame
        shrinks from its current range to ``[new_first, new_last]``."""
        cls = problem.op_class(op_id)
        if cls is None:
            return 0.0
        graph = graphs[cls]
        delay = problem.delay(op_id)
        span = max(delay, 1)
        old_first, old_last = frames.asap[op_id], frames.alap[op_id]

        def probabilities(first: int, last: int) -> dict[int, float]:
            width = last - first + 1
            probs: dict[int, float] = {}
            for t in range(first, last + 1):
                for s in range(t, t + span):
                    probs[s] = probs.get(s, 0.0) + 1.0 / width
            return probs

        old_probs = probabilities(old_first, old_last)
        new_probs = probabilities(new_first, new_last)
        force = 0.0
        for s in set(old_probs) | set(new_probs):
            if s < len(graph):
                force += graph[s] * (
                    new_probs.get(s, 0.0) - old_probs.get(s, 0.0)
                )
        return force
