"""Force-directed scheduling (Paulin & Knight's HAL system).

§3.1.2: "the range of possible control steps for each operation is used
to form a so-called Distribution Graph.  The distribution graph shows,
for each control step, how heavily loaded that step is, given that all
possible schedules are equally likely.  If an operation could be done
in any of k control steps, then 1/k is added to each of those control
steps … Operations are then selected and placed so as to balance the
distribution as much as possible."

This is a *time-constrained* scheduler: it minimizes the number of
functional units needed to meet a deadline.  "The number of functional
units allocated is then the maximum number required in any control
step."

Two execution strategies produce the identical schedule:

* the **incremental** default — after each placement, time frames are
  updated by propagating only from the newly pinned operation, and the
  distribution graphs are delta-updated from the occupancy rows of the
  operations whose frames actually moved;
* the **reference** path (``_reference=True``) — the textbook loop
  that recomputes every frame and rebuilds every distribution graph
  from scratch after each placement.  It exists as the oracle for the
  incremental path's regression tests.

Exactness is what makes "identical" provable: distribution-graph
entries are kept as integers scaled by ``lcm(1..deadline)`` (each op
with a width-``k`` frame contributes ``scale/k`` per covered step), so
graph contents never depend on the order updates were applied in.
Both paths convert to floats the same way before force evaluation.
"""

from __future__ import annotations

import heapq
from math import lcm

from ..errors import SchedulingError
from ..obs import metrics
from .base import Schedule, Scheduler, SchedulingProblem
from .mobility import TimeFrames, compute_time_frames


def _frames_with_fixed(problem: SchedulingProblem, deadline: int,
                       fixed: dict[int, int]) -> TimeFrames:
    """ASAP/ALAP frames where ``fixed`` ops are pinned to their step."""
    asap: dict[int, int] = {}
    for op_id in problem.topological():
        earliest = 0
        for pred in problem.graph.predecessors(op_id):
            offset = problem.edge_offset(pred, op_id)
            earliest = max(earliest, asap[pred] + offset)
        if op_id in fixed:
            if fixed[op_id] < earliest:
                raise SchedulingError(
                    f"op{op_id} pinned at {fixed[op_id]} before its "
                    f"earliest legal step {earliest}"
                )
            earliest = fixed[op_id]
        asap[op_id] = earliest
    alap: dict[int, int] = {}
    for op_id in reversed(problem.topological()):
        delay = problem.delay(op_id)
        latest = deadline - max(delay, 1)
        for succ in problem.graph.successors(op_id):
            offset = problem.edge_offset(op_id, succ)
            latest = min(latest, alap[succ] - offset)
        if op_id in fixed:
            if fixed[op_id] > latest:
                raise SchedulingError(
                    f"op{op_id} pinned at {fixed[op_id]} after its "
                    f"latest legal step {latest}"
                )
            latest = fixed[op_id]
        if latest < asap[op_id]:
            raise SchedulingError(
                f"op{op_id} has empty time frame under deadline {deadline}"
            )
        alap[op_id] = latest
    return TimeFrames(asap=asap, alap=alap, deadline=deadline)


def _occupancy_probability(frames: TimeFrames, delay: int, op_id: int,
                           step: int) -> float:
    """Probability that the op is active in ``step`` when every start in
    its frame is equally likely (multicycle ops occupy delay steps)."""
    first = frames.asap[op_id]
    last = frames.alap[op_id]
    width = last - first + 1
    span = max(delay, 1)
    active_starts = sum(
        1 for t in range(first, last + 1) if t <= step <= t + span - 1
    )
    return active_starts / width


def distribution_graph(problem: SchedulingProblem, frames: TimeFrames,
                       resource_class: str) -> list[float]:
    """The HAL distribution graph for one resource class (Fig. 5)."""
    graph = [0.0] * frames.deadline
    for op in problem.ops:
        if problem.op_class(op.id) != resource_class:
            continue
        delay = problem.delay(op.id)
        for step in range(frames.deadline):
            graph[step] += _occupancy_probability(
                frames, delay, op.id, step
            )
    return graph


# ----------------------------------------------------------------------
# Exact distribution-graph state
# ----------------------------------------------------------------------


def _scaled_row(first: int, last: int, span: int, deadline: int,
                scale: int) -> dict[int, int]:
    """One op's occupancy row, integer-scaled: ``row[step]`` is
    ``active_starts(step) * scale / width`` for frame ``[first, last]``.
    """
    unit = scale // (last - first + 1)
    row: dict[int, int] = {}
    for t in range(first, last + 1):
        for s in range(t, min(t + span, deadline)):
            row[s] = row.get(s, 0) + unit
    return row


class _DistributionState:
    """Per-class distribution graphs as exact scaled integers.

    ``graphs[cls][step]`` holds the class's expected load times
    ``scale``; :meth:`refresh_op` delta-updates a single op's
    contribution after its time frame moved.  Because the entries are
    integers, delta-updated graphs equal rebuilt-from-scratch graphs
    bit for bit — the property the incremental/reference regression
    tests rely on.
    """

    def __init__(self, problem: SchedulingProblem, deadline: int,
                 frames: TimeFrames) -> None:
        self.problem = problem
        self.deadline = deadline
        self.frames = frames
        self.scale = lcm(*range(1, deadline + 1)) if deadline >= 1 else 1
        self.graphs: dict[str, list[int]] = {
            cls: [0] * deadline
            for cls in problem.model.classes_used(problem.ops)
        }
        self._rows: dict[int, dict[int, int]] = {}
        for op in problem.ops:
            cls = problem.op_class(op.id)
            if cls is None:
                continue
            row = self._row_of(op.id)
            self._rows[op.id] = row
            graph = self.graphs[cls]
            for step, load in row.items():
                graph[step] += load

    def _row_of(self, op_id: int) -> dict[int, int]:
        return _scaled_row(
            self.frames.asap[op_id], self.frames.alap[op_id],
            max(self.problem.delay(op_id), 1), self.deadline, self.scale,
        )

    def refresh_op(self, op_id: int) -> None:
        """Replace one op's contribution after its frame changed."""
        old_row = self._rows.get(op_id)
        if old_row is None:  # free op: contributes nothing
            return
        cls = self.problem.op_class(op_id)
        assert cls is not None
        new_row = self._row_of(op_id)
        graph = self.graphs[cls]
        for step, load in old_row.items():
            graph[step] -= load
        for step, load in new_row.items():
            graph[step] += load
        self._rows[op_id] = new_row

    def float_graphs(self) -> dict[str, list[float]]:
        """The graphs in HAL's 1/k units, for force evaluation."""
        scale = self.scale
        return {
            cls: [load / scale for load in graph]
            for cls, graph in self.graphs.items()
        }


# ----------------------------------------------------------------------
# Incremental time frames
# ----------------------------------------------------------------------


class _IncrementalFrames:
    """Time frames maintained under a growing set of pinned ops.

    Pinning an op can only *shrink* frames (ASAPs rise downstream,
    ALAPs fall upstream), so after each pin it suffices to propagate
    outward from the pinned op along dependence edges, visiting nodes
    in (reverse) topological order and stopping where nothing moved.
    The result is exactly ``_frames_with_fixed(problem, deadline,
    fixed)`` at every iteration.
    """

    def __init__(self, problem: SchedulingProblem, deadline: int) -> None:
        self.problem = problem
        self.deadline = deadline
        self.frames = _frames_with_fixed(problem, deadline, {})
        self.fixed: dict[int, int] = {}
        self._pos = {
            op_id: pos for pos, op_id in enumerate(problem.topological())
        }

    def pin(self, op_id: int, step: int) -> set[int]:
        """Pin ``op_id`` to ``step``; return ids whose frame changed."""
        frames = self.frames
        if step < frames.asap[op_id] or step > frames.alap[op_id]:
            raise SchedulingError(
                f"op{op_id} pinned at {step} outside its time frame "
                f"[{frames.asap[op_id]}, {frames.alap[op_id]}]"
            )
        self.fixed[op_id] = step
        changed: set[int] = set()
        if frames.asap[op_id] != step:
            frames.asap[op_id] = step
            changed.add(op_id)
            self._propagate_asap(op_id, changed)
        if frames.alap[op_id] != step:
            frames.alap[op_id] = step
            changed.add(op_id)
            self._propagate_alap(op_id, changed)
        return changed

    def _propagate_asap(self, source: int, changed: set[int]) -> None:
        graph = self.problem.graph
        frames = self.frames
        heap: list[tuple[int, int]] = []
        queued: set[int] = set()
        for succ in graph.successors(source):
            heapq.heappush(heap, (self._pos[succ], succ))
            queued.add(succ)
        while heap:
            _, node = heapq.heappop(heap)
            queued.discard(node)
            earliest = 0
            for pred in graph.predecessors(node):
                offset = self.problem.edge_offset(pred, node)
                earliest = max(earliest, frames.asap[pred] + offset)
            if node in self.fixed:
                if earliest > self.fixed[node]:
                    raise SchedulingError(
                        f"op{node} pinned at {self.fixed[node]} before "
                        f"its earliest legal step {earliest}"
                    )
                continue
            if earliest > frames.asap[node]:
                frames.asap[node] = earliest
                changed.add(node)
                if frames.alap[node] < earliest:
                    raise SchedulingError(
                        f"op{node} has empty time frame under deadline "
                        f"{self.deadline}"
                    )
                for succ in graph.successors(node):
                    if succ not in queued:
                        heapq.heappush(heap, (self._pos[succ], succ))
                        queued.add(succ)

    def _propagate_alap(self, source: int, changed: set[int]) -> None:
        graph = self.problem.graph
        frames = self.frames
        heap: list[tuple[int, int]] = []
        queued: set[int] = set()
        for pred in graph.predecessors(source):
            heapq.heappush(heap, (-self._pos[pred], pred))
            queued.add(pred)
        while heap:
            _, node = heapq.heappop(heap)
            queued.discard(node)
            latest = self.deadline - max(self.problem.delay(node), 1)
            for succ in graph.successors(node):
                offset = self.problem.edge_offset(node, succ)
                latest = min(latest, frames.alap[succ] - offset)
            if node in self.fixed:
                if latest < self.fixed[node]:
                    raise SchedulingError(
                        f"op{node} pinned at {self.fixed[node]} after "
                        f"its latest legal step {latest}"
                    )
                continue
            if latest < frames.alap[node]:
                frames.alap[node] = latest
                changed.add(node)
                if latest < frames.asap[node]:
                    raise SchedulingError(
                        f"op{node} has empty time frame under deadline "
                        f"{self.deadline}"
                    )
                for pred in graph.predecessors(node):
                    if pred not in queued:
                        heapq.heappush(heap, (-self._pos[pred], pred))
                        queued.add(pred)


# ----------------------------------------------------------------------
# The scheduler
# ----------------------------------------------------------------------


class ForceDirectedScheduler(Scheduler):
    """Time-constrained scheduler balancing distribution graphs.

    Force-directed scheduling minimizes units under a deadline; it
    balances load but never enforces per-step caps, so under explicit
    resource constraints the balanced schedule can oversubscribe a
    class (two same-class ops whose frames collapse onto one step).
    When that happens the schedule is legalized the way Paulin &
    Knight handle the resource-constrained case — force-directed
    *list* scheduling: the balanced start steps become the list
    priorities (earlier balanced start runs first) and ops re-place
    greedily under the caps, which may lengthen the schedule.  A
    problem ``time_limit`` is still enforced by ``validate()``:
    exceeding it after legalization is a real infeasibility.

    Args:
        problem: the scheduling problem.
        deadline: available control steps; defaults to the problem's
            time limit, else the critical path length.
        _reference: run the full-recompute textbook loop instead of
            the incremental one (same schedule, used as the oracle in
            regression tests and as the perf-bench baseline).
    """

    name = "force-directed"

    def __init__(self, problem: SchedulingProblem,
                 deadline: int | None = None,
                 _reference: bool = False) -> None:
        super().__init__(problem)
        if deadline is None:
            deadline = problem.time_limit
        if deadline is None:
            base = compute_time_frames(problem)
            deadline = base.deadline
        self.deadline = deadline
        self._reference = _reference

    def schedule(self) -> Schedule:
        result = (self._schedule_reference(self.deadline)
                  if self._reference
                  else self._schedule_incremental(self.deadline))
        if self._oversubscribed(result):
            result = self._legalize(result)
            metrics().counter("scheduler.fds.legalized").inc()
        return result

    def _oversubscribed(self, schedule: Schedule) -> bool:
        """True when a step uses more units than the constraints allow."""
        constraints = self.problem.constraints
        return any(
            (limit := constraints.limit(cls)) is not None
            and used > limit
            for (_, cls), used in schedule.busy_usage().items()
        )

    def _legalize(self, balanced: Schedule) -> Schedule:
        """Force-directed list scheduling over the balanced result.

        The balanced schedule's global ordering decisions survive as
        priorities; the list pass guarantees the caps.
        """
        from .list_scheduler import ListScheduler

        order = dict(balanced.start)

        def balanced_priority(problem: SchedulingProblem):
            return {op_id: -step for op_id, step in order.items()}

        repaired = ListScheduler(
            self.problem, priority=balanced_priority
        ).schedule()
        return Schedule(self.problem, dict(repaired.start),
                        scheduler=self.name)

    def _schedule_incremental(self, deadline: int) -> Schedule:
        problem = self.problem
        incremental = _IncrementalFrames(problem, deadline)
        state = _DistributionState(problem, deadline,
                                  incremental.frames)
        pending = set(problem.compute_op_ids())
        while pending:
            _, op_id, step = self._select(
                incremental.frames, state.float_graphs(), pending
            )
            for moved in incremental.pin(op_id, step):
                state.refresh_op(moved)
            pending.discard(op_id)
        return self._finish(incremental.fixed, incremental.frames)

    def _schedule_reference(self, deadline: int) -> Schedule:
        problem = self.problem
        fixed: dict[int, int] = {}
        pending = set(problem.compute_op_ids())
        while pending:
            frames = _frames_with_fixed(problem, deadline, fixed)
            state = _DistributionState(problem, deadline, frames)
            _, op_id, step = self._select(
                frames, state.float_graphs(), pending
            )
            fixed[op_id] = step
            pending.discard(op_id)
        frames = _frames_with_fixed(problem, deadline, fixed)
        return self._finish(fixed, frames)

    def _select(self, frames: TimeFrames,
                graphs: dict[str, list[float]],
                pending: set[int]) -> tuple[float, int, int]:
        """The placement minimizing total force, ties to the smallest
        (op id, step)."""
        problem = self.problem
        best: tuple[float, int, int] | None = None
        # Frames are fixed for the duration of one selection sweep, so
        # the probability row of any (op, frame) pair is evaluated once
        # and shared across all candidate placements that touch it.
        probs_memo: dict[tuple[int, int, int], dict[int, float]] = {}
        for op_id in sorted(pending):
            for step in frames.frame(op_id):
                force = self._total_force(
                    problem, frames, graphs, op_id, step, probs_memo
                )
                key = (force, op_id, step)
                if best is None or key < best:
                    best = key
        assert best is not None
        return best

    def _finish(self, fixed: dict[int, int],
                frames: TimeFrames) -> Schedule:
        # Free ops take their earliest start under the pinned schedule.
        start = dict(fixed)
        for op in self.problem.ops:
            if op.id not in start:
                start[op.id] = frames.asap[op.id]
        return Schedule(self.problem, start, scheduler=self.name)

    # ------------------------------------------------------------------

    def _total_force(self, problem: SchedulingProblem, frames: TimeFrames,
                     graphs: dict[str, list[float]], op_id: int,
                     step: int,
                     probs_memo: dict[tuple[int, int, int],
                                      dict[int, float]] | None = None,
                     ) -> float:
        """Self force of pinning ``op_id`` at ``step`` plus the implied
        forces on its direct predecessors and successors."""
        force = self._self_force(problem, frames, graphs, op_id,
                                 step, step, probs_memo)
        for pred in problem.graph.predecessors(op_id):
            offset = problem.edge_offset(pred, op_id)
            new_last = min(frames.alap[pred], step - offset)
            if new_last < frames.alap[pred]:
                force += self._self_force(
                    problem, frames, graphs, pred,
                    frames.asap[pred], new_last, probs_memo,
                )
        for succ in problem.graph.successors(op_id):
            offset = problem.edge_offset(op_id, succ)
            new_first = max(frames.asap[succ], step + offset)
            if new_first > frames.asap[succ]:
                force += self._self_force(
                    problem, frames, graphs, succ,
                    new_first, frames.alap[succ], probs_memo,
                )
        return force

    def _self_force(self, problem: SchedulingProblem, frames: TimeFrames,
                    graphs: dict[str, list[float]], op_id: int,
                    new_first: int, new_last: int,
                    probs_memo: dict[tuple[int, int, int],
                                     dict[int, float]] | None = None,
                    ) -> float:
        """Change in (DG-weighted) expected load if the op's frame
        shrinks from its current range to ``[new_first, new_last]``."""
        cls = problem.op_class(op_id)
        if cls is None:
            return 0.0
        graph = graphs[cls]
        delay = problem.delay(op_id)
        span = max(delay, 1)
        old_first, old_last = frames.asap[op_id], frames.alap[op_id]

        def probabilities(first: int, last: int) -> dict[int, float]:
            key = (op_id, first, last)
            if probs_memo is not None:
                cached = probs_memo.get(key)
                if cached is not None:
                    return cached
            width = last - first + 1
            probs: dict[int, float] = {}
            for t in range(first, last + 1):
                for s in range(t, t + span):
                    probs[s] = probs.get(s, 0.0) + 1.0 / width
            if probs_memo is not None:
                probs_memo[key] = probs
            return probs

        old_probs = probabilities(old_first, old_last)
        new_probs = probabilities(new_first, new_last)
        force = 0.0
        for s in set(old_probs) | set(new_probs):
            if s < len(graph):
                force += graph[s] * (
                    new_probs.get(s, 0.0) - old_probs.get(s, 0.0)
                )
        return force
