"""As-soon-as-possible scheduling.

The paper's §3.1.2: "The simplest type of scheduling … is local both in
the selection of the operation to be scheduled and in where it is
placed."  Operations are taken in topological order and each is put in
the earliest control step permitted by its dependences and by the
resource limits.  With unlimited resources this yields the dataflow
ASAP levels; with limits, the fixed selection order can block critical
operations behind non-critical ones — the failure mode of Fig. 3 that
list scheduling (Fig. 4) fixes.

This is the scheduling style of the CMUDA, MIMOLA and Flamel systems.
"""

from __future__ import annotations

from .base import Schedule, Scheduler


class ASAPScheduler(Scheduler):
    """Topological-order earliest-fit scheduler."""

    name = "asap"

    def schedule(self) -> Schedule:
        problem = self.problem
        start: dict[int, int] = {}
        usage: dict[tuple[int, str], int] = {}

        for op_id in self._selection_order():
            earliest = 0
            for pred in problem.graph.predecessors(op_id):
                offset = problem.edge_offset(pred, op_id)
                earliest = max(earliest, start[pred] + offset)
            step = self._earliest_fit(op_id, earliest, usage)
            start[op_id] = step
            self._occupy(op_id, step, usage)

        return Schedule(problem, start, scheduler=self.name)

    # ------------------------------------------------------------------

    def _selection_order(self) -> list[int]:
        """Topological order with ties broken by op id — the "fixed
        order, usually as they occur in the data flow graph" selection
        rule.  Subclasses (list scheduling) override priority."""
        return self.problem.topological()

    def _earliest_fit(self, op_id: int, earliest: int,
                      usage: dict[tuple[int, str], int]) -> int:
        problem = self.problem
        cls = problem.op_class(op_id)
        if cls is None:
            return earliest
        limit = problem.constraints.limit(cls)
        occupancy = problem.occupancy(op_id)
        step = earliest
        while True:
            if limit is None or all(
                usage.get((step + k, cls), 0) < limit
                for k in range(occupancy)
            ):
                return step
            step += 1

    def _occupy(self, op_id: int, step: int,
                usage: dict[tuple[int, str], int]) -> None:
        problem = self.problem
        cls = problem.op_class(op_id)
        if cls is None:
            return
        for k in range(problem.occupancy(op_id)):
            usage[(step + k, cls)] = usage.get((step + k, cls), 0) + 1
