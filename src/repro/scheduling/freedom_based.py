"""Freedom-based scheduling (Parker's MAHA system).

§3.1.2: "In freedom-based scheduling, the operations on the critical
path are scheduled first and assigned to functional units.  Then the
other operations are scheduled and assigned one at a time.  At each
step the unscheduled operation with the least freedom … is chosen, so
that operations that might present more difficult scheduling problems
are taken care of first, before they become blocked."

MAHA performs scheduling and FU allocation *simultaneously* (§3.1.1:
"adding functional units only when it cannot share existing ones"), so
this scheduler also produces an operation→FU-instance assignment in
``fu_assignment`` — usable directly as a datapath allocation seed.
"""

from __future__ import annotations

from ..errors import SchedulingError
from .base import Schedule, Scheduler, SchedulingProblem
from .force_directed import _frames_with_fixed
from .mobility import compute_time_frames


class FreedomBasedScheduler(Scheduler):
    """Least-freedom-first scheduler with on-the-fly FU allocation.

    Args:
        problem: the scheduling problem.  Resource constraints, when
            present, cap how many FU instances may be created per
            class; otherwise units are added as needed.
        deadline: control steps available (default: time limit, else
            critical path; the deadline stretches automatically when
            resource caps make it infeasible).
    """

    name = "freedom-based"

    def __init__(self, problem: SchedulingProblem,
                 deadline: int | None = None) -> None:
        super().__init__(problem)
        if deadline is None:
            deadline = problem.time_limit
        if deadline is None:
            deadline = compute_time_frames(problem).deadline
        self.deadline = deadline
        #: op id -> (resource class, unit index); filled by schedule().
        self.fu_assignment: dict[int, tuple[str, int]] = {}

    def schedule(self) -> Schedule:
        return self._schedule_with_deadline(self.deadline)

    # ------------------------------------------------------------------

    def _schedule_with_deadline(self, deadline: int) -> Schedule:
        problem = self.problem
        fixed: dict[int, int] = {}
        # unit busy steps: (cls, index) -> set of steps occupied
        units: dict[tuple[str, int], set[int]] = {}
        unit_count: dict[str, int] = {}
        assignment: dict[int, tuple[str, int]] = {}
        pending = set(problem.compute_op_ids())
        insertions = 0
        insertion_budget = sum(
            max(problem.delay(op_id), 1)
            for op_id in problem.compute_op_ids()
        ) + len(problem.ops) + 8  # delay >= occupancy, so this covers

        while pending:
            frames = _frames_with_fixed(problem, deadline, fixed)
            # Least freedom first; critical-path ops (freedom 0) lead.
            op_id = min(
                pending,
                key=lambda i: (frames.mobility(i), frames.asap[i], i),
            )
            cls = problem.op_class(op_id)
            assert cls is not None
            busy = problem.occupancy(op_id)
            placed = self._try_place(
                op_id, cls, busy, frames, fixed, units, unit_count,
                assignment,
            )
            if not placed:
                # MAHA's escape hatch: "additional control steps are
                # added" — insert a step at the op's earliest legal
                # position, shifting every later fixed op down by one.
                insertions += 1
                if insertions > insertion_budget:
                    raise SchedulingError(
                        f"op{op_id} cannot be placed even after "
                        f"{insertions - 1} step insertions"
                    )
                insert_at = frames.asap[op_id]
                # Shift every fixed op still active at/after the
                # insertion point, keeping multicycle spans intact.
                for other, step in list(fixed.items()):
                    end = step + max(problem.delay(other), 1) - 1
                    if end >= insert_at:
                        fixed[other] = step + 1
                units.clear()
                for other, (other_cls, index) in assignment.items():
                    busy_set = units.setdefault(
                        (other_cls, index), set()
                    )
                    busy_set.update(
                        range(
                            fixed[other],
                            fixed[other] + problem.occupancy(other),
                        )
                    )
                deadline += 1
                continue
            pending.discard(op_id)

        frames = _frames_with_fixed(problem, deadline, fixed)
        start = dict(fixed)
        for op in problem.ops:
            if op.id not in start:
                start[op.id] = frames.asap[op.id]
        self.fu_assignment = assignment
        return Schedule(problem, start, scheduler=self.name)

    def _try_place(self, op_id, cls, occupancy, frames, fixed, units,
                   unit_count, assignment) -> bool:
        problem = self.problem
        for step in frames.frame(op_id):
            needed = set(range(step, step + occupancy))
            # Prefer sharing an existing unit of this class.
            for index in range(unit_count.get(cls, 0)):
                busy_set = units[(cls, index)]
                if not needed & busy_set:
                    busy_set |= needed
                    assignment[op_id] = (cls, index)
                    fixed[op_id] = step
                    return True
            # Otherwise open a new unit, if the cap allows.
            limit = problem.constraints.limit(cls)
            if limit is None or unit_count.get(cls, 0) < limit:
                index = unit_count.get(cls, 0)
                unit_count[cls] = index + 1
                units[(cls, index)] = set(needed)
                assignment[op_id] = (cls, index)
                fixed[op_id] = step
                return True
        return False
