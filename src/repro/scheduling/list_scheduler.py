"""List scheduling with pluggable priority functions.

§3.1.2: "List scheduling overcomes [ASAP's] problem by using a more
global criterion for selecting the next operation … For each control
step to be scheduled, the operations that are available to be scheduled
into that control step … are kept in a list, ordered by some priority
function."  Studies cited by the paper found it "works nearly as well
as branch-and-bound scheduling in microcode optimization".

Three priority functions from the paper's survey are provided:

* :func:`path_length_priority` — "the length of the path from the
  operation to the end of the block" (the BUD system; also the classic
  critical-path list scheduling of Fig. 4);
* :func:`urgency_priority` — the op's latest legal start (ALAP step):
  smaller = more urgent.  This is the Elf/ISYN "urgency … length of the
  shortest path from that operation to the nearest local constraint",
  with the block deadline as the constraint;
* :func:`mobility_priority` — ALAP minus ASAP: ops with the least
  freedom first.
"""

from __future__ import annotations

from typing import Callable

from ..obs import metrics
from .base import Schedule, Scheduler, SchedulingProblem
from .mobility import compute_time_frames

PriorityFn = Callable[[SchedulingProblem], dict[int, float]]
"""Maps each op id to a priority; *higher runs first*."""


def path_length_priority(problem: SchedulingProblem) -> dict[int, float]:
    """Longest delay-weighted path from the op to any sink (BUD)."""
    return dict(problem.path_lengths_to_sink())


def urgency_priority(problem: SchedulingProblem) -> dict[int, float]:
    """Negated ALAP start: ops that must start sooner come first."""
    frames = compute_time_frames(problem)
    return {op_id: -frames.alap[op_id] for op_id in frames.alap}


def mobility_priority(problem: SchedulingProblem) -> dict[int, float]:
    """Negated mobility: least-slack ops first (zero slack = critical)."""
    frames = compute_time_frames(problem)
    return {op_id: -frames.mobility(op_id) for op_id in frames.asap}


PRIORITY_FUNCTIONS: dict[str, PriorityFn] = {
    "path_length": path_length_priority,
    "urgency": urgency_priority,
    "mobility": mobility_priority,
}


class ListScheduler(Scheduler):
    """Resource-constrained list scheduler.

    Args:
        problem: the scheduling problem (constraints are honoured).
        priority: a :data:`PriorityFn` or the name of a registered one.
    """

    name = "list"

    def __init__(self, problem: SchedulingProblem,
                 priority: PriorityFn | str = "path_length") -> None:
        super().__init__(problem)
        if isinstance(priority, str):
            self.name = f"list/{priority}"
            priority = PRIORITY_FUNCTIONS[priority]
        self._priority_fn = priority

    def schedule(self) -> Schedule:
        problem = self.problem
        priority = self._priority_fn(problem)
        start: dict[int, int] = {}
        usage: dict[tuple[int, str], int] = {}
        unscheduled = {op.id for op in problem.ops}
        unscheduled_preds = {
            op_id: set(problem.graph.predecessors(op_id))
            for op_id in unscheduled
        }

        step = 0
        guard = 0
        guard_limit = 10 * len(problem.ops) + problem.critical_path() + 100
        while unscheduled:
            guard += 1
            if guard > guard_limit:
                raise AssertionError("list scheduler failed to converge")
            progressed = True
            while progressed:
                progressed = False
                candidates = [
                    op_id
                    for op_id in unscheduled
                    if not unscheduled_preds[op_id]
                    and self._ready_step(op_id, start) <= step
                ]
                candidates.sort(key=lambda op_id: (-priority[op_id], op_id))
                for op_id in candidates:
                    placed_at = self._try_place(op_id, step, start, usage)
                    if placed_at is None:
                        # Resource pressure deferred a ready op — a
                        # branch only constrained problems take;
                        # counted so coverage fingerprints see it.
                        metrics().counter("scheduler.list.deferred").inc()
                        continue
                    unscheduled.discard(op_id)
                    for succ in problem.graph.successors(op_id):
                        if succ in unscheduled_preds:
                            unscheduled_preds[succ].discard(op_id)
                    progressed = True
            step += 1

        return Schedule(problem, start, scheduler=self.name)

    # ------------------------------------------------------------------

    def _ready_step(self, op_id: int, start: dict[int, int]) -> int:
        problem = self.problem
        ready = 0
        for pred in problem.graph.predecessors(op_id):
            offset = problem.edge_offset(pred, op_id)
            ready = max(ready, start[pred] + offset)
        return ready

    def _try_place(self, op_id: int, step: int, start: dict[int, int],
                   usage: dict[tuple[int, str], int]) -> int | None:
        """Place ``op_id`` in ``step`` if resources allow; free ops are
        placed at their ready step (chaining)."""
        problem = self.problem
        cls = problem.op_class(op_id)
        if cls is None:
            start[op_id] = self._ready_step(op_id, start)
            return start[op_id]
        if self._ready_step(op_id, start) > step:
            return None
        limit = problem.constraints.limit(cls)
        occupancy = problem.occupancy(op_id)
        if limit is not None and any(
            usage.get((step + k, cls), 0) >= limit
            for k in range(occupancy)
        ):
            return None
        for k in range(occupancy):
            usage[(step + k, cls)] = usage.get((step + k, cls), 0) + 1
        start[op_id] = step
        return step
