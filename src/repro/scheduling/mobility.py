"""Time frames: ASAP/ALAP ranges and mobility ("freedom") per op.

§3.1.2: "the range of possible control step assignments for each
operation is calculated, given the time constraints and the precedence
relations" — the starting point of both freedom-based (MAHA) and
force-directed (HAL) scheduling.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import SchedulingError
from .base import SchedulingProblem


@dataclass
class TimeFrames:
    """Legal start ranges per op under a deadline (no resource limits).

    Attributes:
        asap: earliest legal start per op id.
        alap: latest legal start per op id.
        deadline: the number of steps the frames were computed against.
    """

    asap: dict[int, int]
    alap: dict[int, int]
    deadline: int

    def mobility(self, op_id: int) -> int:
        """Slack of the op: ``alap - asap`` (0 = on the critical path)."""
        return self.alap[op_id] - self.asap[op_id]

    def frame(self, op_id: int) -> range:
        """All legal start steps for the op."""
        return range(self.asap[op_id], self.alap[op_id] + 1)

    def critical_ops(self) -> list[int]:
        """Ops with zero mobility, sorted by ASAP step then id."""
        return sorted(
            (op_id for op_id in self.asap if self.mobility(op_id) == 0),
            key=lambda op_id: (self.asap[op_id], op_id),
        )


def unconstrained_asap(problem: SchedulingProblem) -> dict[int, int]:
    """Pure dataflow earliest starts (resources ignored)."""
    start: dict[int, int] = {}
    for op_id in problem.topological():
        earliest = 0
        for pred in problem.graph.predecessors(op_id):
            offset = problem.edge_offset(pred, op_id)
            earliest = max(earliest, start[pred] + offset)
        start[op_id] = earliest
    return start


def unconstrained_alap(problem: SchedulingProblem,
                       deadline: int) -> dict[int, int]:
    """Pure dataflow latest starts against ``deadline`` steps."""
    start: dict[int, int] = {}
    for op_id in reversed(problem.topological()):
        delay = problem.delay(op_id)
        latest = deadline - max(delay, 1)
        for succ in problem.graph.successors(op_id):
            offset = problem.edge_offset(op_id, succ)
            latest = min(latest, start[succ] - offset)
        if latest < 0:
            raise SchedulingError(
                f"op{op_id} cannot meet deadline {deadline}"
            )
        start[op_id] = latest
    return start


def compute_time_frames(problem: SchedulingProblem,
                        deadline: int | None = None) -> TimeFrames:
    """ASAP/ALAP frames for every op.

    ``deadline`` defaults to the problem's time limit, else the critical
    path length (every critical op then has zero mobility).
    """
    asap = unconstrained_asap(problem)
    if deadline is None:
        deadline = problem.time_limit
    if deadline is None:
        length = max(
            (asap[op.id] + max(problem.delay(op.id), 1)
             for op in problem.ops),
            default=0,
        )
        deadline = max(length, 1)
    alap = unconstrained_alap(problem, deadline)
    return TimeFrames(asap=asap, alap=alap, deadline=deadline)
