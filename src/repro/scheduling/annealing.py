"""Simulated-annealing transformational scheduling (CAMAD-style).

§3.1.2: transformational algorithms "differ in how they choose what
transformations to apply … Another approach to scheduling by
transformation is to use heuristics to guide the process.
Transformations are chosen that promise to move the design closer to
the given constraints or to optimize the objective" (YSC, CAMAD).

This scheduler starts from a feasible list schedule and explores the
neighbourhood by *move transformations* — shifting one operation to a
different legal control step (the serial/parallel moves of the paper's
transformational family) — accepting uphill moves with a decaying
probability.  All randomness comes from a seeded linear-congruential
generator, so results are reproducible.

The objective is schedule length with a small register-pressure tie
breaker, so among equal-length schedules the annealer prefers ones
with fewer simultaneously live values.
"""

from __future__ import annotations

import math

from ..allocation.lifetimes import compute_lifetimes, minimum_registers
from ..errors import SchedulingError
from ..obs import metrics
from .base import Schedule, Scheduler, SchedulingProblem
from .list_scheduler import ListScheduler


class _LCG:
    def __init__(self, seed: int) -> None:
        self._state = (seed & 0x7FFFFFFF) or 1

    def next_unit(self) -> float:
        self._state = (self._state * 1103515245 + 12345) & 0x7FFFFFFF
        return self._state / float(1 << 31)

    def below(self, bound: int) -> int:
        return int(self.next_unit() * bound) % bound


class SimulatedAnnealingScheduler(Scheduler):
    """Transformational scheduler with probabilistic hill escapes.

    Args:
        problem: the scheduling problem (resource constraints honoured).
        seed: RNG seed (results are deterministic per seed).
        moves: total move attempts.
        initial_temperature / cooling: annealing schedule.
    """

    name = "annealing"

    def __init__(self, problem: SchedulingProblem, seed: int = 1,
                 moves: int = 2000, initial_temperature: float = 2.0,
                 cooling: float = 0.995) -> None:
        super().__init__(problem)
        self._rng = _LCG(seed)
        self._moves = moves
        self._temperature = initial_temperature
        self._cooling = cooling

    # ------------------------------------------------------------------

    def _cost(self, schedule: Schedule) -> tuple[int, int]:
        pressure = minimum_registers(compute_lifetimes(schedule))
        return schedule.length, pressure

    def _legal(self, start: dict[int, int]) -> bool:
        # Only SchedulingError means "illegal candidate"; anything else
        # (a TypeError from a corrupted start map, say) is a bug and
        # must propagate, not be silently treated as a rejected move.
        try:
            Schedule(self.problem, start, scheduler=self.name).validate()
            return True
        except SchedulingError:
            metrics().counter("scheduler.annealing.illegal_moves").inc()
            return False

    def schedule(self) -> Schedule:
        problem = self.problem
        incumbent = ListScheduler(problem, "path_length").schedule()
        current = dict(incumbent.start)
        current_cost = self._cost(incumbent)
        best = dict(current)
        best_cost = current_cost
        op_ids = [op.id for op in problem.ops]
        temperature = self._temperature

        for _ in range(self._moves):
            op_id = op_ids[self._rng.below(len(op_ids))]
            delta = 1 if self._rng.next_unit() < 0.5 else -1
            candidate = dict(current)
            candidate[op_id] = max(0, candidate[op_id] + delta)
            if candidate[op_id] == current[op_id]:
                continue
            if not self._legal(candidate):
                continue
            candidate_schedule = Schedule(problem, candidate,
                                          scheduler=self.name)
            candidate_cost = self._cost(candidate_schedule)
            worse = candidate_cost > current_cost
            if worse:
                gap = (
                    (candidate_cost[0] - current_cost[0])
                    + 0.1 * (candidate_cost[1] - current_cost[1])
                )
                accept = (
                    self._rng.next_unit()
                    < math.exp(-gap / max(temperature, 1e-9))
                )
            else:
                accept = True
            if accept:
                current = candidate
                current_cost = candidate_cost
                if candidate_cost < best_cost:
                    best = dict(candidate)
                    best_cost = candidate_cost
            temperature *= self._cooling

        return Schedule(problem, best, scheduler=self.name)
