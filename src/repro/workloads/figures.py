"""Purpose-built DFGs reproducing the paper's Figures 3-7.

Each builder returns a single-block CDFG whose scheduled behaviour
exhibits exactly the phenomenon the figure illustrates; the benches in
``benchmarks/`` assert the figure's numbers on them.
"""

from __future__ import annotations

from ..ir.cdfg import CDFG, BlockRegion
from ..ir.opcodes import OpKind
from ..ir.types import FixedType
from ..ir.values import BasicBlock

_WORD = FixedType(16, 8)


def _single_block_cdfg(name: str, inputs: list[str],
                       outputs: list[str]) -> tuple[CDFG, BasicBlock]:
    cdfg = CDFG(name)
    for port in inputs:
        cdfg.add_input(port, _WORD)
    for port in outputs:
        cdfg.add_output(port, _WORD)
    block = cdfg.new_block("body")
    cdfg.body = BlockRegion(block)
    return cdfg, block


def fig3_cdfg() -> CDFG:
    """The ASAP-suboptimality example of Figures 3 and 4.

    One non-critical multiplication (``m1``) precedes the critical
    multiply→add→add chain in the fixed selection order.  With one
    multiplier and one adder, ASAP schedules ``m1`` first and blocks
    the chain's multiply, giving 4 steps; list scheduling (priority =
    path length, Fig. 4) runs the chain first, giving the optimal 3.
    """
    cdfg, block = _single_block_cdfg(
        "fig3", ["a", "b", "c", "d"], ["p", "q"]
    )
    a = block.read("a", _WORD)
    b = block.read("b", _WORD)
    c = block.read("c", _WORD)
    d = block.read("d", _WORD)
    # Operation ids grow in emission order, so m1 precedes m2 in the
    # ASAP selection order — exactly the trap of Fig. 3.
    m1 = block.emit(OpKind.MUL, [a, b], _WORD)       # non-critical
    m2 = block.emit(OpKind.MUL, [c, d], _WORD)       # critical chain...
    a1 = block.emit(OpKind.ADD, [m2.result, a], _WORD)
    a2 = block.emit(OpKind.ADD, [a1.result, b], _WORD)
    block.write("p", m1.result)
    block.write("q", a2.result)
    cdfg.validate()
    return cdfg


def fig5_cdfg() -> CDFG:
    """The force-directed distribution-graph example of Figure 5.

    Under a 3-step time constraint the three additions have frames:
    a1 pinned to the first step (a multiply chain follows it), a2
    pinned to the second (a multiply precedes and follows it), and a3
    free across the last two.  The addition distribution graph is
    therefore [1, 1.5, 0.5], and balancing places a3 in the final step.
    """
    cdfg, block = _single_block_cdfg(
        "fig5", ["u", "v", "w", "x"], ["o1", "o2", "o3"]
    )
    u = block.read("u", _WORD)
    v = block.read("v", _WORD)
    w = block.read("w", _WORD)
    x = block.read("x", _WORD)
    # a1 -> m1 -> m2 pins a1 at step 0.
    a1 = block.emit(OpKind.ADD, [u, v], _WORD)
    m1 = block.emit(OpKind.MUL, [a1.result, w], _WORD)
    m2 = block.emit(OpKind.MUL, [m1.result, x], _WORD)
    # p1 -> a2 -> p2 pins a2 at step 1.
    p1 = block.emit(OpKind.MUL, [u, v], _WORD)
    a2 = block.emit(OpKind.ADD, [p1.result, w], _WORD)
    p2 = block.emit(OpKind.MUL, [a2.result, x], _WORD)
    # p3 -> a3 leaves a3 the frame {1, 2}.
    p3 = block.emit(OpKind.MUL, [w, x], _WORD)
    a3 = block.emit(OpKind.ADD, [p3.result, u], _WORD)
    block.write("o1", m2.result)
    block.write("o2", p2.result)
    block.write("o3", a3.result)
    cdfg.validate()
    return cdfg


def fig6_cdfg() -> CDFG:
    """The greedy datapath-allocation example of Figures 6 and 7.

    Four additions over three control steps (two adders): a1 and a2 in
    the first step, a3 in the second, a4 (consuming a3) in the third.
    Operand reuse is arranged so that interconnect-aware assignment
    (a3 onto the adder that already sees ``z``; a4 onto the adder with
    the existing register connection for ``y``) needs strictly fewer
    multiplexer inputs than cost-blind first-fit.
    """
    cdfg, block = _single_block_cdfg(
        "fig6", ["x", "y", "z", "w", "q"], ["o1", "o2", "o3", "o4"]
    )
    x = block.read("x", _WORD)
    y = block.read("y", _WORD)
    z = block.read("z", _WORD)
    w = block.read("w", _WORD)
    q = block.read("q", _WORD)
    a1 = block.emit(OpKind.ADD, [x, y], _WORD)
    a2 = block.emit(OpKind.ADD, [z, w], _WORD)
    a3 = block.emit(OpKind.ADD, [z, q], _WORD)
    a4 = block.emit(OpKind.ADD, [a3.result, y], _WORD)
    block.write("o1", a1.result)
    block.write("o2", a2.result)
    block.write("o3", a3.result)
    block.write("o4", a4.result)
    cdfg.validate()
    return cdfg


def figure_add_ops(cdfg: CDFG) -> list[int]:
    """Ids of the ADD operations of a figure CDFG, in emission order."""
    block = next(iter(cdfg.blocks()))
    return [op.id for op in block.ops if op.kind is OpKind.ADD]
