"""The HAL differential-equation benchmark.

The canonical example of Paulin & Knight's force-directed scheduling
paper (cited as [22]): one Euler-integration step of
``y'' + 3xy' + 3y = 0``, iterated while ``x < a``.  Its inner loop has
six multiplications, two additions, two subtractions and a comparison —
the op mix every scheduler comparison in the late-80s literature used.
"""

from __future__ import annotations

from ..ir.cdfg import CDFG
from ..lang import compile_source

DIFFEQ_SOURCE = """
-- HAL differential equation benchmark: y'' + 3xy' + 3y = 0 (Euler).
procedure diffeq(input x0: fixed<32,16>; input y0: fixed<32,16>;
                 input u0: fixed<32,16>; input dx: fixed<32,16>;
                 input a: fixed<32,16>;
                 output xn: fixed<32,16>; output yn: fixed<32,16>);
var x, y, u, x1, y1, u1: fixed<32,16>;
begin
  x := x0;
  y := y0;
  u := u0;
  while x < a do
  begin
    x1 := x + dx;
    u1 := u - (3.0 * x * u * dx) - (3.0 * y * dx);
    y1 := y + u * dx;
    x := x1;
    u := u1;
    y := y1;
  end;
  xn := x;
  yn := y;
end
"""


def diffeq_cdfg() -> CDFG:
    """A fresh (unoptimized) CDFG of the HAL diffeq benchmark."""
    return compile_source(DIFFEQ_SOURCE)


def diffeq_inputs(steps: int = 4) -> dict[str, float]:
    """Inputs that run the integration loop ``steps`` times."""
    dx = 0.125
    return {
        "x0": 0.0,
        "y0": 1.0,
        "u0": 0.0,
        "dx": dx,
        "a": dx * steps - dx / 2,
    }
