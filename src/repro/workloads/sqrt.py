"""The paper's running example: square root by Newton's method (Fig. 1).

"Fig. 1 shows a part of a simple program that computes the square-root
of X using Newton's method … The number of iterations necessary in
practice is very small.  In the example, 4 iterations were chosen.  A
first degree minimax polynomial approximation for the interval
<1/16, 1> gives the initial value."
"""

from __future__ import annotations

from ..ir.cdfg import CDFG
from ..lang import compile_source

SQRT_SOURCE = """
-- Square root of X by Newton's method (DAC'88 tutorial, Fig. 1).
procedure sqrt(input X: fixed<24,16>; output Y: fixed<24,16>);
var I: uint<3>;
begin
  Y := 0.222222 + 0.888889 * X;   -- minimax initial guess on <1/16, 1>
  I := 0;
  repeat
    Y := 0.5 * (Y + X / Y);       -- Newton update
    I := I + 1;
  until I > 3;                    -- 4 iterations
end
"""


def sqrt_cdfg() -> CDFG:
    """A fresh (unoptimized) CDFG of the paper's sqrt program."""
    return compile_source(SQRT_SOURCE)
