"""Workloads: the paper's examples and the classic HLS benchmark kernels."""

from .diffeq import DIFFEQ_SOURCE, diffeq_cdfg, diffeq_inputs
from .figures import fig3_cdfg, fig5_cdfg, fig6_cdfg, figure_add_ops
from .filters import (
    ar_lattice_cdfg,
    ewf_cdfg,
    fir_block_cdfg,
    fir_cdfg,
    fir_source,
)
from .random_dfg import (
    RECIPE_KINDS,
    RECIPE_WIDTHS,
    DFGRecipe,
    RandomDFGSpec,
    build_dfg,
    dfg_recipe,
    random_dfg,
    recipe_word,
    shrink_recipe,
)
from .sqrt import SQRT_SOURCE, sqrt_cdfg

__all__ = [
    "DFGRecipe",
    "DIFFEQ_SOURCE",
    "RECIPE_KINDS",
    "RECIPE_WIDTHS",
    "RandomDFGSpec",
    "SQRT_SOURCE",
    "ar_lattice_cdfg",
    "build_dfg",
    "dfg_recipe",
    "diffeq_cdfg",
    "diffeq_inputs",
    "ewf_cdfg",
    "fig3_cdfg",
    "fig5_cdfg",
    "fig6_cdfg",
    "figure_add_ops",
    "fir_block_cdfg",
    "fir_cdfg",
    "fir_source",
    "random_dfg",
    "recipe_word",
    "shrink_recipe",
]
