"""DSP filter workloads: FIR (loop and unrolled forms) and a fifth-order
wave digital (elliptic) filter.

The paper singles out digital signal processing as the domain where
narrowing the problem paid off (CATHEDRAL, §3.3); FIR and wave-filter
kernels are the standard stress cases for scheduling and pipelining.
The elliptic wave filter here is a *reconstruction* of the well-known
34-operation HLS benchmark (26 additions, 8 multiplications arranged as
a wave-digital ladder) — the historical netlist was never published in
machine-readable form, so the adaptor topology is rebuilt to the same
op counts and a comparable critical path, which is what the scheduler
comparisons consume.
"""

from __future__ import annotations

from ..ir.cdfg import CDFG, BlockRegion
from ..ir.opcodes import OpKind
from ..ir.types import FixedType
from ..lang import compile_source

_WORD = FixedType(24, 12)


def fir_source(taps: int = 16) -> str:
    """BSL text of a ``taps``-point FIR filter over memories.

    Coefficients live in memory ``c``, the sample window in memory
    ``s``; one activation computes the inner product.
    """
    return f"""
-- {taps}-tap FIR filter: y = sum(c[i] * s[i]).
procedure fir(input x: fixed<24,12>; output y: fixed<24,12>);
var acc: fixed<24,12>;
    i: uint<8>;
    c: fixed<24,12>[{taps}];
    s: fixed<24,12>[{taps}];
begin
  s[0] := x;
  acc := 0.0;
  for i := 0 to {taps - 1} do
    acc := acc + c[i] * s[i];
  y := acc;
end
"""


def fir_cdfg(taps: int = 16) -> CDFG:
    """A fresh CDFG of the loop-form FIR filter."""
    return compile_source(fir_source(taps))


def fir_block_cdfg(taps: int = 8) -> CDFG:
    """Unrolled, feed-forward FIR as one block — the natural pipeline
    workload (``taps`` multiplies feeding an addition tree)."""
    cdfg = CDFG(f"fir{taps}_flat")
    for index in range(taps):
        cdfg.add_input(f"x{index}", _WORD)
        cdfg.add_input(f"c{index}", _WORD)
    cdfg.add_output("y", _WORD)
    block = cdfg.new_block("body")
    cdfg.body = BlockRegion(block)
    products = []
    for index in range(taps):
        x = block.read(f"x{index}", _WORD)
        c = block.read(f"c{index}", _WORD)
        products.append(block.emit(OpKind.MUL, [x, c], _WORD).result)
    # Balanced addition tree.
    level = products
    while len(level) > 1:
        next_level = []
        for i in range(0, len(level) - 1, 2):
            next_level.append(
                block.emit(OpKind.ADD, [level[i], level[i + 1]],
                           _WORD).result
            )
        if len(level) % 2:
            next_level.append(level[-1])
        level = next_level
    block.write("y", level[0])
    cdfg.validate()
    return cdfg


def ar_lattice_cdfg(stages: int = 4) -> CDFG:
    """Auto-regressive lattice filter (a classic HLS benchmark shape):
    ``stages`` lattice sections, each with two multiplies and two
    adds in a butterfly, fed forward through the chain.

    The lattice is interesting to schedulers because its butterflies
    alternate serial and parallel arithmetic — unlike the FIR's flat
    product tree — so multiplier/adder balance shifts along the
    critical path.
    """
    cdfg = CDFG(f"ar_lattice{stages}")
    cdfg.add_input("x", _WORD)
    for index in range(stages):
        cdfg.add_input(f"k{index}", _WORD)   # reflection coefficient
        cdfg.add_input(f"s{index}", _WORD)   # stage state
    cdfg.add_output("y", _WORD)
    for index in range(stages):
        cdfg.add_output(f"so{index}", _WORD)
    block = cdfg.new_block("body")
    cdfg.body = BlockRegion(block)

    def read(name):
        return block.read(name, _WORD)

    forward = read("x")
    for index in range(stages):
        k = read(f"k{index}")
        state = read(f"s{index}")
        down = block.emit(OpKind.MUL, [k, state], _WORD).result
        forward_next = block.emit(OpKind.SUB, [forward, down],
                                  _WORD).result
        up = block.emit(OpKind.MUL, [k, forward_next], _WORD).result
        state_next = block.emit(OpKind.ADD, [state, up], _WORD).result
        block.write(f"so{index}", state_next)
        forward = forward_next
    block.write("y", forward)
    cdfg.validate()
    return cdfg


def ewf_cdfg() -> CDFG:
    """Fifth-order elliptic wave filter (reconstructed): 26 additions
    and 8 multiplications in one feed-forward block.

    The structure is a ladder of wave-digital adaptors: each adaptor
    contributes a small add/multiply cluster; state registers of the
    original filter appear here as inputs (``sv*``) and outputs
    (``svo*``) of one sample computation, which is exactly how the
    benchmark was scheduled in the literature.
    """
    cdfg = CDFG("ewf")
    cdfg.add_input("x", _WORD)
    for index in range(7):
        cdfg.add_input(f"sv{index}", _WORD)
    cdfg.add_output("y", _WORD)
    for index in range(7):
        cdfg.add_output(f"svo{index}", _WORD)
    block = cdfg.new_block("body")
    cdfg.body = BlockRegion(block)

    def read(name: str):
        return block.read(name, _WORD)

    def add(a, b):
        return block.emit(OpKind.ADD, [a, b], _WORD).result

    def mul_const(a, coefficient: float):
        c = block.const(coefficient, _WORD)
        return block.emit(OpKind.MUL, [a, c], _WORD).result

    x = read("x")
    sv = [read(f"sv{i}") for i in range(7)]

    # Input adaptor.
    t1 = add(x, sv[0])                 # 1
    t2 = add(t1, sv[1])                # 2
    m1 = mul_const(t2, 0.125)          # m1
    t3 = add(m1, sv[0])                # 3
    t4 = add(t3, t1)                   # 4

    # First ladder section.
    t5 = add(t4, sv[2])                # 5
    m2 = mul_const(t5, 0.25)           # m2
    t6 = add(m2, sv[1])                # 6
    t7 = add(t6, t4)                   # 7
    t8 = add(t7, sv[3])                # 8
    m3 = mul_const(t8, 0.375)          # m3
    t9 = add(m3, sv[2])                # 9
    t10 = add(t9, t7)                  # 10

    # Middle section.
    t11 = add(t10, sv[4])              # 11
    m4 = mul_const(t11, 0.5)           # m4
    t12 = add(m4, sv[3])               # 12
    t13 = add(t12, t10)                # 13
    m5 = mul_const(t13, 0.625)         # m5
    t14 = add(m5, sv[4])               # 14
    t15 = add(t14, t13)                # 15

    # Output ladder section.
    t16 = add(t15, sv[5])              # 16
    m6 = mul_const(t16, 0.75)          # m6
    t17 = add(m6, sv[5])               # 17
    t18 = add(t17, t15)                # 18
    t19 = add(t18, sv[6])              # 19
    m7 = mul_const(t19, 0.875)         # m7
    t20 = add(m7, sv[6])               # 20
    t21 = add(t20, t18)                # 21

    # Output adaptor and state updates.
    m8 = mul_const(t21, 0.0625)        # m8
    t22 = add(m8, t17)                 # 22
    t23 = add(t22, t14)                # 23
    t24 = add(t23, t12)                # 24
    t25 = add(t24, t9)                 # 25
    t26 = add(t25, t6)                 # 26

    block.write("y", t26)
    for index, value in enumerate(
        (t3, t6, t9, t12, t14, t17, t20)
    ):
        block.write(f"svo{index}", value)
    cdfg.validate()

    adds = sum(1 for op in block.ops if op.kind is OpKind.ADD)
    muls = sum(1 for op in block.ops if op.kind is OpKind.MUL)
    assert adds == 26 and muls == 8, (adds, muls)
    return cdfg
