"""Seeded random DFG generator for scheduler/allocator stress tests.

Generates layered, feed-forward single-block CDFGs with a configurable
op mix.  Determinism matters (tests assert exact results per seed), so
a local linear-congruential generator is used instead of ``random``.

Generation is split into two steps so failures can be *shrunk*:

* :func:`dfg_recipe` replays the seeded generator into a
  :class:`DFGRecipe` — a plain, serializable list of
  ``(kind, left, right)`` triples over a growing value pool;
* :func:`build_dfg` constructs the CDFG from a recipe.

``random_dfg(spec) == build_dfg(dfg_recipe(spec))`` by construction,
and :func:`shrink_recipe` delta-debugs a failing recipe — deleting ops
and rewiring edges while a caller-supplied predicate keeps failing —
until it is locally minimal.  The fuzzer (:mod:`repro.verify.fuzz`)
embeds the shrunk recipe in a standalone repro script.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Callable

from ..ir.cdfg import CDFG, BlockRegion
from ..ir.opcodes import OpKind
from ..ir.types import FixedType, IntType, Type

_WORD = FixedType(16, 8)

#: Recipe op kinds legal per value domain.  Fixed-point values only
#: support arithmetic in the simulator semantics; the integer domain
#: adds the bitwise kinds (shift/divide stay out: a random operand is
#: a legal shift amount or divisor only by luck, and the behavioral
#: and RTL simulators rightly differ on how they fail).
RECIPE_KINDS: dict[str, tuple[str, ...]] = {
    "fixed": ("ADD", "SUB", "MUL"),
    "int": ("ADD", "SUB", "MUL", "AND", "OR", "XOR"),
}

#: Bit widths a recipe may use (defaults match the legacy generator).
RECIPE_WIDTHS: tuple[int, ...] = (8, 12, 16, 24, 32)


def recipe_word(domain: str, width: int) -> Type:
    """The element type of a recipe's values."""
    if domain == "int":
        return IntType(width)
    return FixedType(width, width // 2)



class _LCG:
    """Deterministic pseudo-random source."""

    def __init__(self, seed: int) -> None:
        self._state = seed & 0x7FFFFFFF or 1

    def next(self) -> int:
        self._state = (self._state * 1103515245 + 12345) & 0x7FFFFFFF
        return self._state

    def below(self, bound: int) -> int:
        return self.next() % bound

    def choice(self, items):
        return items[self.below(len(items))]


@dataclass(frozen=True)
class RandomDFGSpec:
    """Shape parameters of a generated DFG.

    Attributes:
        ops: number of computational operations.
        inputs: number of input ports feeding the first layer.
        seed: generator seed (same seed ⇒ identical CDFG).
        fan_in_window: how far back an operand may reach (larger ⇒
            longer chains, smaller ⇒ wider parallelism).
        mul_weight / add_weight: relative frequency of multiplies vs
            additive ops.
    """

    ops: int = 20
    inputs: int = 4
    seed: int = 1
    fan_in_window: int = 6
    mul_weight: int = 1
    add_weight: int = 2


@dataclass(frozen=True)
class DFGRecipe:
    """A serializable construction trace for one single-block DFG.

    The value pool is indexed ``0 .. inputs-1`` for the input reads,
    then ``inputs + k`` for the result of op ``k``.  Each op is a
    ``(kind_name, left_pool_index, right_pool_index)`` triple whose
    operand indices must precede the op itself — the recipe is a DAG by
    construction, which is what makes deletion-based shrinking sound.

    ``width`` and ``domain`` pick the element type of every value
    (see :func:`recipe_word`); the defaults reproduce the legacy
    16-bit fixed-point generator exactly, so recipes embedded in old
    repro scripts keep meaning the same graph.
    """

    inputs: int
    ops: tuple[tuple[str, int, int], ...]
    name: str = "dfg"
    width: int = 16
    domain: str = "fixed"

    def __post_init__(self) -> None:
        if self.domain not in RECIPE_KINDS:
            raise ValueError(
                f"unknown recipe domain {self.domain!r}; expected one "
                f"of {sorted(RECIPE_KINDS)}"
            )
        if self.width < 2:
            raise ValueError(f"recipe width must be >= 2, got {self.width}")
        allowed = RECIPE_KINDS[self.domain]
        for position, (kind, left, right) in enumerate(self.ops):
            limit = self.inputs + position
            if not (0 <= left < limit and 0 <= right < limit):
                raise ValueError(
                    f"recipe op {position} ({kind}) reads pool index "
                    f"{max(left, right)}, but only {limit} values "
                    f"precede it"
                )
            OpKind[kind]  # raises KeyError on an unknown kind name
            if kind not in allowed:
                raise ValueError(
                    f"recipe op {position} kind {kind} is not legal in "
                    f"the {self.domain!r} domain (allowed: {allowed})"
                )

    @property
    def op_count(self) -> int:
        return len(self.ops)

    def render(self) -> str:
        """Python-literal rendering (embedded in repro scripts)."""
        lines = [f"DFGRecipe(", f"    inputs={self.inputs},", "    ops=("]
        for kind, left, right in self.ops:
            lines.append(f"        ({kind!r}, {left}, {right}),")
        lines.append("    ),")
        lines.append(f"    name={self.name!r},")
        if self.width != 16:
            lines.append(f"    width={self.width},")
        if self.domain != "fixed":
            lines.append(f"    domain={self.domain!r},")
        lines.append(")")
        return "\n".join(lines)


def dfg_recipe(spec: RandomDFGSpec) -> DFGRecipe:
    """Replay the seeded generator into a :class:`DFGRecipe`."""
    rng = _LCG(spec.seed)
    kinds = [OpKind.MUL] * spec.mul_weight + [
        OpKind.ADD,
        OpKind.SUB,
    ] * spec.add_weight
    pool_size = spec.inputs
    ops: list[tuple[str, int, int]] = []
    for _ in range(spec.ops):
        kind = rng.choice(kinds)
        window = min(spec.fan_in_window, pool_size)
        base = pool_size - window
        left = base + rng.below(window)
        right = base + rng.below(window)
        ops.append((kind.name, left, right))
        pool_size += 1
    return DFGRecipe(spec.inputs, tuple(ops),
                     name=f"rand{spec.seed}_{spec.ops}")


def build_dfg(recipe: DFGRecipe) -> CDFG:
    """Construct the single-block CDFG a recipe describes."""
    word = recipe_word(recipe.domain, recipe.width)
    cdfg = CDFG(recipe.name)
    for index in range(recipe.inputs):
        cdfg.add_input(f"in{index}", word)
    block = cdfg.new_block("body")
    cdfg.body = BlockRegion(block)

    pool = [block.read(f"in{i}", word) for i in range(recipe.inputs)]
    for kind_name, left, right in recipe.ops:
        op = block.emit(
            OpKind[kind_name], [pool[left], pool[right]], word
        )
        pool.append(op.result)

    # Every value some op didn't consume becomes an output (keeps the
    # whole graph live under DCE).
    sink_index = 0
    for value in pool[recipe.inputs:]:
        if not value.uses:
            name = f"out{sink_index}"
            cdfg.add_output(name, word)
            block.write(name, value)
            sink_index += 1
    if sink_index == 0:
        cdfg.add_output("out0", word)
        block.write("out0", pool[-1])
    cdfg.validate()
    return cdfg


def random_dfg(spec: RandomDFGSpec) -> CDFG:
    """Generate a single-block CDFG per ``spec``."""
    return build_dfg(dfg_recipe(spec))


# ----------------------------------------------------------------------
# Shrinking
# ----------------------------------------------------------------------


def _delete_op(recipe: DFGRecipe, position: int) -> DFGRecipe:
    """The recipe with op ``position`` removed.

    Later references to the deleted op's result are rewired to its
    left operand (always an earlier pool index), and indices above the
    deleted slot shift down by one.
    """
    removed_index = recipe.inputs + position
    replacement = recipe.ops[position][1]

    def remap(index: int) -> int:
        if index == removed_index:
            index = replacement
        return index - 1 if index > removed_index else index

    ops = tuple(
        (kind, remap(left), remap(right))
        for k, (kind, left, right) in enumerate(recipe.ops)
        if k != position
    )
    return replace(recipe, ops=ops)


def _rewire_operand(recipe: DFGRecipe, position: int, side: int,
                    new_index: int) -> DFGRecipe:
    """The recipe with one operand of op ``position`` redirected."""
    ops = list(recipe.ops)
    kind, left, right = ops[position]
    ops[position] = (kind, new_index, right) if side == 0 \
        else (kind, left, new_index)
    return replace(recipe, ops=tuple(ops))


def shrink_recipe(recipe: DFGRecipe,
                  still_fails: Callable[[DFGRecipe], bool],
                  min_ops: int = 1) -> DFGRecipe:
    """Greedy delta-debugging reducer for a failing recipe.

    Repeats two passes to a fixpoint:

    1. **op deletion** — try removing each op (last to first, so
       downstream consumers disappear before their producers);
    2. **edge deletion** — try rewiring each operand that reads
       another op's result to an input, or one level up the chain.

    A candidate is kept only when ``still_fails(candidate)`` is True,
    so the result still reproduces the original failure and is locally
    minimal (no single deletion keeps it failing).  The predicate must
    be deterministic; it is never called on the input recipe itself.
    """
    current = recipe
    changed = True
    while changed:
        changed = False
        position = current.op_count - 1
        while position >= 0 and current.op_count > min_ops:
            candidate = _delete_op(current, position)
            if still_fails(candidate):
                current = candidate
                changed = True
            position -= 1
        for position in range(current.op_count):
            kind, left, right = current.ops[position]
            for side, operand in ((0, left), (1, right)):
                if operand < current.inputs:
                    continue  # already reads an input
                producer_left = current.ops[operand - current.inputs][1]
                for target in (0, producer_left):
                    if target == operand:
                        continue
                    candidate = _rewire_operand(
                        current, position, side, target
                    )
                    if still_fails(candidate):
                        current = candidate
                        changed = True
                        break
    return current
