"""Seeded random DFG generator for scheduler/allocator stress tests.

Generates layered, feed-forward single-block CDFGs with a configurable
op mix.  Determinism matters (tests assert exact results per seed), so
a local linear-congruential generator is used instead of ``random``.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..ir.cdfg import CDFG, BlockRegion
from ..ir.opcodes import OpKind
from ..ir.types import FixedType

_WORD = FixedType(16, 8)



class _LCG:
    """Deterministic pseudo-random source."""

    def __init__(self, seed: int) -> None:
        self._state = seed & 0x7FFFFFFF or 1

    def next(self) -> int:
        self._state = (self._state * 1103515245 + 12345) & 0x7FFFFFFF
        return self._state

    def below(self, bound: int) -> int:
        return self.next() % bound

    def choice(self, items):
        return items[self.below(len(items))]


@dataclass(frozen=True)
class RandomDFGSpec:
    """Shape parameters of a generated DFG.

    Attributes:
        ops: number of computational operations.
        inputs: number of input ports feeding the first layer.
        seed: generator seed (same seed ⇒ identical CDFG).
        fan_in_window: how far back an operand may reach (larger ⇒
            longer chains, smaller ⇒ wider parallelism).
        mul_weight / add_weight: relative frequency of multiplies vs
            additive ops.
    """

    ops: int = 20
    inputs: int = 4
    seed: int = 1
    fan_in_window: int = 6
    mul_weight: int = 1
    add_weight: int = 2


def random_dfg(spec: RandomDFGSpec) -> CDFG:
    """Generate a single-block CDFG per ``spec``."""
    rng = _LCG(spec.seed)
    cdfg = CDFG(f"rand{spec.seed}_{spec.ops}")
    for index in range(spec.inputs):
        cdfg.add_input(f"in{index}", _WORD)
    block = cdfg.new_block("body")
    cdfg.body = BlockRegion(block)

    pool = [block.read(f"in{i}", _WORD) for i in range(spec.inputs)]
    kinds = [OpKind.MUL] * spec.mul_weight + [
        OpKind.ADD,
        OpKind.SUB,
    ] * spec.add_weight

    for _ in range(spec.ops):
        kind = rng.choice(kinds)
        window = pool[-spec.fan_in_window:]
        left = window[rng.below(len(window))]
        right = window[rng.below(len(window))]
        op = block.emit(kind, [left, right], _WORD)
        pool.append(op.result)

    # Every value some op didn't consume becomes an output (keeps the
    # whole graph live under DCE).
    sink_index = 0
    for value in pool[spec.inputs:]:
        if not value.uses:
            name = f"out{sink_index}"
            cdfg.add_output(name, _WORD)
            block.write(name, value)
            sink_index += 1
    if sink_index == 0:
        cdfg.add_output("out0", _WORD)
        block.write("out0", pool[-1])
    cdfg.validate()
    return cdfg
