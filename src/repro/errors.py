"""Exception hierarchy shared across the repro HLS library.

Every error raised by the library derives from :class:`HLSError`, so
callers can catch a single type at the API boundary.  Sub-types mirror
the synthesis pipeline stages described in the DAC'88 tutorial: language
frontend, IR construction, transformation, scheduling, allocation,
binding, controller synthesis and simulation.
"""

from __future__ import annotations


class HLSError(Exception):
    """Base class for every error raised by the repro library."""


class SourceLocation:
    """A position in behavioral source text (1-based line and column)."""

    __slots__ = ("line", "column")

    def __init__(self, line: int, column: int) -> None:
        self.line = line
        self.column = column

    def __repr__(self) -> str:
        return f"{self.line}:{self.column}"

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, SourceLocation)
            and self.line == other.line
            and self.column == other.column
        )

    def __hash__(self) -> int:
        return hash((self.line, self.column))


class FrontendError(HLSError):
    """An error in behavioral source text (lexing, parsing, semantics)."""

    def __init__(self, message: str, location: SourceLocation | None = None) -> None:
        self.location = location
        if location is not None:
            message = f"{location}: {message}"
        super().__init__(message)


class LexError(FrontendError):
    """Invalid character sequence in behavioral source text."""


class ParseError(FrontendError):
    """Source text does not conform to the behavioral grammar."""


class SemanticError(FrontendError):
    """Well-formed source text with an invalid meaning (types, scopes)."""


class IRError(HLSError):
    """An IR invariant was violated while building or mutating a CDFG."""


class TransformError(HLSError):
    """A high-level transformation could not be applied."""


class SchedulingError(HLSError):
    """No legal schedule exists, or a scheduler produced an illegal one."""


class AllocationError(HLSError):
    """Datapath allocation failed or produced an inconsistent result."""


class BindingError(HLSError):
    """Module binding failed (e.g. no library component implements an op)."""


class ControllerError(HLSError):
    """Controller synthesis failed (FSM or microcode generation)."""


class SimulationError(HLSError):
    """Behavioral or RTL simulation encountered an invalid state."""


class VerificationError(HLSError):
    """A stage contract was violated (see :mod:`repro.verify`).

    Raised by the engine's opt-in verification hook
    (``SynthesisOptions(verify=True)``) when any post-stage contract
    check reports violations.  Carries the violation records so
    callers can inspect them programmatically.
    """

    def __init__(self, message: str, violations=()) -> None:
        super().__init__(message)
        self.violations = list(violations)


class TaskExecutionError(HLSError):
    """A parallel task failed permanently in the fault-tolerant runtime.

    Raised by callers that cannot proceed with partial results (e.g.
    :func:`~repro.explore.search_for_latency`, whose bisection needs
    every probe).  Carries the structured
    :class:`~repro.exec.TaskFailure` records so callers can inspect
    which tasks failed and why.
    """

    def __init__(self, message: str, failures=()) -> None:
        super().__init__(message)
        self.failures = list(failures)


class EquivalenceError(HLSError):
    """Behavior/RTL co-simulation found diverging outputs."""
