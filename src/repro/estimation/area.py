"""Area estimation of a synthesized design.

§4 lists integration of physical estimates (BUD's area/performance
estimation, PLEST) among the open problems; this module provides the
first-order structural estimate those systems used: component areas
from the library, register bits, multiplexer inputs and a controller
term, all in the library's normalized gate-equivalent units.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..allocation.interconnect import estimate_interconnect
from ..binding.library import (
    CONTROLLER_AREA_PER_STATE_BIT,
    MUX_AREA_PER_INPUT_BIT,
    REGISTER_AREA_PER_BIT,
)
from ..controller.encoding import encode_states
from ..core.design import SynthesizedDesign


@dataclass
class AreaEstimate:
    """Area breakdown (normalized gate equivalents)."""

    functional_units: float
    registers: float
    multiplexers: float
    controller: float

    @property
    def total(self) -> float:
        return (
            self.functional_units
            + self.registers
            + self.multiplexers
            + self.controller
        )

    def report(self) -> str:
        return (
            f"area: total={self.total:.0f} "
            f"(FUs {self.functional_units:.0f}, "
            f"registers {self.registers:.0f}, "
            f"muxes {self.multiplexers:.0f}, "
            f"controller {self.controller:.0f})"
        )


def estimate_area(design: SynthesizedDesign,
                  datapath_width: int | None = None) -> AreaEstimate:
    """Estimate the design's area.

    Args:
        design: a complete synthesized design.
        datapath_width: bit width assumed for multiplexers; defaults to
            the widest register in the design.
    """
    fu_area = design.binding.area() if design.binding is not None else 0.0

    registers = design.storage_registers()
    register_area = REGISTER_AREA_PER_BIT * sum(registers.values())
    if datapath_width is None:
        datapath_width = max(registers.values(), default=8)

    mux_inputs = 0
    for allocation in design.allocations.values():
        mux_inputs += estimate_interconnect(allocation).mux_inputs
    mux_area = MUX_AREA_PER_INPUT_BIT * mux_inputs * datapath_width

    controller_area = 0.0
    if design.fsm is not None and design.fsm.state_count:
        encoding = encode_states(design.fsm, "binary")
        controller_area = (
            CONTROLLER_AREA_PER_STATE_BIT
            * encoding.bits
            * design.fsm.state_count
        )

    return AreaEstimate(fu_area, register_area, mux_area, controller_area)
