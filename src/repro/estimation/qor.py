"""Pre-scheduling QoR estimation: cheap latency/area figures straight
from an optimized CDFG — no scheduling, no allocation, no binding.

§1.2's "search the design space … in a reasonable amount of time"
needs a filter much cheaper than the pipeline it steers.  This module
plays the role BUD's area/performance estimator (and ScaleHLS's QoR
estimator) play: given an optimized CDFG and a resource budget, bound
what any schedule could achieve, so the directive-DSE funnel
(:func:`repro.explore.explore_directives`) can discard dominated
configurations before spending a single scheduler invocation.

Two latency figures are produced:

* ``latency_lb_csteps`` — a **sound lower bound** on the control steps
  (and therefore RTL cycles) of any activation of any legal schedule:
  per block, the max of the chaining-aware dependence bound (longest
  path over :meth:`SchedulingProblem.edge_offset`) and the resource
  bound (``ceil(busy-steps / limit)`` per constrained class); across
  the region tree, branches take their *shorter* arm and unknown-trip
  loops their minimum execution (zero body trips for a pre-test loop,
  one for a post-test loop).  Known trip counts are exact — the
  frontend and :class:`~repro.transforms.tripcount.TripCountAnalysis`
  only record provable counts.  The admissibility property
  ``latency_lb_csteps <= measured cycles`` is pinned by tests.
* ``latency_csteps`` — a **ranking estimate** that mirrors
  :func:`~repro.scheduling.total_steps` instead: branches take their
  longer arm and unknown-trip loops run ``ranking_trips`` iterations.
  Useful for comparing configurations (a lower bound with zero-trip
  loops would blind the funnel to loop-body differences), but neither
  a bound nor a prediction.

The area figure is a coarse structural estimate (cheapest library
component per class × plausible unit count, plus register and
controller terms, no multiplexers — allocation decides those), *not* a
sound bound in either direction; see docs/performance.md for the
caveats.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..binding.library import (
    CONTROLLER_AREA_PER_STATE_BIT,
    REGISTER_AREA_PER_BIT,
    ComponentLibrary,
)
from ..errors import BindingError
from ..ir.cdfg import (
    CDFG,
    BlockRegion,
    IfRegion,
    LoopRegion,
    Region,
    SeqRegion,
)
from ..scheduling import (
    ResourceConstraints,
    ResourceModel,
    SchedulingProblem,
    UniversalFUModel,
)
from .timing import REGISTER_SETUP_NS

#: Trip count the *ranking* latency assumes for loops whose count is
#: unknown (the sound lower bound instead assumes minimum execution).
DEFAULT_RANKING_TRIPS = 4


@dataclass(frozen=True)
class QoREstimate:
    """Pre-scheduling quality figures for one (CDFG, constraints) pair.

    ``latency_lb_csteps`` is a sound lower bound on activation cycles;
    ``latency_csteps`` and ``area`` are ranking estimates (see module
    docstring); ``clock_ns`` is an optimistic clock period.
    """

    latency_csteps: int
    latency_lb_csteps: int
    area: float
    clock_ns: float

    @property
    def latency_ns(self) -> float:
        return self.latency_csteps * self.clock_ns

    def dominates(self, other: "QoREstimate",
                  margin: float = 0.0) -> bool:
        """Is this estimate better-or-equal on both axes — with at
        least one strict — even after being inflated by ``margin``?

        ``margin`` is the funnel's pruning slack: with 0.1, this
        estimate must beat ``other`` by ≥10% on both axes before
        ``other`` is considered dominated.  Equal estimates never
        dominate each other, so ties (e.g. two configs the estimator
        cannot tell apart) all survive to the next funnel level.
        """
        scale = 1.0 + margin
        if self.latency_csteps * scale > other.latency_csteps:
            return False
        if self.area * scale > other.area:
            return False
        return (self.latency_csteps < other.latency_csteps
                or self.area < other.area)


def _dependence_bound(problem: SchedulingProblem) -> int:
    """Chaining-aware longest-path bound on the block's schedule length.

    ``critical_path()`` is delay-weighted and ignores chaining, so it
    can *overshoot* a legal schedule (free ops chain for 0 steps) —
    not admissible.  This walk instead accumulates the exact
    per-edge minimum start separations every legal schedule must
    respect (:meth:`SchedulingProblem.edge_offset`), then adds the
    final op's busy window, matching :attr:`Schedule.length`.
    """
    earliest: dict[int, int] = {}
    bound = 0
    for op_id in problem.topological():
        start = 0
        for pred in problem.graph.predecessors(op_id):
            start = max(start,
                        earliest[pred] + problem.edge_offset(pred, op_id))
        earliest[op_id] = start
        bound = max(bound, start + max(problem.delay(op_id), 1))
    return bound


def _op_width(op) -> int:
    """Result width of an op, falling back to its widest operand."""
    result = getattr(op, "result", None)
    width = getattr(getattr(result, "type", None), "width", None)
    if width is None:
        widths = [
            getattr(getattr(value, "type", None), "width", 0)
            for value in op.operands
        ]
        width = max(widths, default=0)
    return max(int(width or 0), 1)


class QoRModel:
    """Per-CDFG precomputation behind :func:`estimate_qor`.

    Build once per optimized CDFG, then call :meth:`estimate` per
    resource budget — the directive funnel scores one transform
    variant under many FU limits, and everything
    constraint-independent (dependence bounds, busy-step totals,
    class/width inventory) is computed exactly once here.
    """

    def __init__(self, cdfg: CDFG,
                 model: ResourceModel | None = None,
                 library: ComponentLibrary | None = None,
                 ranking_trips: int = DEFAULT_RANKING_TRIPS) -> None:
        self.cdfg = cdfg
        self.model = model or UniversalFUModel()
        self.library = library or ComponentLibrary()
        self.ranking_trips = ranking_trips
        #: block id → dependence lower bound on schedule length.
        self._dep_lb: dict[int, int] = {}
        #: block id → {class: total busy steps (occupancy sum)}.
        self._busy: dict[int, dict[str, int]] = {}
        #: class → (kinds seen, widest op, max ops in any one block).
        self._classes: dict[str, tuple[set, int, int]] = {}
        for block in cdfg.blocks():
            if not block.ops:
                continue
            problem = SchedulingProblem.from_block(block, self.model)
            self._dep_lb[block.id] = _dependence_bound(problem)
            busy: dict[str, int] = {}
            counts: dict[str, int] = {}
            for op in block.ops:
                cls = self.model.op_class(op)
                if cls is None:
                    continue
                busy[cls] = busy.get(cls, 0) + max(
                    self.model.occupancy(op), 1
                )
                counts[cls] = counts.get(cls, 0) + 1
                kinds, width, peak = self._classes.get(
                    cls, (set(), 1, 0)
                )
                kinds.add(op.kind)
                self._classes[cls] = (
                    kinds,
                    max(width, _op_width(op)),
                    peak,
                )
            self._busy[block.id] = busy
            for cls, count in counts.items():
                kinds, width, peak = self._classes[cls]
                self._classes[cls] = (kinds, width, max(peak, count))

    # Latency -----------------------------------------------------------

    def _block_lb(self, block_id: int,
                  constraints: ResourceConstraints) -> int:
        bound = self._dep_lb[block_id]
        for cls, busy in self._busy[block_id].items():
            limit = constraints.limit(cls)
            if limit:
                bound = max(bound, math.ceil(busy / limit))
        return bound

    def _latency(self, region: Region, lengths: dict[int, int],
                 minimum: bool) -> int:
        """Region-tree aggregation of per-block step bounds.

        ``minimum=True`` gives the sound lower bound (shorter branch
        arm, minimum loop execution); ``minimum=False`` mirrors
        :func:`~repro.scheduling.total_steps` for ranking.
        """
        if isinstance(region, BlockRegion):
            return lengths.get(region.block.id, 0)
        if isinstance(region, SeqRegion):
            return sum(
                self._latency(item, lengths, minimum)
                for item in region.items
            )
        if isinstance(region, IfRegion):
            cond = lengths.get(region.cond_block.id, 0)
            then_steps = self._latency(region.then_region, lengths,
                                       minimum)
            else_steps = (
                self._latency(region.else_region, lengths, minimum)
                if region.else_region is not None else 0
            )
            arm = min if minimum else max
            return cond + arm(then_steps, else_steps)
        if isinstance(region, LoopRegion):
            body = self._latency(region.body, lengths, minimum)
            if region.trip_count is not None:
                trips = region.trip_count
            elif minimum:
                # A pre-test loop may exit on its first test; a
                # post-test body always runs at least once.
                trips = 1 if region.test_in_body else 0
            else:
                trips = self.ranking_trips
            if region.test_in_body:
                return trips * body
            test = lengths.get(region.test_block.id, 0)
            return (trips + 1) * test + trips * body
        raise TypeError(f"unknown region {region!r}")

    def aggregate_latency(self, lengths: dict[int, int],
                          minimum: bool = False) -> int:
        """Aggregate per-block step counts over the region tree.

        The funnel's schedule-only level feeds *actual* schedule
        lengths through the same region arithmetic the estimates use
        (``minimum=False`` mirrors :func:`~repro.scheduling.total_steps`
        with ``ranking_trips`` for unknown-trip loops).
        """
        return self._latency(self.cdfg.body, lengths, minimum)

    # Area --------------------------------------------------------------

    def _fu_area(self, constraints: ResourceConstraints) -> float:
        total = 0.0
        for cls, (kinds, width, peak) in sorted(self._classes.items()):
            units = peak
            limit = constraints.limit(cls)
            if limit is not None:
                units = min(units, limit)
            supported = {
                kind for kind in kinds
                if any(kind in component.kinds
                       for component in self.library)
            }
            if not supported:
                # Pure register transfers (bare moves) — no FU needed.
                continue
            component = self.library.cheapest_for(supported, width)
            total += units * component.area(width)
        return total

    def _clock_ns(self) -> float:
        """Optimistic single-phase clock: the slowest class's cheapest
        component plus register setup (no multiplexing term —
        allocation decides muxes)."""
        slowest = 0.0
        for cls, (kinds, width, _) in self._classes.items():
            supported = {
                kind for kind in kinds
                if any(kind in component.kinds
                       for component in self.library)
            }
            if not supported:
                continue
            try:
                component = self.library.cheapest_for(supported, width)
            except BindingError:  # pragma: no cover - defensive
                continue
            slowest = max(slowest, component.delay_ns)
        return slowest + REGISTER_SETUP_NS

    # Entry point -------------------------------------------------------

    def estimate(self, constraints: ResourceConstraints | None = None,
                 ) -> QoREstimate:
        """Bound/estimate QoR under ``constraints`` (None = unlimited)."""
        constraints = constraints or ResourceConstraints.unlimited()
        lengths = {
            block_id: self._block_lb(block_id, constraints)
            for block_id in self._dep_lb
        }
        ranking = self._latency(self.cdfg.body, lengths, minimum=False)
        lower = self._latency(self.cdfg.body, lengths, minimum=True)
        # Registers for every declared port and variable, controller
        # states for every structurally distinct step.
        storage_bits = sum(
            getattr(port.type, "width", 0)
            for port in (*self.cdfg.inputs, *self.cdfg.outputs)
        ) + sum(
            getattr(type_, "width", 0)
            for type_ in self.cdfg.variables.values()
        )
        states = max(sum(lengths.values()), 1)
        state_bits = max(1, math.ceil(math.log2(states + 1)))
        area = (
            self._fu_area(constraints)
            + REGISTER_AREA_PER_BIT * storage_bits
            + CONTROLLER_AREA_PER_STATE_BIT * state_bits * states
        )
        return QoREstimate(
            latency_csteps=ranking,
            latency_lb_csteps=lower,
            area=area,
            clock_ns=self._clock_ns(),
        )


def estimate_qor(cdfg: CDFG,
                 constraints: ResourceConstraints | None = None,
                 model: ResourceModel | None = None,
                 library: ComponentLibrary | None = None,
                 ranking_trips: int = DEFAULT_RANKING_TRIPS,
                 ) -> QoREstimate:
    """One-shot convenience over :class:`QoRModel` (build + estimate)."""
    return QoRModel(
        cdfg, model=model, library=library, ranking_trips=ranking_trips
    ).estimate(constraints)
