"""Linear floorplanning and wiring estimation (BUD/PLEST role).

§4: "Estimation of performance and area at the layout level is
performed by BUD, and PLEST performs area estimation, but more research
on this topic is needed."  And §2 makes a wiring claim this module lets
the benches test: "Buses, which can be seen as distributed multiplexers,
offer the advantage of requiring less wiring, but they may be slower
than multiplexers."

Model: a classic 1-D datapath floorplan — every component (registers,
FUs, muxes, memories) occupies a slot on a row.  Slot order is chosen
by a deterministic barycentric pass (components are iteratively moved
toward the mean position of their neighbours), then wiring is measured:

* **mux interconnect** — every net is a point-to-point wire; length =
  Σ |slot(driver) − slot(sink)| over all net pins;
* **bus interconnect** — transfers share bus wires; each bus's length
  is the span between its leftmost and rightmost terminal, and total
  wiring = Σ bus spans + the short taps from terminals to the bus.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from ..allocation.interconnect import (
    allocate_buses,
    estimate_interconnect,
)
from ..datapath.netlist import DatapathNetlist, build_netlist

if TYPE_CHECKING:  # pragma: no cover
    from ..core.design import SynthesizedDesign


@dataclass
class Floorplan:
    """A 1-D placement: component name → slot index."""

    slots: dict[str, int] = field(default_factory=dict)

    def distance(self, a: str, b: str) -> int:
        return abs(self.slots[a] - self.slots[b])

    @property
    def width(self) -> int:
        return len(self.slots)


def place_linear(netlist: DatapathNetlist, passes: int = 8) -> Floorplan:
    """Deterministic barycentric linear placement.

    Starts from name order and repeatedly sorts components by the mean
    slot of their connected partners — a light-weight stand-in for the
    min-cut placers BUD used, adequate for *relative* wiring numbers.
    """
    names = sorted(netlist.components)
    order = list(names)

    neighbors: dict[str, list[str]] = {name: [] for name in names}
    for net in netlist.nets:
        driver = net.driver.component.name
        for sink in net.sinks:
            neighbors[driver].append(sink.component.name)
            neighbors[sink.component.name].append(driver)

    for _ in range(passes):
        slots = {name: index for index, name in enumerate(order)}

        def barycenter(name: str) -> float:
            linked = neighbors[name]
            if not linked:
                return slots[name]
            return sum(slots[n] for n in linked) / len(linked)

        order = sorted(order, key=lambda name: (barycenter(name), name))

    return Floorplan({name: index for index, name in enumerate(order)})


@dataclass
class WiringEstimate:
    """Total wire length (in slot pitches) under both interconnect
    styles, for the same placement."""

    mux_wire_length: int
    bus_wire_length: int
    bus_count: int

    def report(self) -> str:
        return (
            f"wiring: point-to-point(mux)={self.mux_wire_length} "
            f"pitches, shared buses={self.bus_wire_length} pitches "
            f"on {self.bus_count} buses"
        )


def estimate_wiring(design: "SynthesizedDesign",
                    floorplan: Floorplan | None = None,
                    netlist: DatapathNetlist | None = None
                    ) -> WiringEstimate:
    """Measure mux-style vs bus-style wiring for a synthesized design."""
    if netlist is None:
        netlist = build_netlist(design)
    if floorplan is None:
        floorplan = place_linear(netlist)

    mux_length = 0
    for net in netlist.nets:
        driver = net.driver.component.name
        for sink in net.sinks:
            mux_length += floorplan.distance(driver, sink.component.name)

    # Bus wiring: group the designs' transfers onto buses (per step,
    # per source — see allocate_buses), then charge each bus its span
    # over the terminals it ever touches, plus one pitch per tap.
    bus_terminals: dict[int, set[str]] = {}
    total_transfers = 0
    for allocation in design.allocations.values():
        estimate = estimate_interconnect(allocation)
        buses = allocate_buses(estimate)
        for step, source, destination in estimate.transfers:
            bus = buses.bus_of[(step, source)]
            terminals = bus_terminals.setdefault(bus, set())
            terminals.add(_terminal_name(source))
            terminals.add(_terminal_name(destination))
            total_transfers += 1

    bus_length = 0
    for terminals in bus_terminals.values():
        slots = [
            floorplan.slots[name]
            for name in terminals
            if name in floorplan.slots
        ]
        if len(slots) >= 2:
            bus_length += max(slots) - min(slots)
        bus_length += len(slots)  # taps
    return WiringEstimate(
        mux_wire_length=mux_length,
        bus_wire_length=bus_length,
        bus_count=len(bus_terminals),
    )


def _terminal_name(endpoint: tuple) -> str:
    if endpoint[0] == "reg":
        return f"r{endpoint[1]}"
    if endpoint[0] == "regin":
        return f"r{endpoint[1]}"
    if endpoint[0] == "fu":
        return f"{endpoint[1]}{endpoint[2]}"
    if endpoint[0] == "fuport":
        return f"{endpoint[1]}{endpoint[2]}"
    if endpoint[0] == "const":
        return f"const_{abs(hash(endpoint[1])) % 10_000}"
    return f"logic{endpoint[1]}"
