"""Timing estimation: clock period and activation latency.

First-order single-phase model: the clock must cover the slowest bound
component, one level of operand multiplexing, chained free logic
(constant shifts are wiring, so only muxes and the FU matter) and
register setup.  Latency is simply cycles x period — the figure of
merit the paper's speed/area trade-off discussions use.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..allocation.interconnect import estimate_interconnect
from ..core.design import SynthesizedDesign

MUX_DELAY_NS = 2.0
REGISTER_SETUP_NS = 1.5
DEFAULT_FU_DELAY_NS = 10.0


@dataclass
class TimingEstimate:
    """Clock and latency summary."""

    clock_ns: float
    cycles: int

    @property
    def latency_ns(self) -> float:
        return self.clock_ns * self.cycles

    def report(self) -> str:
        return (
            f"timing: clock {self.clock_ns:.1f} ns x {self.cycles} "
            f"cycles = {self.latency_ns:.1f} ns"
        )


def estimate_clock_period(design: SynthesizedDesign) -> float:
    """Estimated minimum clock period in ns."""
    fu_delay = DEFAULT_FU_DELAY_NS
    if design.binding is not None and design.binding.components:
        fu_delay = design.binding.max_delay_ns()
    has_mux = any(
        estimate_interconnect(allocation).mux_count > 0
        for allocation in design.allocations.values()
    )
    mux_delay = MUX_DELAY_NS if has_mux else 0.0
    return fu_delay + mux_delay + REGISTER_SETUP_NS


def estimate_timing(design: SynthesizedDesign,
                    cycles: int) -> TimingEstimate:
    """Combine the clock estimate with a measured cycle count."""
    return TimingEstimate(estimate_clock_period(design), cycles)
