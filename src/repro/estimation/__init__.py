"""Area, timing and wiring estimation (the BUD/PLEST role of §4)."""

from .area import AreaEstimate, estimate_area
from .floorplan import (
    Floorplan,
    WiringEstimate,
    estimate_wiring,
    place_linear,
)
from .timing import TimingEstimate, estimate_clock_period, estimate_timing

__all__ = [
    "AreaEstimate",
    "Floorplan",
    "TimingEstimate",
    "WiringEstimate",
    "estimate_area",
    "estimate_clock_period",
    "estimate_timing",
    "estimate_wiring",
    "place_linear",
]
