"""Area, timing and wiring estimation (the BUD/PLEST role of §4)."""

from .area import AreaEstimate, estimate_area
from .floorplan import (
    Floorplan,
    WiringEstimate,
    estimate_wiring,
    place_linear,
)
from .qor import DEFAULT_RANKING_TRIPS, QoREstimate, QoRModel, estimate_qor
from .timing import TimingEstimate, estimate_clock_period, estimate_timing

__all__ = [
    "AreaEstimate",
    "DEFAULT_RANKING_TRIPS",
    "Floorplan",
    "QoREstimate",
    "QoRModel",
    "TimingEstimate",
    "WiringEstimate",
    "estimate_area",
    "estimate_clock_period",
    "estimate_qor",
    "estimate_timing",
    "estimate_wiring",
    "place_linear",
]
