"""Hardware data types for the behavioral IR.

The tutorial's algorithmic level works on "integers and/or bit strings
and arrays, rather than boolean variables".  We model that with three
concrete types:

* :class:`IntType` — a two's-complement (or unsigned) integer of a fixed
  bit width.  Arithmetic wraps modulo ``2**width`` exactly as a hardware
  register would, which is what makes the paper's two-bit loop-counter
  trick (``I = 3`` then ``I + 1`` gives ``0``) behave correctly.
* :class:`FixedType` — a fixed-point number: an integer of ``width``
  bits whose real value is the stored integer divided by
  ``2**frac_bits``.  The square-root example's constants (0.222222,
  0.888889, 0.5) live in this type; multiplying by 0.5 is exactly a
  right shift by one, which is the strength reduction the paper applies.
* :class:`ArrayType` — a fixed-length array of a scalar element type,
  implemented in hardware as an addressable memory.

``BOOL`` is a 1-bit unsigned integer, the natural result type of
comparisons.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class Type:
    """Base class for IR types.  Instances are immutable and hashable."""

    def __str__(self) -> str:  # pragma: no cover - overridden
        return self.__class__.__name__


@dataclass(frozen=True)
class IntType(Type):
    """A fixed-width integer.

    Args:
        width: number of bits, at least 1.
        signed: two's-complement interpretation when True.
    """

    width: int
    signed: bool = True

    def __post_init__(self) -> None:
        if self.width < 1:
            raise ValueError(f"integer width must be >= 1, got {self.width}")

    @property
    def min_value(self) -> int:
        return -(1 << (self.width - 1)) if self.signed else 0

    @property
    def max_value(self) -> int:
        if self.signed:
            return (1 << (self.width - 1)) - 1
        return (1 << self.width) - 1

    def wrap(self, value: int) -> int:
        """Reduce ``value`` into this type's range, hardware-style.

        Unsigned types wrap modulo ``2**width``; signed types wrap the
        two's-complement bit pattern.
        """
        mask = (1 << self.width) - 1
        value &= mask
        if self.signed and value > self.max_value:
            value -= 1 << self.width
        return value

    def __str__(self) -> str:
        prefix = "int" if self.signed else "uint"
        return f"{prefix}<{self.width}>"


@dataclass(frozen=True)
class FixedType(Type):
    """A fixed-point number: ``width`` total bits, ``frac_bits`` of them
    fractional.  The stored integer ``i`` represents ``i / 2**frac_bits``.

    Args:
        width: total bit width including fraction and sign.
        frac_bits: number of fractional bits (0 <= frac_bits < width).
        signed: two's-complement when True.
    """

    width: int
    frac_bits: int
    signed: bool = True

    def __post_init__(self) -> None:
        if self.width < 1:
            raise ValueError(f"fixed width must be >= 1, got {self.width}")
        if not 0 <= self.frac_bits < self.width:
            raise ValueError(
                f"frac_bits must be in [0, width), got {self.frac_bits}"
            )

    @property
    def scale(self) -> int:
        """The denominator ``2**frac_bits``."""
        return 1 << self.frac_bits

    def quantize(self, real: float) -> float:
        """Round ``real`` to the nearest representable value and wrap.

        Rounds half away from zero (the usual DSP convention), then
        wraps the stored integer into the type's bit width.
        """
        scaled = real * self.scale
        stored = int(scaled + 0.5) if scaled >= 0 else -int(-scaled + 0.5)
        as_int = IntType(self.width, self.signed)
        return as_int.wrap(stored) / self.scale

    def __str__(self) -> str:
        prefix = "fixed" if self.signed else "ufixed"
        return f"{prefix}<{self.width},{self.frac_bits}>"


@dataclass(frozen=True)
class ArrayType(Type):
    """A fixed-length array of scalar elements, realized as a memory.

    Args:
        element: scalar element type (IntType or FixedType).
        length: number of elements, at least 1.
    """

    element: Type
    length: int

    def __post_init__(self) -> None:
        if isinstance(self.element, ArrayType):
            raise ValueError("arrays of arrays are not supported")
        if self.length < 1:
            raise ValueError(f"array length must be >= 1, got {self.length}")

    @property
    def address_width(self) -> int:
        """Bits needed to address every element."""
        return max(1, (self.length - 1).bit_length())

    def __str__(self) -> str:
        return f"{self.element}[{self.length}]"


BOOL = IntType(1, signed=False)
"""The 1-bit unsigned type produced by comparisons and logic reductions."""


# ----------------------------------------------------------------------
# Interning.  Types are immutable value objects, but the hot paths
# (``common_type`` on every binary op, ``Value`` creation on every
# emitted/cloned op) construct fresh instances; a big DFG ends up
# holding thousands of identical IntType/FixedType objects.  Interning
# collapses them to one canonical instance per distinct type.  The
# table is tiny (a handful of widths per design) and process-global;
# the toggle exists so the perf harness can measure the delta.

_INTERN_ENABLED = True
_INTERNED: dict[Type, Type] = {}


def set_type_interning(enabled: bool) -> bool:
    """Enable/disable type interning; returns the previous setting."""
    global _INTERN_ENABLED
    previous = _INTERN_ENABLED
    _INTERN_ENABLED = enabled
    return previous


def intern_type(type_: Type) -> Type:
    """The canonical shared instance equal to ``type_``."""
    if not _INTERN_ENABLED:
        return type_
    canonical = _INTERNED.get(type_)
    if canonical is None:
        _INTERNED[type_] = canonical = type_
    return canonical


def is_scalar(type_: Type) -> bool:
    """True for types a register can hold (ints and fixed-point)."""
    return isinstance(type_, (IntType, FixedType))


def bit_width(type_: Type) -> int:
    """Total storage width in bits of any IR type."""
    if isinstance(type_, (IntType, FixedType)):
        return type_.width
    if isinstance(type_, ArrayType):
        return bit_width(type_.element) * type_.length
    raise TypeError(f"unknown type {type_!r}")


def common_type(a: Type, b: Type) -> Type:
    """The result type of a binary arithmetic operation on ``a`` and ``b``.

    Widths widen to the maximum; mixing int and fixed promotes to fixed
    with the larger fraction; signedness is sticky (signed wins).
    """
    if isinstance(a, ArrayType) or isinstance(b, ArrayType):
        raise TypeError("arithmetic on array types is not defined")
    signed = getattr(a, "signed", True) or getattr(b, "signed", True)
    a_frac = a.frac_bits if isinstance(a, FixedType) else 0
    b_frac = b.frac_bits if isinstance(b, FixedType) else 0
    frac = max(a_frac, b_frac)
    width = max(a.width, b.width)
    if frac == 0:
        return intern_type(IntType(width, signed))
    return intern_type(FixedType(max(width, frac + 1), frac, signed))
