"""Core IR objects: values, operations and basic blocks.

The representation follows the tutorial's description of graph-based
internal forms: within a basic block, operations form a data-flow graph
whose arcs are :class:`Value` objects — "each value produced by one
operation and consumed by another is represented uniquely by an arc".
A value therefore has exactly one producer and any number of consumers.

Variables of the source program only appear at block boundaries, as
``VAR_READ`` sources (upward-exposed uses) and ``VAR_WRITE`` sinks (the
final assignment in the block).  Inside a block the builder renames
through values directly, which "removes the dependence on the way
internal variables are used in the specification" (paper §2) and is what
lets schedulers and allocators reorder freely.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Iterator

from ..errors import IRError
from .opcodes import OpKind, op_info
from .types import BOOL, Type, intern_type

if TYPE_CHECKING:  # pragma: no cover
    from .cdfg import CDFG


class Value:
    """A dataflow arc: produced once, consumed anywhere in the block.

    Attributes:
        id: unique (per CDFG) integer identity; tie-break key everywhere.
        type: the value's scalar type.
        producer: the operation whose result this is.
        name: optional source-level name hint for diagnostics.
        uses: list of (operation, operand index) pairs consuming it.
    """

    __slots__ = ("id", "type", "producer", "name", "uses")

    def __init__(self, id: int, type_: Type, producer: "Operation",
                 name: str | None = None) -> None:
        self.id = id
        # Interned: equal types share one instance, so a large DFG
        # holds one IntType per distinct width instead of one per arc.
        self.type = intern_type(type_)
        self.producer = producer
        self.name = name
        self.uses: list[tuple[Operation, int]] = []

    @property
    def consumers(self) -> list["Operation"]:
        """Operations that read this value (with duplicates if an op
        uses it in several operand slots)."""
        return [op for op, _ in self.uses]

    def __repr__(self) -> str:
        hint = f":{self.name}" if self.name else ""
        return f"v{self.id}{hint}"


class Operation:
    """One node of a block's data-flow graph.

    Attributes:
        id: unique (per CDFG) integer identity.
        kind: the :class:`OpKind`.
        operands: input values, in positional order.
        result: the produced value, or None for sinks (writes, stores).
        block: owning basic block.
        attrs: kind-specific attributes — ``value`` for CONST, ``var``
            for VAR_READ/VAR_WRITE, ``memory`` for LOAD/STORE.
    """

    __slots__ = ("id", "kind", "operands", "result", "block", "attrs")

    def __init__(self, id: int, kind: OpKind, operands: list[Value],
                 block: "BasicBlock", attrs: dict[str, Any] | None = None) -> None:
        self.id = id
        self.kind = kind
        self.operands = list(operands)
        self.result: Value | None = None
        self.block = block
        self.attrs: dict[str, Any] = dict(attrs or {})

    @property
    def info(self):
        return op_info(self.kind)

    def operand_producers(self) -> Iterator["Operation"]:
        """Producers of this op's operands (the DFG predecessors)."""
        for value in self.operands:
            yield value.producer

    def replace_operand(self, index: int, new_value: Value) -> None:
        """Rewire operand ``index`` to ``new_value``, keeping use lists."""
        old = self.operands[index]
        old.uses.remove((self, index))
        self.operands[index] = new_value
        new_value.uses.append((self, index))

    def describe(self) -> str:
        """A one-line human-readable rendering for dumps and DOT labels."""
        if self.kind is OpKind.CONST:
            return f"const {self.attrs['value']}"
        if self.kind is OpKind.VAR_READ:
            return f"read {self.attrs['var']}"
        if self.kind is OpKind.VAR_WRITE:
            return f"{self.attrs['var']} := {self.operands[0]!r}"
        if self.kind in (OpKind.LOAD, OpKind.STORE):
            return f"{self.kind.value} {self.attrs['memory']}"
        return self.info.symbol

    def __repr__(self) -> str:
        res = f"{self.result!r} = " if self.result is not None else ""
        args = ", ".join(repr(v) for v in self.operands)
        return f"op{self.id}<{res}{self.kind.value}({args})>"


class BasicBlock:
    """A straight-line region: a bag of operations forming one DFG.

    Operations are stored in emission (program) order, but that order is
    only a *valid* topological order of the DFG — the data-flow graph is
    the authoritative source of ordering constraints, exactly as in the
    paper's Fig. 1 discussion.
    """

    __slots__ = ("id", "cdfg", "name", "ops")

    def __init__(self, id: int, cdfg: "CDFG", name: str | None = None) -> None:
        self.id = id
        self.cdfg = cdfg
        self.name = name or f"bb{id}"
        self.ops: list[Operation] = []

    # ------------------------------------------------------------------
    # Emission API (used by the frontend lowering and by workloads that
    # build CDFGs programmatically).
    # ------------------------------------------------------------------

    def emit(self, kind: OpKind, operands: list[Value] | None = None,
             result_type: Type | None = None, name: str | None = None,
             **attrs: Any) -> Operation:
        """Append an operation; create and return it.

        ``result_type`` must be given exactly when the kind produces a
        result.  Comparison kinds may omit it (defaults to BOOL).
        """
        operands = operands or []
        info = op_info(kind)
        if info.arity >= 0 and len(operands) != info.arity:
            raise IRError(
                f"{kind} expects {info.arity} operands, got {len(operands)}"
            )
        op = Operation(self.cdfg.next_op_id(), kind, operands, self, attrs)
        for index, value in enumerate(operands):
            value.uses.append((op, index))
        if info.has_result:
            if result_type is None:
                if not info.is_compare:
                    raise IRError(f"{kind} needs an explicit result type")
                result_type = BOOL
            op.result = Value(self.cdfg.next_value_id(), result_type, op, name)
        self.ops.append(op)
        return op

    def const(self, value, type_: Type, name: str | None = None) -> Value:
        """Emit a CONST op and return its value."""
        op = self.emit(OpKind.CONST, [], type_, name=name, value=value)
        assert op.result is not None
        return op.result

    def read(self, var: str, type_: Type) -> Value:
        """Emit a VAR_READ of ``var`` and return its value."""
        op = self.emit(OpKind.VAR_READ, [], type_, name=var, var=var)
        assert op.result is not None
        return op.result

    def write(self, var: str, value: Value) -> Operation:
        """Emit the VAR_WRITE sink assigning ``value`` to ``var``."""
        return self.emit(OpKind.VAR_WRITE, [value], var=var)

    # ------------------------------------------------------------------
    # Mutation helpers used by the transform passes.
    # ------------------------------------------------------------------

    def remove_op(self, op: Operation) -> None:
        """Remove a dead operation (its result must be unused)."""
        if op.result is not None and op.result.uses:
            raise IRError(f"cannot remove {op!r}: result still has uses")
        for index, value in enumerate(op.operands):
            value.uses.remove((op, index))
        self.ops.remove(op)

    def replace_all_uses(self, old: Value, new: Value) -> None:
        """Redirect every use of ``old`` to ``new``."""
        if old is new:
            return
        for op, index in list(old.uses):
            op.replace_operand(index, new)

    def retopo(self) -> None:
        """Re-sort ``ops`` into a valid topological order of the DFG.

        Transform passes that rewire operands can leave the list order
        inconsistent with data dependences; this restores the invariant
        (stable: preserves current relative order among independent ops).
        """
        placed: set[int] = set()
        ordered: list[Operation] = []
        remaining = list(self.ops)
        while remaining:
            progressed = False
            still: list[Operation] = []
            for op in remaining:
                ready = all(
                    value.producer.block is not self
                    or value.producer.id in placed
                    for value in op.operands
                )
                if ready:
                    ordered.append(op)
                    placed.add(op.id)
                    progressed = True
                else:
                    still.append(op)
            if not progressed:
                raise IRError(f"cycle in block {self.name} data-flow graph")
            remaining = still
        self.ops = ordered

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    def var_writes(self) -> dict[str, Operation]:
        """Map variable name -> its VAR_WRITE sink in this block."""
        return {
            op.attrs["var"]: op
            for op in self.ops
            if op.kind is OpKind.VAR_WRITE
        }

    def var_reads(self) -> dict[str, list[Operation]]:
        """Map variable name -> VAR_READ ops in this block."""
        reads: dict[str, list[Operation]] = {}
        for op in self.ops:
            if op.kind is OpKind.VAR_READ:
                reads.setdefault(op.attrs["var"], []).append(op)
        return reads

    def compute_ops(self) -> list[Operation]:
        """Operations other than the free data plumbing kinds."""
        plumbing = (OpKind.CONST, OpKind.VAR_READ, OpKind.VAR_WRITE, OpKind.NOP)
        return [op for op in self.ops if op.kind not in plumbing]

    def validate(self) -> None:
        """Check block-local IR invariants; raise :class:`IRError`."""
        seen: set[int] = set()
        for op in self.ops:
            for index, value in enumerate(op.operands):
                if (op, index) not in value.uses:
                    raise IRError(f"{op!r} operand {index} missing from uses")
                if value.producer.block is self and value.producer.id not in seen:
                    raise IRError(
                        f"{op!r} uses {value!r} before its producer in {self.name}"
                    )
            seen.add(op.id)
            if op.result is not None:
                for user, index in op.result.uses:
                    if user.operands[index] is not op.result:
                        raise IRError(f"stale use entry on {op.result!r}")

    def __iter__(self) -> Iterator[Operation]:
        return iter(self.ops)

    def __len__(self) -> int:
        return len(self.ops)

    def __repr__(self) -> str:
        return f"<BasicBlock {self.name} ({len(self.ops)} ops)>"
