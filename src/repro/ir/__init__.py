"""Behavioral intermediate representation (CDFG) of the repro library.

The public surface re-exports the types, opcodes and graph containers
that the rest of the flow (and library users building CDFGs by hand)
need.
"""

from .cdfg import (
    CDFG,
    BlockRegion,
    IfRegion,
    LoopRegion,
    Port,
    Region,
    SeqRegion,
)
from .dfg import (
    critical_path_length,
    dependence_graph,
    path_length_from_source,
    path_length_to_sink,
    topological_order,
)
from .dot import cdfg_dot, dataflow_dot
from .opcodes import COMMUTATIVE, COMPARISONS, OpKind, op_info
from .types import (
    BOOL,
    ArrayType,
    FixedType,
    IntType,
    Type,
    bit_width,
    common_type,
    is_scalar,
)
from .values import BasicBlock, Operation, Value

__all__ = [
    "BOOL",
    "ArrayType",
    "BasicBlock",
    "BlockRegion",
    "CDFG",
    "COMMUTATIVE",
    "COMPARISONS",
    "FixedType",
    "IfRegion",
    "IntType",
    "LoopRegion",
    "OpKind",
    "Operation",
    "Port",
    "Region",
    "SeqRegion",
    "Type",
    "Value",
    "bit_width",
    "cdfg_dot",
    "common_type",
    "critical_path_length",
    "dataflow_dot",
    "dependence_graph",
    "is_scalar",
    "op_info",
    "path_length_from_source",
    "path_length_to_sink",
    "topological_order",
]
