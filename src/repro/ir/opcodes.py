"""Operation kinds for the data-flow graph, with per-kind metadata.

Each :class:`OpKind` carries the static facts the rest of the flow needs:
its arity, its printable symbol, whether it is commutative (used by CSE
to canonicalize), and which *default functional-unit class* executes it.
The FU class is only a default — resource models and component libraries
may remap kinds (e.g. the paper's "trivial special case" maps everything
onto one universal functional unit).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass


class OpKind(enum.Enum):
    """Every operation the behavioral IR can express."""

    # Data sources and sinks
    CONST = "const"          # literal; value in attrs["value"]
    VAR_READ = "var_read"    # upward-exposed read of a variable
    VAR_WRITE = "var_write"  # final write of a variable in a block
    # Arithmetic
    ADD = "add"
    SUB = "sub"
    MUL = "mul"
    DIV = "div"
    MOD = "mod"
    INC = "inc"              # x + 1 after strength reduction
    DEC = "dec"              # x - 1 after strength reduction
    NEG = "neg"
    SHL = "shl"              # shift left; amount is second operand
    SHR = "shr"              # shift right; amount is second operand
    # Bitwise / logical
    AND = "and"
    OR = "or"
    XOR = "xor"
    NOT = "not"
    # Comparison (result type BOOL)
    EQ = "eq"
    NE = "ne"
    LT = "lt"
    LE = "le"
    GT = "gt"
    GE = "ge"
    # Selection (from if-conversion): MUX(cond, if_true, if_false)
    MUX = "mux"
    # Memory
    LOAD = "load"            # LOAD(index); memory name in attrs["memory"]
    STORE = "store"          # STORE(index, value); name in attrs["memory"]
    # Scheduling boundary marker (the paper's "dummy nodes")
    NOP = "nop"

    def __str__(self) -> str:
        return self.value


@dataclass(frozen=True)
class OpInfo:
    """Static metadata for one :class:`OpKind`."""

    arity: int                  # number of operands (-1 = variable)
    symbol: str                 # printable operator symbol
    commutative: bool = False
    has_result: bool = True
    fu_class: str | None = None  # default functional-unit class; None = free
    is_compare: bool = False


_INFO: dict[OpKind, OpInfo] = {
    OpKind.CONST: OpInfo(0, "const", fu_class=None),
    OpKind.VAR_READ: OpInfo(0, "read", fu_class=None),
    OpKind.VAR_WRITE: OpInfo(1, "write", has_result=False, fu_class=None),
    OpKind.ADD: OpInfo(2, "+", commutative=True, fu_class="add"),
    OpKind.SUB: OpInfo(2, "-", fu_class="add"),
    OpKind.MUL: OpInfo(2, "*", commutative=True, fu_class="mul"),
    OpKind.DIV: OpInfo(2, "/", fu_class="div"),
    OpKind.MOD: OpInfo(2, "mod", fu_class="div"),
    OpKind.INC: OpInfo(1, "+1", fu_class="add"),
    OpKind.DEC: OpInfo(1, "-1", fu_class="add"),
    OpKind.NEG: OpInfo(1, "neg", fu_class="add"),
    OpKind.SHL: OpInfo(2, "<<", fu_class="shift"),
    OpKind.SHR: OpInfo(2, ">>", fu_class="shift"),
    OpKind.AND: OpInfo(2, "&", commutative=True, fu_class="logic"),
    OpKind.OR: OpInfo(2, "|", commutative=True, fu_class="logic"),
    OpKind.XOR: OpInfo(2, "^", commutative=True, fu_class="logic"),
    OpKind.NOT: OpInfo(1, "~", fu_class="logic"),
    OpKind.EQ: OpInfo(2, "=", commutative=True, fu_class="cmp", is_compare=True),
    OpKind.NE: OpInfo(2, "/=", commutative=True, fu_class="cmp", is_compare=True),
    OpKind.LT: OpInfo(2, "<", fu_class="cmp", is_compare=True),
    OpKind.LE: OpInfo(2, "<=", fu_class="cmp", is_compare=True),
    OpKind.GT: OpInfo(2, ">", fu_class="cmp", is_compare=True),
    OpKind.GE: OpInfo(2, ">=", fu_class="cmp", is_compare=True),
    OpKind.MUX: OpInfo(3, "mux", fu_class=None),
    OpKind.LOAD: OpInfo(1, "load", fu_class="mem"),
    OpKind.STORE: OpInfo(2, "store", has_result=False, fu_class="mem"),
    OpKind.NOP: OpInfo(0, "nop", has_result=False, fu_class=None),
}


def op_info(kind: OpKind) -> OpInfo:
    """Metadata for ``kind``."""
    return _INFO[kind]


COMPARISONS = frozenset(k for k, i in _INFO.items() if i.is_compare)
"""All comparison kinds (result type BOOL)."""

COMMUTATIVE = frozenset(k for k, i in _INFO.items() if i.commutative)
"""All commutative binary kinds."""

#: Comparison kind obtained by swapping the operands of the key.
SWAPPED_COMPARE: dict[OpKind, OpKind] = {
    OpKind.LT: OpKind.GT,
    OpKind.GT: OpKind.LT,
    OpKind.LE: OpKind.GE,
    OpKind.GE: OpKind.LE,
    OpKind.EQ: OpKind.EQ,
    OpKind.NE: OpKind.NE,
}

#: Comparison kind computing the logical negation of the key.
NEGATED_COMPARE: dict[OpKind, OpKind] = {
    OpKind.LT: OpKind.GE,
    OpKind.GE: OpKind.LT,
    OpKind.GT: OpKind.LE,
    OpKind.LE: OpKind.GT,
    OpKind.EQ: OpKind.NE,
    OpKind.NE: OpKind.EQ,
}
