"""Graphviz (DOT) export of CDFGs, mirroring the paper's Fig. 1 style.

Two renderings are provided: :func:`dataflow_dot` draws one block's
data-flow graph (operations as nodes, values as arcs), and
:func:`cdfg_dot` draws the whole procedure — blocks as clusters with the
structured control edges between them — the "data-flow and control flow
graphs shown separately … for intelligibility" of Fig. 1.
"""

from __future__ import annotations

from .cdfg import CDFG, BlockRegion, IfRegion, LoopRegion, Region, SeqRegion
from .values import BasicBlock


def _escape(text: str) -> str:
    return text.replace("\\", "\\\\").replace('"', '\\"')


def dataflow_dot(block: BasicBlock, name: str | None = None) -> str:
    """DOT text for one block's data-flow graph."""
    lines = [f'digraph "{_escape(name or block.name)}" {{']
    lines.append("  node [shape=ellipse, fontname=Helvetica];")
    for op in block.ops:
        label = _escape(op.describe())
        lines.append(f'  op{op.id} [label="{label}"];')
    for op in block.ops:
        for value in op.operands:
            producer = value.producer
            if producer.block is block:
                hint = _escape(value.name or "")
                lines.append(f'  op{producer.id} -> op{op.id} [label="{hint}"];')
    lines.append("}")
    return "\n".join(lines)


def _control_lines(region: Region, lines: list[str],
                   counter: list[int]) -> tuple[str, str]:
    """Emit control nodes/edges for ``region``.

    Returns the (entry, exit) DOT node names of the region.
    """
    if isinstance(region, BlockRegion):
        node = f"cb{region.block.id}"
        lines.append(
            f'  {node} [shape=box, label="{_escape(region.block.name)}"];'
        )
        return node, node
    if isinstance(region, SeqRegion):
        if not region.items:
            counter[0] += 1
            node = f"empty{counter[0]}"
            lines.append(f'  {node} [shape=point];')
            return node, node
        firsts_lasts = [_control_lines(item, lines, counter)
                        for item in region.items]
        for (_, prev_exit), (next_entry, _) in zip(firsts_lasts,
                                                   firsts_lasts[1:]):
            lines.append(f"  {prev_exit} -> {next_entry};")
        return firsts_lasts[0][0], firsts_lasts[-1][1]
    if isinstance(region, IfRegion):
        cond = f"cb{region.cond_block.id}"
        lines.append(
            f'  {cond} [shape=diamond, label="{_escape(region.cond_block.name)}"];'
        )
        counter[0] += 1
        join = f"join{counter[0]}"
        lines.append(f"  {join} [shape=point];")
        then_entry, then_exit = _control_lines(region.then_region, lines, counter)
        lines.append(f'  {cond} -> {then_entry} [label="T"];')
        lines.append(f"  {then_exit} -> {join};")
        if region.else_region is not None:
            else_entry, else_exit = _control_lines(
                region.else_region, lines, counter
            )
            lines.append(f'  {cond} -> {else_entry} [label="F"];')
            lines.append(f"  {else_exit} -> {join};")
        else:
            lines.append(f'  {cond} -> {join} [label="F"];')
        return cond, join
    if isinstance(region, LoopRegion):
        body_entry, body_exit = _control_lines(region.body, lines, counter)
        label = "T" if region.exit_on_true else "F"
        if region.test_in_body:
            # Post-test loop: the test lives in the body's last block.
            lines.append(
                f'  {body_exit} -> {body_entry} '
                f'[style=dashed, label="loop (exit on {label})"];'
            )
            return body_entry, body_exit
        test = f"cb{region.test_block.id}"
        lines.append(
            f'  {test} [shape=diamond, label="{_escape(region.test_block.name)}"];'
        )
        lines.append(f"  {test} -> {body_entry};")
        lines.append(f"  {body_exit} -> {test} [style=dashed];")
        return test, test
    raise TypeError(f"unknown region {region!r}")


def cdfg_dot(cdfg: CDFG) -> str:
    """DOT text for the whole procedure: per-block DFG clusters plus the
    structured control skeleton."""
    lines = [f'digraph "{_escape(cdfg.name)}" {{']
    lines.append("  compound=true; fontname=Helvetica;")
    for block in cdfg.blocks():
        lines.append(f"  subgraph cluster_{block.id} {{")
        lines.append(f'    label="{_escape(block.name)}";')
        for op in block.ops:
            lines.append(
                f'    op{op.id} [shape=ellipse, '
                f'label="{_escape(op.describe())}"];'
            )
        for op in block.ops:
            for value in op.operands:
                if value.producer.block is block:
                    lines.append(f"    op{value.producer.id} -> op{op.id};")
        lines.append("  }")
    control: list[str] = []
    _control_lines(cdfg.body, control, [0])
    lines.extend(control)
    lines.append("}")
    return "\n".join(lines)
