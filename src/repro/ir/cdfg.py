"""The control/data flow graph: the IR of a behavioral procedure.

The tutorial (§2) uses "variations of graphs that contain both the
data-flow and the control flow implied by the specification".  We keep
the two views the same way Fig. 1 does:

* the **data-flow graph** lives inside each :class:`BasicBlock`
  (see :mod:`repro.ir.values`);
* the **control-flow graph** is a structured region tree —
  sequences, two-way branches and loops — mirroring the procedural
  source languages (Pascal, ISPS) the paper describes.

Structured control keeps loop boundaries explicit, which is what the
scheduling chapter needs: "the control graph can be packed into control
steps as tightly as possible, observing only the essential dependencies
required by the data-flow graph *and by the loop boundaries*".
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator

from ..errors import IRError, SourceLocation
from .types import ArrayType, Type, is_scalar
from .values import BasicBlock, Operation, Value


class Region:
    """Base class of the structured control tree."""

    def blocks(self) -> Iterator[BasicBlock]:
        """All basic blocks in this region, in execution order."""
        raise NotImplementedError

    def walk(self) -> Iterator["Region"]:
        """This region and all nested regions, pre-order."""
        yield self


@dataclass
class BlockRegion(Region):
    """A leaf region: one straight-line basic block."""

    block: BasicBlock

    def blocks(self) -> Iterator[BasicBlock]:
        yield self.block


@dataclass
class SeqRegion(Region):
    """Sequential composition of sub-regions."""

    items: list[Region] = field(default_factory=list)

    def blocks(self) -> Iterator[BasicBlock]:
        for item in self.items:
            yield from item.blocks()

    def walk(self) -> Iterator[Region]:
        yield self
        for item in self.items:
            yield from item.walk()


@dataclass
class IfRegion(Region):
    """Two-way branch.

    ``cond_block`` computes ``cond`` (and any straight-line code hoisted
    with it); then exactly one of ``then_region`` / ``else_region`` runs.
    ``else_region`` may be None.
    """

    cond_block: BasicBlock
    cond: Value
    then_region: Region
    else_region: Region | None = None

    def blocks(self) -> Iterator[BasicBlock]:
        yield self.cond_block
        yield from self.then_region.blocks()
        if self.else_region is not None:
            yield from self.else_region.blocks()

    def walk(self) -> Iterator[Region]:
        yield self
        yield from self.then_region.walk()
        if self.else_region is not None:
            yield from self.else_region.walk()


@dataclass
class LoopRegion(Region):
    """A loop in one of two canonical shapes.

    * Pre-test (``while``): ``test_block`` is separate and runs first
      each iteration; the loop exits when ``cond`` is false
      (``exit_on_true=False``).
    * Post-test (``repeat … until``): the condition is computed inside
      the *last block of the body* (``test_block`` is that block and
      ``test_in_body`` is True); the loop exits when ``cond`` is true.
      This matches the paper's sqrt example, where the exit comparison
      is one of the operations scheduled *with* the loop body.

    ``trip_count`` is an optional static iteration count used by loop
    unrolling and by schedule-length accounting (e.g. 3 + 4x5 = 23).
    """

    body: Region
    test_block: BasicBlock
    cond: Value
    exit_on_true: bool
    test_in_body: bool
    trip_count: int | None = None

    def blocks(self) -> Iterator[BasicBlock]:
        if not self.test_in_body:
            yield self.test_block
        yield from self.body.blocks()

    def walk(self) -> Iterator[Region]:
        yield self
        yield from self.body.walk()


@dataclass(frozen=True)
class Port:
    """A formal input or output of the procedure."""

    name: str
    type: Type


class CDFG:
    """A behavioral procedure, fully compiled to blocks and regions.

    Attributes:
        name: procedure name.
        inputs / outputs: formal ports, in declaration order.
        variables: every scalar variable (locals, inputs, outputs).
        memories: array variables, realized as addressable memories.
        body: the structured control region tree.
    """

    def __init__(self, name: str) -> None:
        self.name = name
        self.inputs: list[Port] = []
        self.outputs: list[Port] = []
        self.variables: dict[str, Type] = {}
        self.memories: dict[str, ArrayType] = {}
        self.body: Region = SeqRegion([])
        #: op id → source location, populated by the frontend.  Kept
        #: out of ``Operation.attrs`` on purpose: attrs participate in
        #: CSE keys and stage signatures, locations must not.
        self.source_map: dict[int, "SourceLocation"] = {}
        self._op_ids = 0
        self._value_ids = 0
        self._block_ids = 0

    # ------------------------------------------------------------------
    # Identity allocation
    # ------------------------------------------------------------------

    def next_op_id(self) -> int:
        self._op_ids += 1
        return self._op_ids

    def next_value_id(self) -> int:
        self._value_ids += 1
        return self._value_ids

    def new_block(self, name: str | None = None) -> BasicBlock:
        """Create a fresh, empty basic block owned by this CDFG."""
        self._block_ids += 1
        return BasicBlock(self._block_ids, self, name)

    # ------------------------------------------------------------------
    # Declarations
    # ------------------------------------------------------------------

    def add_input(self, name: str, type_: Type) -> None:
        self._declare(name, type_)
        self.inputs.append(Port(name, type_))

    def add_output(self, name: str, type_: Type) -> None:
        self._declare(name, type_)
        self.outputs.append(Port(name, type_))

    def add_variable(self, name: str, type_: Type) -> None:
        self._declare(name, type_)

    def _declare(self, name: str, type_: Type) -> None:
        if name in self.variables or name in self.memories:
            raise IRError(f"duplicate declaration of {name!r}")
        if isinstance(type_, ArrayType):
            self.memories[name] = type_
        elif is_scalar(type_):
            self.variables[name] = type_
        else:
            raise IRError(f"cannot declare {name!r} with type {type_}")

    def type_of(self, name: str) -> Type:
        """Declared type of a variable or memory."""
        if name in self.variables:
            return self.variables[name]
        if name in self.memories:
            return self.memories[name]
        raise IRError(f"unknown variable {name!r}")

    # ------------------------------------------------------------------
    # Whole-graph queries
    # ------------------------------------------------------------------

    def blocks(self) -> list[BasicBlock]:
        """Every basic block, in execution order."""
        return list(self.body.blocks())

    def operations(self) -> Iterator[Operation]:
        """Every operation in every block."""
        for block in self.blocks():
            yield from block.ops

    def loops(self) -> list[LoopRegion]:
        """Every loop region, outermost first."""
        return [r for r in self.body.walk() if isinstance(r, LoopRegion)]

    def count_ops(self) -> int:
        return sum(len(block) for block in self.blocks())

    def validate(self) -> None:
        """Check whole-graph invariants; raise :class:`IRError` on any
        violation.  Used liberally in tests and after each transform.
        """
        seen_blocks: set[int] = set()
        for block in self.blocks():
            if block.id in seen_blocks:
                raise IRError(f"block {block.name} appears twice in regions")
            seen_blocks.add(block.id)
            block.validate()
            for op in block.ops:
                if op.block is not block:
                    raise IRError(f"{op!r} has stale block pointer")
                for value in op.operands:
                    producer_block = value.producer.block
                    if producer_block.id not in seen_blocks:
                        raise IRError(
                            f"{op!r} uses {value!r} from a later/unreached "
                            f"block {producer_block.name}"
                        )
                if op.kind.value in ("var_read", "var_write"):
                    var = op.attrs["var"]
                    if var not in self.variables:
                        raise IRError(f"{op!r} touches undeclared var {var!r}")
                if op.kind.value in ("load", "store"):
                    mem = op.attrs["memory"]
                    if mem not in self.memories:
                        raise IRError(f"{op!r} touches undeclared memory {mem!r}")
        for region in self.body.walk():
            if isinstance(region, IfRegion):
                if region.cond.producer.block is not region.cond_block:
                    raise IRError(
                        f"if-condition {region.cond!r} not computed in its "
                        f"cond block"
                    )
            if isinstance(region, LoopRegion):
                cond_block = region.cond.producer.block
                if cond_block is not region.test_block:
                    raise IRError(
                        f"loop condition {region.cond!r} not computed in "
                        f"the loop's test block"
                    )

    def __repr__(self) -> str:
        return (
            f"<CDFG {self.name}: {len(self.blocks())} blocks, "
            f"{self.count_ops()} ops>"
        )
