"""Dependence-graph views over IR operations.

Schedulers and allocators never walk ``Value.uses`` directly; they
operate on an explicit *dependence graph* built here.  The graph
contains one node per operation (keyed by the operation's id, with the
operation object attached) and one edge per ordering constraint:

* ``data`` edges — the producer of an operand must run first.  These
  are the "essential ordering of operations … imposed by the data
  relations" of the paper's Fig. 1.
* ``memory`` edges — loads and stores on the same memory are
  serialized conservatively (store→store, store→load, load→store),
  since the IR performs no alias analysis beyond the memory name.
* ``var`` edges — when several blocks are fused into one scheduling
  region, a write of a variable in an earlier block must precede reads
  of it in later blocks.

All iteration orders are deterministic (sorted by operation id).
"""

from __future__ import annotations

from typing import Callable, Iterable

import networkx as nx

from ..errors import IRError
from .opcodes import OpKind
from .values import Operation

DelayFn = Callable[[Operation], int]


def dependence_graph(ops: Iterable[Operation]) -> nx.DiGraph:
    """Build the dependence DAG over ``ops``.

    ``ops`` must be in a valid execution order (block emission order, or
    concatenated block orders for fused regions); memory and variable
    edges are derived from that order.
    """
    ops = list(ops)
    graph = nx.DiGraph()
    in_set = {op.id for op in ops}
    for op in ops:
        graph.add_node(op.id, op=op)

    # Data edges.
    for op in ops:
        for value in op.operands:
            producer = value.producer
            if producer.id in in_set and producer.id != op.id:
                graph.add_edge(producer.id, op.id, reason="data")

    # Memory serialization edges (per memory, in program order).
    last_store: dict[str, Operation] = {}
    loads_since_store: dict[str, list[Operation]] = {}
    for op in ops:
        if op.kind is OpKind.LOAD:
            memory = op.attrs["memory"]
            if memory in last_store:
                graph.add_edge(last_store[memory].id, op.id, reason="memory")
            loads_since_store.setdefault(memory, []).append(op)
        elif op.kind is OpKind.STORE:
            memory = op.attrs["memory"]
            if memory in last_store:
                graph.add_edge(last_store[memory].id, op.id, reason="memory")
            for load in loads_since_store.get(memory, []):
                graph.add_edge(load.id, op.id, reason="memory")
            last_store[memory] = op
            loads_since_store[memory] = []

    # Cross-block variable edges (only relevant for fused regions).
    last_write: dict[str, Operation] = {}
    for op in ops:
        if op.kind is OpKind.VAR_READ:
            var = op.attrs["var"]
            if var in last_write and last_write[var].block is not op.block:
                graph.add_edge(last_write[var].id, op.id, reason="var")
        elif op.kind is OpKind.VAR_WRITE:
            last_write[op.attrs["var"]] = op

    if not nx.is_directed_acyclic_graph(graph):
        raise IRError("dependence graph has a cycle")
    return graph


def predecessors(graph: nx.DiGraph, op_id: int) -> list[int]:
    """Sorted predecessor ids of ``op_id``."""
    return sorted(graph.predecessors(op_id))


def successors(graph: nx.DiGraph, op_id: int) -> list[int]:
    """Sorted successor ids of ``op_id``."""
    return sorted(graph.successors(op_id))


def topological_order(graph: nx.DiGraph) -> list[int]:
    """A deterministic topological order (ties broken by smallest id)."""
    return list(nx.lexicographical_topological_sort(graph))


def op_of(graph: nx.DiGraph, op_id: int) -> Operation:
    """The operation object attached to node ``op_id``."""
    return graph.nodes[op_id]["op"]


def path_length_to_sink(graph: nx.DiGraph, delay: DelayFn,
                        order: list[int] | None = None) -> dict[int, int]:
    """For each op, the longest delay-weighted path from it to any sink.

    This is the classic list-scheduling priority the paper attributes to
    BUD: "the length of the path from the operation to the end of the
    block".  The length *includes* the op's own delay.  ``order`` lets
    callers reuse an already-computed topological order.
    """
    if order is None:
        order = topological_order(graph)
    lengths: dict[int, int] = {}
    for op_id in reversed(order):
        op = op_of(graph, op_id)
        best_succ = max(
            (lengths[succ] for succ in graph.successors(op_id)), default=0
        )
        lengths[op_id] = delay(op) + best_succ
    return lengths


def path_length_from_source(graph: nx.DiGraph, delay: DelayFn) -> dict[int, int]:
    """For each op, the longest delay-weighted path from any source up to
    (but not including) the op itself — i.e. its earliest possible start
    if resources were unlimited."""
    lengths: dict[int, int] = {}
    for op_id in topological_order(graph):
        best_pred = 0
        for pred in graph.predecessors(op_id):
            pred_op = op_of(graph, pred)
            best_pred = max(best_pred, lengths[pred] + delay(pred_op))
        lengths[op_id] = best_pred
    return lengths


def critical_path_length(graph: nx.DiGraph, delay: DelayFn) -> int:
    """Delay of the longest path through the DAG (0 for an empty graph)."""
    to_sink = path_length_to_sink(graph, delay)
    return max(to_sink.values(), default=0)


def transitive_predecessors(graph: nx.DiGraph, op_id: int) -> set[int]:
    """All ops that must execute before ``op_id``."""
    return nx.ancestors(graph, op_id)


def transitive_successors(graph: nx.DiGraph, op_id: int) -> set[int]:
    """All ops that must execute after ``op_id``."""
    return nx.descendants(graph, op_id)
