"""Failure shrinking and repro-script emission for the fuzzer.

When a differential run over a random DFG fails, the raw failing case
is typically dozens of ops — too big to debug by eye.  This module
wraps :func:`repro.workloads.shrink_recipe` with failure-predicate
plumbing (re-running the differential engine on candidate recipes) and
writes a standalone repro script to ``artifacts/`` that rebuilds the
minimal DFG and exits non-zero while the bug reproduces.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Callable, Sequence

from ..workloads.random_dfg import DFGRecipe, build_dfg, shrink_recipe
from .differential import DifferentialReport, run_differential


@dataclass
class ShrinkResult:
    """Outcome of shrinking one failing recipe."""

    original: DFGRecipe
    shrunk: DFGRecipe
    #: How many candidate recipes the predicate evaluated.
    attempts: int

    @property
    def removed_ops(self) -> int:
        return self.original.op_count - self.shrunk.op_count


def _constrained_options(fu_limit: int | None):
    """Synthesis options for an FU-limited repro, or None."""
    if fu_limit is None:
        return None
    from ..core import SynthesisOptions
    from ..scheduling import ResourceConstraints

    return SynthesisOptions(
        constraints=ResourceConstraints({"fu": fu_limit})
    )


def recipe_fails(recipe: DFGRecipe,
                 schedulers: Sequence[str],
                 allocators: Sequence[str],
                 fu_limit: int | None = None) -> bool:
    """True when the differential engine finds any failure."""
    try:
        report = run_differential(
            lambda: build_dfg(recipe),
            schedulers=schedulers,
            allocators=allocators,
            options=_constrained_options(fu_limit),
            label=recipe.name,
        )
    except Exception:
        # A candidate the pipeline cannot even process still counts as
        # failing only if the *original* failure was an uncaught crash;
        # for contract/divergence failures, treat it as not reproducing.
        return False
    return not report.ok


def shrink_failure(
    recipe: DFGRecipe,
    still_fails: Callable[[DFGRecipe], bool],
    min_ops: int = 1,
) -> ShrinkResult:
    """Shrink ``recipe`` while ``still_fails`` keeps returning True."""
    attempts = 0

    def counted(candidate: DFGRecipe) -> bool:
        nonlocal attempts
        attempts += 1
        return still_fails(candidate)

    shrunk = shrink_recipe(recipe, counted, min_ops=min_ops)
    return ShrinkResult(recipe, shrunk, attempts)


_SCRIPT_TEMPLATE = '''\
#!/usr/bin/env python
"""Auto-generated fuzzer repro.{notes}

Rebuilds the minimal failing DFG and re-runs the differential engine
over the combos that failed.  Exits 1 while the failure reproduces,
0 once it is fixed.

Run with the repro package importable, e.g.::

    PYTHONPATH=src python {basename}
"""

import sys

from repro.verify import run_differential
from repro.workloads import DFGRecipe, build_dfg

RECIPE = {recipe}

SCHEDULERS = {schedulers}
ALLOCATORS = {allocators}
FU_LIMIT = {fu_limit}


def main() -> int:
    options = None
    if FU_LIMIT is not None:
        from repro.core import SynthesisOptions
        from repro.scheduling import ResourceConstraints

        options = SynthesisOptions(
            constraints=ResourceConstraints({{"fu": FU_LIMIT}})
        )
    report = run_differential(
        lambda: build_dfg(RECIPE),
        schedulers=SCHEDULERS,
        allocators=ALLOCATORS,
        options=options,
        label=RECIPE.name,
    )
    print(report.render())
    return 1 if not report.ok else 0


if __name__ == "__main__":
    sys.exit(main())
'''


def write_repro_script(
    recipe: DFGRecipe,
    schedulers: Sequence[str],
    allocators: Sequence[str],
    path: str,
    notes: str = "",
    fu_limit: int | None = None,
) -> str:
    """Write a standalone repro script for a shrunk failure.

    Returns the path written.  The script depends only on the public
    ``repro`` API, so it stays valid as long as the recipe still
    triggers the bug.  The parent directory is created here, on the
    first actual write — a fuzzing run with zero failures must leave
    no ``artifacts/`` directory behind (pinned by tests).
    """
    body = _SCRIPT_TEMPLATE.format(
        notes=("\n\n" + notes) if notes else "",
        basename=os.path.basename(path),
        recipe=recipe.render(),
        schedulers=sorted(schedulers),
        allocators=sorted(allocators),
        fu_limit=fu_limit,
    )
    directory = os.path.dirname(path)
    if directory:
        os.makedirs(directory, exist_ok=True)
    with open(path, "w") as handle:
        handle.write(body)
    return path


def describe_failure(report: DifferentialReport) -> str:
    """One-line summary of a failing differential report."""
    failures = report.failures()
    if not failures:
        return "no failure"
    first = failures[0]
    return (
        f"{len(failures)} failing combo(s); first: "
        f"{first.scheduler} x {first.allocator} "
        f"status={first.status} stage={first.stage}"
    )
