"""Structured contract-violation records.

Every stage contract (:mod:`repro.verify.contracts`) returns a list of
:class:`Violation` records instead of raising, so callers can see *all*
the ways a design is broken at once, machine-process them (the fuzzer
keys on ``(stage, kind)``), and render them stably (the CLI's golden
output).  The stage checkers inside the pipeline
(:meth:`~repro.scheduling.base.Schedule.validate` and friends) keep
raising on the first problem — contracts are the diagnostic
counterpart, implemented independently so the two can cross-check each
other.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Mapping

#: Pipeline order of the contract stages — reports sort by it, and the
#: differential engine uses it to name the *first* diverging stage.
STAGE_ORDER: tuple[str, ...] = (
    "scheduling",
    "allocation",
    "binding",
    "controller",
    "netlist",
)


@dataclass(frozen=True)
class Violation:
    """One broken invariant, located and machine-readable.

    Attributes:
        stage: contract stage (one of :data:`STAGE_ORDER`).
        kind: short violation slug, e.g. ``"precedence"`` or
            ``"register-overlap"`` — stable across releases, the
            fuzzer and tests key on it.
        where: locus inside the design (block name, FSM state,
            component name, or ``"design"``).
        message: human-readable one-line description.
        subject: machine-readable details (op ids, steps, registers).
    """

    stage: str
    kind: str
    where: str
    message: str
    subject: Mapping[str, object] = field(default_factory=dict)

    def render(self) -> str:
        return f"[{self.stage}] {self.kind} @{self.where}: {self.message}"

    def sort_key(self) -> tuple:
        stage_rank = (
            STAGE_ORDER.index(self.stage)
            if self.stage in STAGE_ORDER
            else len(STAGE_ORDER)
        )
        return (stage_rank, self.where, self.kind, self.message)


@dataclass
class VerificationReport:
    """All violations one :func:`~repro.verify.contracts.verify_design`
    run found, plus which stages were checked."""

    design_name: str
    stages_checked: tuple[str, ...] = STAGE_ORDER
    violations: list[Violation] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.violations

    def by_stage(self) -> dict[str, list[Violation]]:
        grouped: dict[str, list[Violation]] = {}
        for violation in self.violations:
            grouped.setdefault(violation.stage, []).append(violation)
        return grouped

    def kinds(self) -> set[str]:
        return {violation.kind for violation in self.violations}

    def first_bad_stage(self) -> str | None:
        """Earliest pipeline stage with a violation (None when clean)."""
        bad = self.by_stage()
        for stage in STAGE_ORDER:
            if stage in bad:
                return stage
        return next(iter(bad), None)

    def extend(self, violations: Iterable[Violation]) -> None:
        self.violations.extend(violations)
        self.violations.sort(key=Violation.sort_key)

    def render(self) -> str:
        """Stable multi-line rendering (golden-tested)."""
        if self.ok:
            return (
                f"contracts for '{self.design_name}': PASS "
                f"({len(self.stages_checked)} stages, 0 violations)"
            )
        lines = [
            f"contracts for '{self.design_name}': FAIL "
            f"({len(self.violations)} violation"
            f"{'s' if len(self.violations) != 1 else ''})"
        ]
        for violation in sorted(self.violations, key=Violation.sort_key):
            lines.append(f"  {violation.render()}")
        return "\n".join(lines)

    def to_dict(self) -> dict:
        """JSON-serializable form (fuzzer artifacts embed it)."""
        return {
            "design": self.design_name,
            "ok": self.ok,
            "stages_checked": list(self.stages_checked),
            "violations": [
                {
                    "stage": v.stage,
                    "kind": v.kind,
                    "where": v.where,
                    "message": v.message,
                    "subject": dict(v.subject),
                }
                for v in sorted(self.violations, key=Violation.sort_key)
            ],
        }
