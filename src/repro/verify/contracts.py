"""Stage contracts: pure legality checkers over a synthesized design.

Each ``check_*`` function takes a complete (or partially complete)
:class:`~repro.core.design.SynthesizedDesign` and returns a list of
:class:`~repro.verify.violations.Violation` records — it never raises
and never mutates the design.  The checks are implemented directly on
the public data structures (schedule start maps, allocation maps, the
FSM state list, the derived netlist), *independently* of the pipeline's
own ``validate()`` methods, so a bug in a validator and a bug in a
checker would have to coincide to go unnoticed.

Contracts per stage:

* **scheduling** — every op scheduled at a non-negative step; every
  dependence edge respects the chaining rule; designer timing windows
  hold; no control step oversubscribes a resource class.
* **allocation** — every resource-using op mapped to an FU of its
  class; no FU runs two ops in overlapping occupancy windows; every
  register-needing value mapped; no register holds two overlapping
  lifetimes.
* **binding** — every FU executing computational ops has a component;
  the component implements every op kind mapped onto the unit; the
  bound width covers the widest operand/result.
* **controller** — an entry state exists; transition targets exist;
  conditional structure is well-formed; every state is reachable from
  the entry and can reach halt (no dead states); state steps lie
  inside their block's schedule.
* **netlist** — every net endpoint references a registered component;
  every mux has at least two selectable inputs and a driven output.

:func:`verify_design` aggregates all stages into one
:class:`~repro.verify.violations.VerificationReport`.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from ..allocation.lifetimes import compute_lifetimes
from ..analysis.liveness import live_out_variables
from ..ir.opcodes import OpKind
from ..ir.types import bit_width
from ..obs import metrics, trace_span
from .violations import STAGE_ORDER, VerificationReport, Violation

if TYPE_CHECKING:  # pragma: no cover
    from ..core.design import SynthesizedDesign


# ----------------------------------------------------------------------
# Scheduling
# ----------------------------------------------------------------------


def check_schedule(design: "SynthesizedDesign") -> list[Violation]:
    """Schedule-stage contract over every scheduled block."""
    violations: list[Violation] = []
    for block_id in sorted(design.schedules):
        schedule = design.schedules[block_id]
        problem = schedule.problem
        where = problem.label

        scheduled = set(schedule.start)
        for op in problem.ops:
            if op.id not in scheduled:
                violations.append(Violation(
                    "scheduling", "unscheduled-op", where,
                    f"op{op.id} ({op.describe()}) has no control step",
                    {"op": op.id},
                ))
            elif schedule.start[op.id] < 0:
                violations.append(Violation(
                    "scheduling", "negative-step", where,
                    f"op{op.id} scheduled at step {schedule.start[op.id]}",
                    {"op": op.id, "step": schedule.start[op.id]},
                ))

        for u, v in problem.graph.edges:
            if u not in schedule.start or v not in schedule.start:
                continue
            earliest = schedule.start[u] + problem.edge_offset(u, v)
            if schedule.start[v] < earliest:
                violations.append(Violation(
                    "scheduling", "precedence", where,
                    f"op{v}@{schedule.start[v]} starts before its "
                    f"predecessor op{u}@{schedule.start[u]} allows "
                    f"(earliest legal start {earliest})",
                    {"from": u, "to": v,
                     "start_from": schedule.start[u],
                     "start_to": schedule.start[v],
                     "earliest": earliest},
                ))

        for constraint in problem.timing_constraints:
            if (constraint.from_op not in schedule.start
                    or constraint.to_op not in schedule.start):
                continue
            distance = (schedule.start[constraint.to_op]
                        - schedule.start[constraint.from_op])
            if (constraint.min_offset is not None
                    and distance < constraint.min_offset) or (
                    constraint.max_offset is not None
                    and distance > constraint.max_offset):
                violations.append(Violation(
                    "scheduling", "timing-window", where,
                    f"op{constraint.from_op}->op{constraint.to_op} "
                    f"distance {distance} outside "
                    f"[{constraint.min_offset}, {constraint.max_offset}]",
                    {"from": constraint.from_op, "to": constraint.to_op,
                     "distance": distance},
                ))

        # Resource oversubscription, recomputed from occupancy windows.
        usage: dict[tuple[int, str], int] = {}
        for op_id in schedule.start:
            cls = problem.op_class(op_id)
            if cls is None:
                continue
            for k in range(max(problem.occupancy(op_id), 0)):
                key = (schedule.start[op_id] + k, cls)
                usage[key] = usage.get(key, 0) + 1
        for (step, cls), used in sorted(usage.items()):
            limit = problem.constraints.limit(cls)
            if limit is not None and used > limit:
                violations.append(Violation(
                    "scheduling", "resource-oversubscribed", where,
                    f"step {step} runs {used} {cls!r} ops with only "
                    f"{limit} unit{'s' if limit != 1 else ''}",
                    {"step": step, "class": cls,
                     "used": used, "limit": limit},
                ))

        if (problem.time_limit is not None
                and schedule.length > problem.time_limit):
            violations.append(Violation(
                "scheduling", "time-limit", where,
                f"schedule takes {schedule.length} steps, limit "
                f"{problem.time_limit}",
                {"length": schedule.length, "limit": problem.time_limit},
            ))
    return violations


# ----------------------------------------------------------------------
# Allocation
# ----------------------------------------------------------------------


def check_allocation(design: "SynthesizedDesign") -> list[Violation]:
    """Allocation-stage contract: FU shares and register shares."""
    violations: list[Violation] = []
    for block_id in sorted(design.allocations):
        allocation = design.allocations[block_id]
        schedule = allocation.schedule
        problem = schedule.problem
        where = problem.label

        for op in problem.ops:
            cls = problem.op_class(op.id)
            if cls is None:
                continue
            fu = allocation.fu_map.get(op.id)
            if fu is None:
                violations.append(Violation(
                    "allocation", "unassigned-op", where,
                    f"op{op.id} ({op.describe()}) uses class {cls!r} "
                    f"but has no functional unit",
                    {"op": op.id, "class": cls},
                ))
            elif fu.cls != cls:
                violations.append(Violation(
                    "allocation", "class-mismatch", where,
                    f"op{op.id} of class {cls!r} assigned to {fu}",
                    {"op": op.id, "class": cls, "fu": str(fu)},
                ))

        # FU double-booking: overlapping occupancy windows on one unit.
        by_unit: dict[object, list[int]] = {}
        for op_id, fu in allocation.fu_map.items():
            if op_id in schedule.start:
                by_unit.setdefault(fu, []).append(op_id)
        for fu, op_ids in sorted(by_unit.items(), key=lambda kv: str(kv[0])):
            spans = sorted(
                (schedule.start[op_id],
                 schedule.start[op_id]
                 + max(problem.occupancy(op_id), 1) - 1,
                 op_id)
                for op_id in op_ids
            )
            for (s1, e1, op1), (s2, e2, op2) in zip(spans, spans[1:]):
                if s2 <= e1:
                    violations.append(Violation(
                        "allocation", "fu-double-booked", where,
                        f"{fu} runs op{op1} [{s1},{e1}] and op{op2} "
                        f"[{s2},{e2}] in overlapping steps",
                        {"fu": str(fu), "ops": [op1, op2],
                         "spans": [[s1, e1], [s2, e2]]},
                    ))

        # Check against the same liveness-informed lifetime model the
        # allocator and datapath builder use: a value written only to a
        # dead variable (e.g. an unrolled loop counter) never leaves the
        # block and legitimately has no register — the conservative
        # no-live-out model would flag it as register-missing.
        lifetimes = compute_lifetimes(schedule,
                                      live_out_variables(schedule))
        for lifetime in lifetimes:
            if lifetime.value.id not in allocation.register_map:
                violations.append(Violation(
                    "allocation", "register-missing", where,
                    f"value v{lifetime.value.id} lives across steps "
                    f"({lifetime.def_step}, {lifetime.last_use}] but "
                    f"has no register",
                    {"value": lifetime.value.id,
                     "def_step": lifetime.def_step,
                     "last_use": lifetime.last_use},
                ))
        by_register: dict[int, list] = {}
        for lifetime in lifetimes:
            register = allocation.register_map.get(lifetime.value.id)
            if register is not None:
                by_register.setdefault(register, []).append(lifetime)
        for register, held in sorted(by_register.items()):
            held.sort(key=lambda lt: (lt.def_step, lt.value.id))
            for first, second in zip(held, held[1:]):
                if first.conflicts_with(second):
                    violations.append(Violation(
                        "allocation", "register-overlap", where,
                        f"register r{register} holds "
                        f"v{first.value.id} "
                        f"({first.def_step}, {first.last_use}] and "
                        f"v{second.value.id} "
                        f"({second.def_step}, {second.last_use}] "
                        f"simultaneously",
                        {"register": register,
                         "values": [first.value.id, second.value.id]},
                    ))
    return violations


# ----------------------------------------------------------------------
# Binding
# ----------------------------------------------------------------------


def check_binding(design: "SynthesizedDesign") -> list[Violation]:
    """Binding-stage contract: components cover kinds and widths."""
    violations: list[Violation] = []
    binding = design.binding
    if binding is None:
        if design.allocations:
            violations.append(Violation(
                "binding", "missing-binding", "design",
                "design has allocations but no module binding",
            ))
        return violations

    # Requirements per FU, merged over every block's allocation.
    required_kinds: dict[object, set[OpKind]] = {}
    required_width: dict[object, int] = {}
    for block_id in sorted(design.allocations):
        allocation = design.allocations[block_id]
        problem = allocation.schedule.problem
        for op_id, fu in allocation.fu_map.items():
            op = problem.op(op_id)
            if op.kind is OpKind.VAR_WRITE:
                continue  # bare moves are pass-through, no component
            required_kinds.setdefault(fu, set()).add(op.kind)
            widths = [bit_width(v.type) for v in op.operands]
            if op.result is not None:
                widths.append(bit_width(op.result.type))
            required_width[fu] = max(
                required_width.get(fu, 1), max(widths, default=1)
            )

    for fu in sorted(required_kinds, key=lambda f: (f.cls, f.index)):
        kinds = required_kinds[fu]
        component = binding.components.get(fu)
        if component is None:
            violations.append(Violation(
                "binding", "unbound-fu", str(fu),
                f"{fu} executes "
                f"{sorted(k.value for k in kinds)} but has no library "
                f"component",
                {"fu": str(fu),
                 "kinds": sorted(k.value for k in kinds)},
            ))
            continue
        uncovered = {k for k in kinds if not component.supports({k})}
        if uncovered:
            violations.append(Violation(
                "binding", "kind-uncovered", str(fu),
                f"component {component.name!r} on {fu} does not "
                f"implement {sorted(k.value for k in uncovered)}",
                {"fu": str(fu), "component": component.name,
                 "kinds": sorted(k.value for k in uncovered)},
            ))
        bound_width = binding.widths.get(fu, 0)
        if bound_width < required_width.get(fu, 1):
            violations.append(Violation(
                "binding", "width-underflow", str(fu),
                f"{fu} bound at {bound_width} bits but executes "
                f"{required_width[fu]}-bit operations",
                {"fu": str(fu), "bound": bound_width,
                 "required": required_width[fu]},
            ))
    return violations


# ----------------------------------------------------------------------
# Controller
# ----------------------------------------------------------------------


def _fsm_reachable(fsm) -> set[int]:
    """States reachable from the entry by forward traversal."""
    if fsm.entry is None:
        return set()
    seen: set[int] = set()
    frontier = [fsm.entry]
    while frontier:
        state_id = frontier.pop()
        if state_id in seen or not (0 <= state_id < len(fsm.states)):
            continue
        seen.add(state_id)
        transition = fsm.states[state_id].transition
        for target in (transition.if_true, transition.if_false):
            if target is not None:
                frontier.append(target)
    return seen


def _fsm_halting(fsm) -> set[int]:
    """States from which the halt exit is reachable (backward BFS)."""
    predecessors: dict[int, set[int]] = {}
    halting: list[int] = []
    for state in fsm.states:
        transition = state.transition
        targets = [transition.if_true]
        if transition.cond is not None:
            targets.append(transition.if_false)
        for target in targets:
            if target is None:
                halting.append(state.id)
            elif 0 <= target < len(fsm.states):
                predecessors.setdefault(target, set()).add(state.id)
    seen: set[int] = set()
    frontier = list(halting)
    while frontier:
        state_id = frontier.pop()
        if state_id in seen:
            continue
        seen.add(state_id)
        frontier.extend(predecessors.get(state_id, ()))
    return seen


def check_controller(design: "SynthesizedDesign") -> list[Violation]:
    """Controller-stage contract: FSM shape, reachability, liveness."""
    violations: list[Violation] = []
    fsm = design.fsm
    if fsm is None:
        if design.schedules:
            violations.append(Violation(
                "controller", "missing-fsm", "design",
                "design has schedules but no controller FSM",
            ))
        return violations
    if fsm.states and fsm.entry is None:
        violations.append(Violation(
            "controller", "missing-entry", "fsm",
            f"FSM has {fsm.state_count} states but no entry",
        ))

    for state in fsm.states:
        where = f"S{state.id}"
        transition = state.transition
        for target in (transition.if_true, transition.if_false):
            if target is not None and not (0 <= target < len(fsm.states)):
                violations.append(Violation(
                    "controller", "dangling-target", where,
                    f"state S{state.id} targets missing state S{target}",
                    {"state": state.id, "target": target},
                ))
        if transition.cond is None and transition.if_false is not None:
            violations.append(Violation(
                "controller", "branch-without-condition", where,
                f"state S{state.id} has a false-branch but no condition",
                {"state": state.id},
            ))
        if not (0 <= state.step < max(state.plan.schedule.length, 1)):
            violations.append(Violation(
                "controller", "step-out-of-range", where,
                f"state S{state.id} drives step {state.step} of "
                f"{state.block_name}, which has only "
                f"{state.plan.schedule.length} steps",
                {"state": state.id, "step": state.step,
                 "steps": state.plan.schedule.length},
            ))

    reachable = _fsm_reachable(fsm)
    halting = _fsm_halting(fsm)
    for state in fsm.states:
        if state.id not in reachable:
            violations.append(Violation(
                "controller", "unreachable-state", f"S{state.id}",
                f"state S{state.id} ({state.block_name}#{state.step}) "
                f"cannot be reached from the entry",
                {"state": state.id},
            ))
        elif state.id not in halting:
            violations.append(Violation(
                "controller", "dead-state", f"S{state.id}",
                f"state S{state.id} ({state.block_name}#{state.step}) "
                f"can never reach the halt exit",
                {"state": state.id},
            ))
    return violations


# ----------------------------------------------------------------------
# Netlist
# ----------------------------------------------------------------------


def check_netlist(design: "SynthesizedDesign",
                  netlist=None) -> list[Violation]:
    """Netlist-stage contract over the derived datapath structure.

    Args:
        design: the synthesized design.
        netlist: a pre-built :class:`~repro.datapath.netlist.\
DatapathNetlist` to check instead of deriving one (tests corrupt it).
    """
    from ..datapath.netlist import build_netlist
    from ..errors import HLSError

    violations: list[Violation] = []
    if netlist is None:
        try:
            netlist = build_netlist(design)
        except HLSError as error:
            return [Violation(
                "netlist", "derivation-failed", "design",
                f"netlist could not be derived: {error}",
            )]

    registered = set(netlist.components.values())
    mux_inputs: dict[str, int] = {}
    mux_outputs: dict[str, int] = {}
    for net in netlist.nets:
        endpoints = [net.driver] + list(net.sinks)
        for pin in endpoints:
            if pin.component not in registered:
                violations.append(Violation(
                    "netlist", "dangling-port", str(pin),
                    f"net endpoint {pin} references component "
                    f"{pin.component.name!r} that is not in the "
                    f"netlist",
                    {"component": pin.component.name, "port": pin.port},
                ))
        if net.driver.component.kind == "mux" and \
                net.driver.port == "y":
            name = net.driver.component.name
            mux_outputs[name] = mux_outputs.get(name, 0) + 1
        for sink in net.sinks:
            if sink.component.kind == "mux" and \
                    sink.port.startswith("i"):
                name = sink.component.name
                mux_inputs[name] = mux_inputs.get(name, 0) + 1

    for mux in netlist.components_of_kind("mux"):
        fan_in = mux_inputs.get(mux.name, 0)
        if fan_in < 2:
            violations.append(Violation(
                "netlist", "degenerate-mux", mux.name,
                f"mux {mux.name} has {fan_in} selectable "
                f"input{'s' if fan_in != 1 else ''} (needs >= 2)",
                {"mux": mux.name, "inputs": fan_in},
            ))
        if mux_outputs.get(mux.name, 0) == 0:
            violations.append(Violation(
                "netlist", "undriven-mux-output", mux.name,
                f"mux {mux.name} drives nothing",
                {"mux": mux.name},
            ))
    return violations


# ----------------------------------------------------------------------
# Aggregator
# ----------------------------------------------------------------------

CONTRACTS = {
    "scheduling": check_schedule,
    "allocation": check_allocation,
    "binding": check_binding,
    "controller": check_controller,
    "netlist": check_netlist,
}


def verify_design(design: "SynthesizedDesign",
                  stages: tuple[str, ...] | list[str] | None = None
                  ) -> VerificationReport:
    """Run every stage contract (or the named subset) over a design.

    Returns a :class:`~repro.verify.violations.VerificationReport`;
    never raises on a broken design — raising is the engine hook's job
    (:class:`~repro.errors.VerificationError`).
    """
    if stages is None:
        stages = STAGE_ORDER
    unknown = [stage for stage in stages if stage not in CONTRACTS]
    if unknown:
        raise ValueError(f"unknown contract stages: {unknown}")
    report = VerificationReport(
        design_name=design.cdfg.name, stages_checked=tuple(stages)
    )
    registry = metrics()
    for stage in stages:
        with trace_span(f"contract.{stage}",
                        design=design.cdfg.name) as span:
            violations = CONTRACTS[stage](design)
            span.set(violations=len(violations))
        registry.counter("verify.contracts", stage=stage).inc()
        if violations:
            registry.counter(
                "verify.violations", stage=stage
            ).inc(len(violations))
        report.extend(violations)
    return report
