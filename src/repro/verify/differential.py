"""Differential verification: many implementations, one behavior.

The flow has many alternative code paths that must agree:

* every registered scheduler × allocator combination must synthesize a
  design whose RTL simulation matches the behavioral reference
  (:func:`run_differential`);
* the cached and uncached synthesis paths must produce identical
  stage decisions (:func:`check_cached_paths`);
* the serial and process-pool exploration paths must produce identical
  design points (:func:`check_parallel_paths`);
* the incremental force-directed scheduler must match its textbook
  reference oracle (:func:`check_incremental_force_directed`).

Each check reports the *first diverging stage* with a machine-readable
diff, so a failure points at the responsible pipeline layer instead of
just "outputs differ".
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Callable, Mapping, Sequence

from ..core.design import SynthesizedDesign
from ..core.engine import (
    ALLOCATORS,
    SCHEDULERS,
    SynthesisOptions,
    synthesize,
    synthesize_cdfg,
)
from ..errors import (
    AllocationError,
    BindingError,
    ControllerError,
    HLSError,
    SchedulingError,
)
from ..ir.cdfg import CDFG
from ..lang import compile_source
from ..sim.behavior import BehavioralSimulator
from ..sim.equivalence import default_vectors
from ..sim.rtl_sim import RTLSimulator
from .contracts import verify_design
from .violations import Violation

#: Stage sequence the differential engine localizes failures to —
#: contract stages plus the phases that bracket them.
DIFF_STAGE_ORDER: tuple[str, ...] = (
    "transforms",
    "scheduling",
    "allocation",
    "binding",
    "controller",
    "netlist",
    "rtl",
)

_ERROR_STAGES: tuple[tuple[type, str], ...] = (
    (SchedulingError, "scheduling"),
    (AllocationError, "allocation"),
    (BindingError, "binding"),
    (ControllerError, "controller"),
)

Workload = "str | CDFG | Callable[[], CDFG]"


def _fresh_cdfg(workload) -> CDFG:
    """A fresh CDFG per combo — synthesis mutates its input."""
    if isinstance(workload, str):
        return compile_source(workload)
    if isinstance(workload, CDFG):
        from ..transforms import clone_cdfg

        return clone_cdfg(workload)
    return workload()


@dataclass
class ComboResult:
    """Outcome of one scheduler × allocator differential run."""

    scheduler: str
    allocator: str
    #: "ok", "violations" (contracts failed), "divergence" (outputs
    #: differ from the behavioral reference) or "error" (synthesis
    #: raised).
    status: str = "ok"
    #: First diverging stage (one of :data:`DIFF_STAGE_ORDER`).
    stage: str | None = None
    violations: list[Violation] = field(default_factory=list)
    #: Machine-readable divergence details.
    diff: dict = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        return self.status == "ok"

    def render(self) -> str:
        label = f"{self.scheduler} x {self.allocator}"
        if self.ok:
            return f"  ok         {label}"
        detail = f" [{self.stage}]" if self.stage else ""
        extra = ""
        if self.status == "violations":
            kinds = sorted({v.kind for v in self.violations})
            extra = f" kinds={kinds}"
        elif self.diff:
            extra = f" diff={self.diff}"
        return f"  {self.status:<10} {label}{detail}{extra}"


@dataclass
class DifferentialReport:
    """All combo results for one workload."""

    workload: str
    combos: list[ComboResult] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return all(combo.ok for combo in self.combos)

    def failures(self) -> list[ComboResult]:
        return [combo for combo in self.combos if not combo.ok]

    def render(self) -> str:
        verdict = "PASS" if self.ok else "FAIL"
        lines = [
            f"differential on '{self.workload}': {verdict} "
            f"({len(self.combos)} combos, "
            f"{len(self.failures())} failing)"
        ]
        lines.extend(combo.render() for combo in self.combos)
        return "\n".join(lines)


def _reference_outputs(reference: CDFG,
                       vectors: Sequence[Mapping]) -> list[dict]:
    return [
        BehavioralSimulator(reference).run(dict(inputs))
        for inputs in vectors
    ]


def _output_diff(vector, expected: dict, actual: dict) -> dict:
    """First differing output of one vector, machine-readable."""
    for name in sorted(set(expected) | set(actual)):
        if expected.get(name) != actual.get(name):
            return {
                "vector": dict(vector),
                "output": name,
                "expected": expected.get(name),
                "actual": actual.get(name),
            }
    return {}


def run_differential(
    workload,
    schedulers: Sequence[str] | None = None,
    allocators: Sequence[str] | None = None,
    *,
    options: SynthesisOptions | None = None,
    vectors: Sequence[Mapping] | None = None,
    vector_count: int = 3,
    label: str | None = None,
) -> DifferentialReport:
    """Run one workload through every scheduler × allocator combination.

    Args:
        workload: BSL source text, a CDFG (cloned per combo), or a
            zero-argument factory returning a fresh CDFG.
        schedulers: scheduler names (default: every registered one).
        allocators: allocator names (default: every registered one).
        options: base options; scheduler/allocator are overridden per
            combo.
        vectors: input vectors; generated deterministically otherwise.
        vector_count: generated vector count when ``vectors`` is None.
        label: workload name for the report (default: the CDFG's name).

    The behavioral interpreter on the *unoptimized* workload is the
    reference; every combo must pass all stage contracts and match the
    reference on every vector.
    """
    if schedulers is None:
        schedulers = sorted(SCHEDULERS)
    if allocators is None:
        allocators = sorted(ALLOCATORS)
    options = options or SynthesisOptions()

    reference = _fresh_cdfg(workload)
    if vectors is None:
        # Narrowing under an assume contract is only equivalence-
        # preserving inside the contract, so generated vectors must
        # honor it (explicit vectors are the caller's responsibility).
        contracts = {
            name: (lo, hi)
            for name, lo, hi in (options.assume_ranges or ())
        }
        vectors = default_vectors(
            reference, count=vector_count, assume=contracts or None
        )
    expected = _reference_outputs(reference, vectors)

    report = DifferentialReport(
        workload=label or reference.name
    )
    for scheduler in schedulers:
        for allocator in allocators:
            combo = ComboResult(scheduler, allocator)
            report.combos.append(combo)
            combo_options = replace(
                options, scheduler=scheduler, allocator=allocator
            )
            try:
                design = synthesize_cdfg(
                    _fresh_cdfg(workload), combo_options
                )
            except HLSError as error:
                combo.status = "error"
                combo.stage = next(
                    (stage for cls, stage in _ERROR_STAGES
                     if isinstance(error, cls)),
                    "transforms",
                )
                combo.diff = {"error": str(error)}
                continue

            contract = verify_design(design)
            if not contract.ok:
                combo.status = "violations"
                combo.stage = contract.first_bad_stage()
                combo.violations = list(contract.violations)
                continue

            # Transform stage: the optimized CDFG must still compute
            # the reference function.
            for inputs, want in zip(vectors, expected):
                got = BehavioralSimulator(design.cdfg).run(dict(inputs))
                if got != want:
                    combo.status = "divergence"
                    combo.stage = "transforms"
                    combo.diff = _output_diff(inputs, want, got)
                    break
            if not combo.ok:
                continue

            # RTL stage: the synthesized machine must too.
            for inputs, want in zip(vectors, expected):
                got = RTLSimulator(design).run(dict(inputs))
                if got != want:
                    combo.status = "divergence"
                    combo.stage = "rtl"
                    combo.diff = _output_diff(inputs, want, got)
                    break
    return report


# ----------------------------------------------------------------------
# Paired-path checks (same options, two code paths)
# ----------------------------------------------------------------------


@dataclass
class PathResult:
    """Outcome of comparing two code paths that must agree exactly."""

    name: str
    ok: bool = True
    #: First diverging stage (or measurement field) when not ok.
    stage: str | None = None
    diff: dict = field(default_factory=dict)

    def render(self) -> str:
        if self.ok:
            return f"  ok         {self.name}"
        return f"  divergence {self.name} [{self.stage}] {self.diff}"


def first_diverging_stage(
    left: SynthesizedDesign, right: SynthesizedDesign
) -> tuple[str, dict] | None:
    """Compare two designs stage by stage, in pipeline order.

    Returns ``(stage, diff)`` for the first stage whose decision
    signatures differ, or None when all stages agree.
    """
    left_sigs = left.stage_signatures()
    right_sigs = right.stage_signatures()
    for stage in ("scheduling", "allocation", "binding", "controller"):
        if left_sigs[stage] != right_sigs[stage]:
            return stage, {
                "left": repr(left_sigs[stage]),
                "right": repr(right_sigs[stage]),
            }
    return None


def check_cached_paths(source: str,
                       options: SynthesisOptions | None = None,
                       procedure: str | None = None) -> PathResult:
    """Cached-vs-uncached synthesis must make identical decisions.

    Runs the pipeline uncached, then twice through the process-global
    cache (miss then hit), and compares stage signatures pairwise.
    """
    options = options or SynthesisOptions()
    result = PathResult("cached-vs-uncached")
    uncached = synthesize(source, procedure, options, use_cache=False)
    miss = synthesize(source, procedure, options, use_cache=True)
    hit = synthesize(source, procedure, options, use_cache=True)
    for label, candidate in (("cache-miss", miss), ("cache-hit", hit)):
        divergence = first_diverging_stage(uncached, candidate)
        if divergence is not None:
            stage, diff = divergence
            diff["path"] = label
            return PathResult(result.name, False, stage, diff)
    return result


def check_parallel_paths(source: str, limits: Sequence[int],
                         options: SynthesisOptions | None = None,
                         n_jobs: int = 2) -> PathResult:
    """Serial and process-pool exploration must yield the same points.

    Compares the measured (constraints, cycles, area, clock) tuple of
    every design point between ``n_jobs=1`` and ``n_jobs>1`` sweeps;
    caching is disabled so both paths really run.
    """
    from ..explore.dse import explore_fu_range

    serial = explore_fu_range(source, list(limits), options=options,
                              n_jobs=1, use_cache=False)
    parallel = explore_fu_range(source, list(limits), options=options,
                                n_jobs=n_jobs, use_cache=False)
    result = PathResult("serial-vs-parallel")
    if len(serial.points) != len(parallel.points):
        return PathResult(result.name, False, "exploration", {
            "serial_points": len(serial.points),
            "parallel_points": len(parallel.points),
        })
    for left, right in zip(serial.points, parallel.points):
        for fieldname in ("cycles", "area", "clock_ns"):
            if getattr(left, fieldname) != getattr(right, fieldname):
                return PathResult(result.name, False, fieldname, {
                    "constraints": str(left.constraints),
                    "serial": getattr(left, fieldname),
                    "parallel": getattr(right, fieldname),
                })
        divergence = first_diverging_stage(left.design, right.design)
        if divergence is not None:
            stage, diff = divergence
            diff["constraints"] = str(left.constraints)
            return PathResult(result.name, False, stage, diff)
    return result


def check_incremental_force_directed(
    workload, deadline: int | None = None
) -> PathResult:
    """The incremental force-directed scheduler must exactly match its
    textbook full-recompute reference on every block of the workload."""
    from ..scheduling import UniversalFUModel
    from ..scheduling.base import SchedulingProblem
    from ..scheduling.force_directed import ForceDirectedScheduler
    from ..transforms import optimize

    cdfg = _fresh_cdfg(workload)
    optimize(cdfg)
    model = UniversalFUModel()
    result = PathResult("incremental-vs-reference-fds")
    for block in cdfg.blocks():
        if not block.ops:
            continue
        problem = SchedulingProblem.from_block(block, model)
        fast = ForceDirectedScheduler(problem, deadline).schedule()
        slow = ForceDirectedScheduler(
            problem, deadline, _reference=True
        ).schedule()
        if fast.signature() != slow.signature():
            return PathResult(result.name, False, "scheduling", {
                "block": block.name,
                "incremental": dict(fast.start),
                "reference": dict(slow.start),
            })
    return result


def check_all_paths(source: str,
                    limits: Sequence[int] = (1, 2, 3),
                    options: SynthesisOptions | None = None,
                    n_jobs: int = 2) -> list[PathResult]:
    """Every paired-path check on one source program."""
    return [
        check_cached_paths(source, options),
        check_parallel_paths(source, limits, options, n_jobs),
        check_incremental_force_directed(source),
    ]
