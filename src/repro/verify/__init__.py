"""Stage-contract checking and differential verification.

This package answers "did the pipeline do something legal?" three ways:

* **contracts** (:func:`verify_design`) — pure checkers over a
  finished :class:`~repro.core.design.SynthesizedDesign`, one per
  pipeline stage, returning structured :class:`Violation` records
  instead of raising;
* **differential** (:func:`run_differential`,
  :func:`check_all_paths`) — every scheduler × allocator combination
  (and every paired code path: cached/uncached, serial/parallel,
  incremental/reference) must agree with the behavioral reference,
  with failures localized to the first diverging stage;
* **fuzzing** (:func:`fuzz_seeds`) — seeded random DFGs through the
  full matrix, with failing cases shrunk to minimal recipes and saved
  as standalone repro scripts.

The checkers here deliberately re-derive stage legality independently
of each stage's own raising ``validate()`` method, so the two
implementations cross-check each other.
"""

from .contracts import (
    CONTRACTS,
    check_allocation,
    check_binding,
    check_controller,
    check_netlist,
    check_schedule,
    verify_design,
)
from .differential import (
    DIFF_STAGE_ORDER,
    ComboResult,
    DifferentialReport,
    PathResult,
    check_all_paths,
    check_cached_paths,
    check_incremental_force_directed,
    check_parallel_paths,
    first_diverging_stage,
    run_differential,
)
from .fuzz import FuzzFailure, FuzzReport, check_seed, fuzz_seeds
from .shrink import (
    ShrinkResult,
    describe_failure,
    recipe_fails,
    shrink_failure,
    write_repro_script,
)
from .violations import STAGE_ORDER, VerificationReport, Violation

__all__ = [
    "CONTRACTS",
    "DIFF_STAGE_ORDER",
    "STAGE_ORDER",
    "ComboResult",
    "DifferentialReport",
    "FuzzFailure",
    "FuzzReport",
    "PathResult",
    "ShrinkResult",
    "VerificationReport",
    "Violation",
    "check_all_paths",
    "check_allocation",
    "check_binding",
    "check_cached_paths",
    "check_controller",
    "check_incremental_force_directed",
    "check_netlist",
    "check_parallel_paths",
    "check_schedule",
    "check_seed",
    "describe_failure",
    "first_diverging_stage",
    "fuzz_seeds",
    "recipe_fails",
    "run_differential",
    "shrink_failure",
    "verify_design",
    "write_repro_script",
]
