"""Stage-contract checking and differential verification.

This package answers "did the pipeline do something legal?" three ways:

* **contracts** (:func:`verify_design`) — pure checkers over a
  finished :class:`~repro.core.design.SynthesizedDesign`, one per
  pipeline stage, returning structured :class:`Violation` records
  instead of raising;
* **differential** (:func:`run_differential`,
  :func:`check_all_paths`) — every scheduler × allocator combination
  (and every paired code path: cached/uncached, serial/parallel,
  incremental/reference) must agree with the behavioral reference,
  with failures localized to the first diverging stage;
* **fuzzing** (:func:`fuzz_seeds`, :func:`fuzz_corpus`) — seeded
  random DFGs through the full matrix, plus a mutational,
  coverage-guided loop over a persisted corpus
  (:mod:`repro.verify.corpus`); failing cases are shrunk to minimal
  recipes and saved as standalone repro scripts.

The checkers here deliberately re-derive stage legality independently
of each stage's own raising ``validate()`` method, so the two
implementations cross-check each other.
"""

from .contracts import (
    CONTRACTS,
    check_allocation,
    check_binding,
    check_controller,
    check_netlist,
    check_schedule,
    verify_design,
)
from .differential import (
    DIFF_STAGE_ORDER,
    ComboResult,
    DifferentialReport,
    PathResult,
    check_all_paths,
    check_cached_paths,
    check_incremental_force_directed,
    check_parallel_paths,
    first_diverging_stage,
    run_differential,
)
from .corpus import (
    MUTATORS,
    TIERS,
    CaseResult,
    Corpus,
    CorpusCase,
    CorpusEntry,
    CorpusFinding,
    CorpusReport,
    FuzzTier,
    MinimizeReport,
    ReplayReport,
    ReplayRow,
    default_combos,
    evaluate_case,
    fixed_seed_cases,
    fuzz_corpus,
    minimize_corpus,
    mutate_case,
    replay_corpus,
    seed_case,
)
from .fuzz import FuzzFailure, FuzzReport, check_seed, fuzz_seeds
from .shrink import (
    ShrinkResult,
    describe_failure,
    recipe_fails,
    shrink_failure,
    write_repro_script,
)
from .violations import STAGE_ORDER, VerificationReport, Violation

__all__ = [
    "CONTRACTS",
    "DIFF_STAGE_ORDER",
    "MUTATORS",
    "STAGE_ORDER",
    "TIERS",
    "CaseResult",
    "ComboResult",
    "Corpus",
    "CorpusCase",
    "CorpusEntry",
    "CorpusFinding",
    "CorpusReport",
    "DifferentialReport",
    "FuzzFailure",
    "FuzzReport",
    "FuzzTier",
    "MinimizeReport",
    "PathResult",
    "ReplayReport",
    "ReplayRow",
    "ShrinkResult",
    "VerificationReport",
    "Violation",
    "check_all_paths",
    "check_allocation",
    "check_binding",
    "check_cached_paths",
    "check_controller",
    "check_incremental_force_directed",
    "check_netlist",
    "check_parallel_paths",
    "check_schedule",
    "check_seed",
    "default_combos",
    "describe_failure",
    "evaluate_case",
    "first_diverging_stage",
    "fixed_seed_cases",
    "fuzz_corpus",
    "fuzz_seeds",
    "minimize_corpus",
    "mutate_case",
    "recipe_fails",
    "replay_corpus",
    "run_differential",
    "seed_case",
    "shrink_failure",
    "verify_design",
    "write_repro_script",
]
