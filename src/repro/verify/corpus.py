"""Coverage-guided corpus fuzzing for the verification subsystem.

The fixed-seed fuzzer (:mod:`repro.verify.fuzz`) replays the same
generator distribution forever: every seed is a 12-op, 16-bit,
unconstrained, feed-forward DFG pushed through the full combo matrix.
This module upgrades it to a *mutational, coverage-guided* loop in the
AFL/schemathesis corpus style:

* a **case** (:class:`CorpusCase`) is a recipe plus the pipeline
  configuration it runs under — scheduler, allocator, FU budget —
  so the search space covers workload shape *and* pipeline paths;
* **mutators** (:data:`MUTATORS`) perturb a parent case: grow/shrink
  the op list, flip op kinds, rewire edges, change bit width or value
  domain, tighten/release the FU constraint, switch scheduler or
  allocator, or cross two corpus entries over.  Every mutator is
  deterministic given ``(case, seed)`` and always yields a buildable
  recipe (property-pinned in tests);
* a run's **coverage** is its :func:`repro.obs.coverage_fingerprint`:
  the counters that moved (scheduler/allocator invocations per
  algorithm, transform passes applied, contract stages checked,
  schedule/allocation magnitude classes, deferral branches), the span
  names reached and the per-combo differential statuses.  Timing
  never participates, so replaying an entry reproduces its
  fingerprint exactly;
* the **corpus** keeps only cases that light up a fingerprint nobody
  lit before, persisted as one content-addressed JSON file per entry
  (atomic temp+rename, same protocol as the design store) so runs
  accumulate across processes and CI caches the directory;
* failures never enter the corpus — they shrink to a minimal recipe
  and land in ``artifacts/`` as standalone repro scripts, exactly
  like fixed-seed findings.  Once fixed, a finding's case belongs in
  ``tests/corpus/`` as a permanent regression test.

Budgets are tiered (:data:`TIERS`): ``smoke`` for deterministic CI
gates, ``standard`` for local runs, ``deep`` for long hunts —
Hypothesis-profile style.  Per-mutation evaluation parallelizes
through the fault-tolerant :mod:`repro.exec` runtime; candidates are
generated in deterministic batches, so the corpus a run produces
depends only on ``(existing corpus, master_seed, jobs)``.
"""

from __future__ import annotations

import json
import os
import time
from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import Callable, Sequence

from ..core.engine import ALLOCATORS, SCHEDULERS, SynthesisOptions
from ..exec import TaskFailure, default_timeout_s, run_tasks
from ..obs import (
    coverage_atoms,
    coverage_fingerprint,
    metrics,
    trace_span,
    tracer,
    tracing,
)
from ..scheduling import ResourceConstraints
from ..store import atomic_write_bytes
from ..workloads.random_dfg import (
    RECIPE_KINDS,
    RECIPE_WIDTHS,
    DFGRecipe,
    RandomDFGSpec,
    _LCG,
    _delete_op,
    _rewire_operand,
    build_dfg,
    dfg_recipe,
)
from .differential import run_differential
from .shrink import describe_failure, recipe_fails, shrink_failure, write_repro_script

#: FU budgets the ``fu`` mutator cycles through (None = unlimited).
FU_CHOICES: tuple[int | None, ...] = (None, 1, 2, 3)

#: Logic kinds remapped when a mutation leaves the integer domain.
_TO_FIXED_KIND = {"AND": "ADD", "OR": "SUB", "XOR": "MUL"}

_CORPUS_SCHEMA = 1


def default_combos() -> list[tuple[str, str]]:
    """Every scheduler × allocator pair, in deterministic order."""
    return [(s, a) for s in sorted(SCHEDULERS) for a in sorted(ALLOCATORS)]


# ----------------------------------------------------------------------
# Cases
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class CorpusCase:
    """One fuzzable unit: a recipe plus its pipeline configuration."""

    recipe: DFGRecipe
    scheduler: str = "list"
    allocator: str = "left-edge"
    fu_limit: int | None = None

    def options(self) -> SynthesisOptions:
        constraints = (
            ResourceConstraints({"fu": self.fu_limit})
            if self.fu_limit is not None
            else None
        )
        return SynthesisOptions(constraints=constraints)

    def to_dict(self) -> dict:
        return {
            "recipe": {
                "inputs": self.recipe.inputs,
                "ops": [list(op) for op in self.recipe.ops],
                "name": self.recipe.name,
                "width": self.recipe.width,
                "domain": self.recipe.domain,
            },
            "scheduler": self.scheduler,
            "allocator": self.allocator,
            "fu_limit": self.fu_limit,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "CorpusCase":
        raw = data["recipe"]
        recipe = DFGRecipe(
            inputs=raw["inputs"],
            ops=tuple(tuple(op) for op in raw["ops"]),
            name=raw.get("name", "corpus"),
            width=raw.get("width", 16),
            domain=raw.get("domain", "fixed"),
        )
        return cls(
            recipe=recipe,
            scheduler=data.get("scheduler", "list"),
            allocator=data.get("allocator", "left-edge"),
            fu_limit=data.get("fu_limit"),
        )

    def canonical_json(self) -> str:
        return json.dumps(self.to_dict(), sort_keys=True,
                          separators=(",", ":"))

    @property
    def key(self) -> str:
        """Content address (stable across processes and runs)."""
        import hashlib

        digest = hashlib.sha256(self.canonical_json().encode("utf-8"))
        return digest.hexdigest()[:16]

    def describe(self) -> str:
        fu = "-" if self.fu_limit is None else str(self.fu_limit)
        return (
            f"{self.recipe.op_count} ops/{self.recipe.width}b/"
            f"{self.recipe.domain} {self.scheduler} x {self.allocator} "
            f"fu={fu}"
        )


def seed_case(seed: int, ops: int = 12, inputs: int = 4) -> CorpusCase:
    """The deterministic seed-phase case for one generator seed.

    Recipes come from the legacy fixed-seed generator; the combo
    cycles through the full matrix so the initial corpus already
    spans every scheduler/allocator path.
    """
    combos = default_combos()
    scheduler, allocator = combos[(seed - 1) % len(combos)]
    recipe = dfg_recipe(RandomDFGSpec(ops=ops, inputs=inputs, seed=seed))
    return CorpusCase(recipe=recipe, scheduler=scheduler,
                      allocator=allocator)


def fixed_seed_cases(budget: int, ops: int = 12,
                     inputs: int = 4) -> list[CorpusCase]:
    """What a fixed-seed run of the same budget exercises, case-ified.

    One case per seed ``1..budget``, default-spec recipe (the only
    distribution :func:`repro.verify.fuzz.fuzz_seeds` ever draws
    from), cycling the combo matrix, never constrained.  Used as the
    coverage baseline the mutational loop must beat.
    """
    return [seed_case(seed, ops, inputs)
            for seed in range(1, budget + 1)]


# ----------------------------------------------------------------------
# Mutators
# ----------------------------------------------------------------------

Mutator = Callable[[CorpusCase, _LCG, Sequence[CorpusCase]],
                   "CorpusCase | None"]


def _with_recipe(case: CorpusCase, recipe: DFGRecipe) -> CorpusCase:
    return replace(case, recipe=replace(recipe, name="corpus"))


def _legal_kind(kind: str, domain: str, rng: _LCG) -> str:
    if kind in RECIPE_KINDS[domain]:
        return kind
    return _TO_FIXED_KIND.get(kind) or rng.choice(RECIPE_KINDS[domain])


def mutate_grow(case: CorpusCase, rng: _LCG,
                population: Sequence[CorpusCase]) -> CorpusCase:
    """Append 1-3 random ops (same windowed wiring as the generator)."""
    recipe = case.recipe
    ops = list(recipe.ops)
    pool_size = recipe.inputs + len(ops)
    for _ in range(1 + rng.below(3)):
        window = min(6, pool_size)
        base = pool_size - window
        kind = rng.choice(RECIPE_KINDS[recipe.domain])
        ops.append((kind, base + rng.below(window),
                    base + rng.below(window)))
        pool_size += 1
    return _with_recipe(case, replace(recipe, ops=tuple(ops)))


def mutate_shrink(case: CorpusCase, rng: _LCG,
                  population: Sequence[CorpusCase]) -> CorpusCase | None:
    """Delete one random op (rewiring consumers like the shrinker)."""
    if case.recipe.op_count <= 1:
        return None
    position = rng.below(case.recipe.op_count)
    return _with_recipe(case, _delete_op(case.recipe, position))


def mutate_opkind(case: CorpusCase, rng: _LCG,
                  population: Sequence[CorpusCase]) -> CorpusCase | None:
    """Flip one op to a different kind legal in the recipe's domain."""
    recipe = case.recipe
    if not recipe.ops:
        return None
    position = rng.below(recipe.op_count)
    kind, left, right = recipe.ops[position]
    choices = [k for k in RECIPE_KINDS[recipe.domain] if k != kind]
    if not choices:
        return None
    ops = list(recipe.ops)
    ops[position] = (rng.choice(choices), left, right)
    return _with_recipe(case, replace(recipe, ops=tuple(ops)))


def mutate_rewire(case: CorpusCase, rng: _LCG,
                  population: Sequence[CorpusCase]) -> CorpusCase | None:
    """Redirect one operand to a random earlier pool value."""
    recipe = case.recipe
    if not recipe.ops:
        return None
    position = rng.below(recipe.op_count)
    side = rng.below(2)
    target = rng.below(recipe.inputs + position)
    return _with_recipe(
        case, _rewire_operand(recipe, position, side, target)
    )


def mutate_width(case: CorpusCase, rng: _LCG,
                 population: Sequence[CorpusCase]) -> CorpusCase | None:
    """Change the element bit width."""
    choices = [w for w in RECIPE_WIDTHS if w != case.recipe.width]
    if not choices:
        return None
    return _with_recipe(
        case, replace(case.recipe, width=rng.choice(choices))
    )


def mutate_domain(case: CorpusCase, rng: _LCG,
                  population: Sequence[CorpusCase]) -> CorpusCase:
    """Toggle fixed-point vs integer values (remapping illegal kinds)."""
    recipe = case.recipe
    domain = "int" if recipe.domain == "fixed" else "fixed"
    ops = tuple(
        (_legal_kind(kind, domain, rng), left, right)
        for kind, left, right in recipe.ops
    )
    return _with_recipe(case, replace(recipe, ops=ops, domain=domain))


def mutate_fu(case: CorpusCase, rng: _LCG,
              population: Sequence[CorpusCase]) -> CorpusCase | None:
    """Tighten or release the universal FU budget."""
    choices = [fu for fu in FU_CHOICES if fu != case.fu_limit]
    return replace(case, fu_limit=rng.choice(choices))


def mutate_scheduler(case: CorpusCase, rng: _LCG,
                     population: Sequence[CorpusCase]) -> CorpusCase | None:
    choices = [s for s in sorted(SCHEDULERS) if s != case.scheduler]
    if not choices:
        return None
    return replace(case, scheduler=rng.choice(choices))


def mutate_allocator(case: CorpusCase, rng: _LCG,
                     population: Sequence[CorpusCase]) -> CorpusCase | None:
    choices = [a for a in sorted(ALLOCATORS) if a != case.allocator]
    if not choices:
        return None
    return replace(case, allocator=rng.choice(choices))


def mutate_crossover(case: CorpusCase, rng: _LCG,
                     population: Sequence[CorpusCase]) -> CorpusCase | None:
    """Splice another corpus entry's op tail onto this case's prefix.

    Operand indices of the grafted tail are folded modulo the valid
    pool prefix at each position, so the child is a DAG by
    construction whatever the parents' shapes were.
    """
    if len(population) < 2:
        return None
    other = population[rng.below(len(population))]
    recipe, donor = case.recipe, other.recipe
    if not recipe.ops or not donor.ops:
        return None
    keep = 1 + rng.below(recipe.op_count)
    ops = list(recipe.ops[:keep])
    tail_from = rng.below(donor.op_count)
    for kind, left, right in donor.ops[tail_from:]:
        limit = recipe.inputs + len(ops)
        ops.append((
            _legal_kind(kind, recipe.domain, rng),
            left % limit,
            right % limit,
        ))
    return _with_recipe(case, replace(recipe, ops=tuple(ops)))


MUTATORS: dict[str, Mutator] = {
    "grow": mutate_grow,
    "shrink": mutate_shrink,
    "opkind": mutate_opkind,
    "rewire": mutate_rewire,
    "width": mutate_width,
    "domain": mutate_domain,
    "fu": mutate_fu,
    "scheduler": mutate_scheduler,
    "allocator": mutate_allocator,
    "crossover": mutate_crossover,
}

_MUTATOR_ORDER = tuple(sorted(MUTATORS))


def mutate_case(case: CorpusCase, seed: int,
                population: Sequence[CorpusCase] = (),
                ) -> tuple[str, CorpusCase]:
    """One deterministic mutation of ``case``.

    Picks a mutator from ``seed``; a mutator that does not apply
    (e.g. crossover with a singleton population) falls through to the
    next in name order — ``grow`` always applies, so this terminates.
    Returns ``(mutator_name, mutated_case)``.
    """
    rng = _LCG(seed)
    # The seed is itself an LCG output, and LCG low bits correlate
    # across streams — modulo on the raw state would leave half the
    # mutators unreachable.  High bits mix properly.
    start = (rng.next() >> 16) % len(_MUTATOR_ORDER)
    for offset in range(len(_MUTATOR_ORDER)):
        name = _MUTATOR_ORDER[(start + offset) % len(_MUTATOR_ORDER)]
        mutated = MUTATORS[name](case, rng, population)
        if mutated is not None:
            return name, mutated
    raise AssertionError("no mutator applied (grow must always apply)")


# ----------------------------------------------------------------------
# Evaluation
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class CaseResult:
    """Outcome of evaluating one case: verdict plus coverage."""

    ok: bool
    summary: str
    atoms: frozenset[str]
    fingerprint: str


def evaluate_case(case: CorpusCase, vector_count: int = 3) -> CaseResult:
    """Run one case and compute its coverage fingerprint.

    The case's combo goes through the differential engine (contracts
    + behavioral/RTL agreement); coverage is the delta of the metrics
    registry, the span names recorded (tracing is force-enabled for
    the duration), and the per-combo statuses.  Everything observed
    is deterministic for a deterministic pipeline, so the fingerprint
    is reproducible — the property corpus replay relies on.
    """
    registry = metrics()
    before = registry.snapshot()
    mark = len(tracer().records())
    with tracing(True):
        report = run_differential(
            lambda: build_dfg(case.recipe),
            schedulers=[case.scheduler],
            allocators=[case.allocator],
            options=case.options(),
            vector_count=vector_count,
            label=case.recipe.name,
        )
    span_names = {
        record.name for record in tracer().records()[mark:]
    }
    after = registry.snapshot()
    extra = set()
    for combo in report.combos:
        extra.add(
            f"combo:{combo.scheduler}x{combo.allocator}:{combo.status}"
        )
        if combo.stage:
            extra.add(f"stage:{combo.status}:{combo.stage}")
        for violation in combo.violations:
            extra.add(f"violation:{violation.kind}")
    atoms = coverage_atoms(before, after, sorted(span_names),
                           sorted(extra))
    return CaseResult(
        ok=report.ok,
        summary="" if report.ok else describe_failure(report),
        atoms=atoms,
        fingerprint=coverage_fingerprint(atoms),
    )


def _corpus_worker(payload: dict) -> dict:
    """Process-pool entry point: evaluate one case in a worker."""
    result = evaluate_case(CorpusCase.from_dict(payload))
    return {
        "ok": result.ok,
        "summary": result.summary,
        "atoms": sorted(result.atoms),
        "fingerprint": result.fingerprint,
    }


def _evaluate_batch(
    cases: Sequence[CorpusCase], jobs: int,
    timeout_s: float | None,
) -> tuple[list["CaseResult | None"], list[TaskFailure]]:
    """Evaluate cases, in order; a crashed case slot becomes None."""
    if jobs <= 1 or len(cases) <= 1:
        return [evaluate_case(case) for case in cases], []
    batch = run_tasks(
        _corpus_worker,
        [case.to_dict() for case in cases],
        labels=[case.key for case in cases],
        max_workers=jobs,
        timeout_s=(timeout_s if timeout_s is not None
                   else default_timeout_s()),
        fallback=None,
    )
    by_label = {
        outcome.label: outcome.value
        for outcome in batch.outcomes if outcome.ok
    }
    results: list[CaseResult | None] = []
    for case in cases:
        raw = by_label.get(case.key)
        if raw is None:
            results.append(None)
            continue
        results.append(CaseResult(
            ok=raw["ok"],
            summary=raw["summary"],
            atoms=frozenset(raw["atoms"]),
            fingerprint=raw["fingerprint"],
        ))
    return results, batch.failures


# ----------------------------------------------------------------------
# Persistence
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class CorpusEntry:
    """One persisted corpus member."""

    case: CorpusCase
    fingerprint: str
    found_by: str = "seed"
    parent: str | None = None

    @property
    def key(self) -> str:
        return self.case.key

    def to_dict(self) -> dict:
        return {
            "schema": _CORPUS_SCHEMA,
            "key": self.key,
            "fingerprint": self.fingerprint,
            "found_by": self.found_by,
            "parent": self.parent,
            "case": self.case.to_dict(),
        }

    @classmethod
    def from_dict(cls, data: dict) -> "CorpusEntry":
        return cls(
            case=CorpusCase.from_dict(data["case"]),
            fingerprint=data["fingerprint"],
            found_by=data.get("found_by", "seed"),
            parent=data.get("parent"),
        )


class Corpus:
    """A directory of content-addressed corpus entries.

    Layout: one ``<case-key>.json`` per entry, directly under
    ``root`` (corpora are hundreds of entries at most; no sharding).
    Writes go through the store's atomic temp+rename helper so
    concurrent fuzzing runs can share a corpus directory — last
    writer of one key wins with identical bytes.  ``root=None`` is an
    ephemeral in-memory corpus (the loop works without persistence).

    An undecodable entry is skipped and counted under
    ``fuzz.corpus.corrupt`` — never deleted, since corpus files may
    be hand-curated regression inputs.
    """

    def __init__(self, root: "str | os.PathLike | None") -> None:
        self.root = Path(root) if root is not None else None
        self._ephemeral: dict[str, CorpusEntry] = {}

    def load(self) -> list[CorpusEntry]:
        """Every valid entry, ordered by key (deterministic)."""
        if self.root is None:
            return [self._ephemeral[key]
                    for key in sorted(self._ephemeral)]
        if not self.root.is_dir():
            return []
        entries = []
        for path in sorted(self.root.glob("*.json")):
            try:
                entries.append(
                    CorpusEntry.from_dict(
                        json.loads(path.read_text())
                    )
                )
            except (OSError, ValueError, KeyError):
                metrics().counter("fuzz.corpus.corrupt").inc()
        return sorted(entries, key=lambda entry: entry.key)

    def add(self, entry: CorpusEntry) -> bool:
        """Persist one entry; True when it was published."""
        if self.root is None:
            self._ephemeral[entry.key] = entry
            return True
        blob = (json.dumps(entry.to_dict(), sort_keys=True, indent=2)
                + "\n").encode("utf-8")
        return atomic_write_bytes(
            self.root / f"{entry.key}.json", blob,
            fault_label="corpus.persist",
        )

    def remove(self, key: str) -> None:
        if self.root is None:
            self._ephemeral.pop(key, None)
            return
        try:
            (self.root / f"{key}.json").unlink()
        except OSError:
            pass


# ----------------------------------------------------------------------
# Tiers
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class FuzzTier:
    """One example-budget profile (Hypothesis-settings style)."""

    name: str
    #: Mutational budget of a corpus run.
    mutations: int
    #: Seed-phase cases evaluated before mutating.
    init_seeds: int
    #: Recipe size cap mutations may grow to.
    max_ops: int
    #: Fixed-seed sweep budget (``repro fuzz`` without a corpus).
    seeds: int
    #: Wall-clock safety valve in seconds (budgets stay the
    #: determinism knob; the cap only stops runaway deep runs).
    wall_clock_s: float


TIERS: dict[str, FuzzTier] = {
    "smoke": FuzzTier("smoke", mutations=40, init_seeds=4,
                      max_ops=16, seeds=10, wall_clock_s=120.0),
    "standard": FuzzTier("standard", mutations=200, init_seeds=8,
                         max_ops=24, seeds=25, wall_clock_s=600.0),
    "deep": FuzzTier("deep", mutations=1000, init_seeds=16,
                     max_ops=32, seeds=200, wall_clock_s=3600.0),
}


# ----------------------------------------------------------------------
# The coverage-guided loop
# ----------------------------------------------------------------------


@dataclass
class CorpusFinding:
    """A mutation that broke the pipeline (shrunk, scripted)."""

    case: CorpusCase
    summary: str
    found_by: str
    shrunk: DFGRecipe | None = None
    script_path: str | None = None

    def render(self) -> str:
        line = (f"  {self.case.describe()} [{self.found_by}]: "
                f"{self.summary}")
        if self.shrunk is not None:
            line += (f" (shrunk {self.case.recipe.op_count} -> "
                     f"{self.shrunk.op_count} ops)")
        if self.script_path is not None:
            line += f" repro: {self.script_path}"
        return line


@dataclass
class CorpusReport:
    """Outcome of one coverage-guided fuzzing run."""

    tier: str
    master_seed: int
    mutations: int = 0
    corpus_size: int = 0
    new_entries: list[CorpusEntry] = field(default_factory=list)
    findings: list[CorpusFinding] = field(default_factory=list)
    task_failures: list[TaskFailure] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.findings and not self.task_failures

    @property
    def fingerprints(self) -> set[str]:
        return {entry.fingerprint for entry in self.new_entries}

    def render(self) -> str:
        verdict = "PASS" if self.ok else "FAIL"
        lines = [
            f"corpus fuzz [{self.tier}]: {verdict} "
            f"({self.mutations} mutations, "
            f"{len(self.new_entries)} new coverage, "
            f"{self.corpus_size} corpus entries, "
            f"{len(self.findings)} failing)"
        ]
        lines.extend(
            f"  + {entry.fingerprint} {entry.case.describe()} "
            f"[{entry.found_by}]"
            for entry in self.new_entries
        )
        lines.extend(finding.render() for finding in self.findings)
        lines.extend(
            f"  case {failure.label}: worker {failure.kind}: "
            f"{failure.message}"
            for failure in self.task_failures
        )
        return "\n".join(lines)


def fuzz_corpus(
    corpus_dir: "str | os.PathLike | None" = None,
    *,
    tier: str = "standard",
    budget: int | None = None,
    master_seed: int = 1,
    jobs: int = 1,
    ops: int = 12,
    inputs: int = 4,
    artifacts_dir: str = "artifacts",
    shrink: bool = True,
    max_seconds: float | None = None,
    timeout_s: float | None = None,
) -> CorpusReport:
    """Run the mutational, coverage-guided fuzzing loop.

    Args:
        corpus_dir: persisted corpus directory (None = in-memory).
        tier: budget profile (:data:`TIERS`).
        budget: mutation count; overrides the tier's.
        master_seed: the run's single source of randomness — the
            corpus produced is a pure function of (existing corpus,
            master_seed, jobs, budget).
        jobs: worker processes; candidates are generated in
            deterministic batches and folded in batch order.
        ops / inputs: seed-phase recipe shape.
        artifacts_dir: repro scripts for findings go here — created
            only when the first finding is written, never on a clean
            run.
        shrink: delta-debug failing recipes before scripting them.
        max_seconds: wall-clock safety valve (default: the tier's).
        timeout_s: per-case budget for parallel evaluation.
    """
    if tier not in TIERS:
        raise ValueError(
            f"unknown fuzz tier {tier!r}; expected one of "
            f"{sorted(TIERS)}"
        )
    tier_cfg = TIERS[tier]
    budget = tier_cfg.mutations if budget is None else budget
    max_seconds = (tier_cfg.wall_clock_s if max_seconds is None
                   else max_seconds)

    corpus = Corpus(corpus_dir)
    entries = corpus.load()
    seen = {entry.fingerprint for entry in entries}
    known_keys = {entry.key for entry in entries}
    population = list(entries)
    registry = metrics()
    report = CorpusReport(tier=tier, master_seed=master_seed)
    rng = _LCG(master_seed)
    deadline = (time.monotonic() + max_seconds
                if max_seconds else None)

    def fold(case: CorpusCase, result: "CaseResult | None",
             found_by: str, parent: str | None) -> None:
        if result is None:
            return  # crashed worker: reported via task_failures
        registry.counter("fuzz.corpus.cases").inc()
        if not result.ok:
            registry.counter("fuzz.corpus.failing").inc()
            finding = CorpusFinding(case, result.summary, found_by)
            report.findings.append(finding)
            minimal = case.recipe
            if shrink:
                shrunk = shrink_failure(
                    case.recipe,
                    lambda candidate: recipe_fails(
                        candidate, [case.scheduler],
                        [case.allocator], fu_limit=case.fu_limit,
                    ),
                ).shrunk
                finding.shrunk = shrunk
                minimal = shrunk
            finding.script_path = write_repro_script(
                minimal, [case.scheduler], [case.allocator],
                os.path.join(artifacts_dir,
                             f"repro_corpus_{case.key}.py"),
                notes=f"Corpus case {case.key} [{found_by}]: "
                      f"{result.summary}",
                fu_limit=case.fu_limit,
            )
            return
        if result.fingerprint in seen:
            return
        seen.add(result.fingerprint)
        registry.counter("fuzz.corpus.new_coverage").inc()
        entry = CorpusEntry(case, result.fingerprint, found_by, parent)
        corpus.add(entry)
        known_keys.add(entry.key)
        population.append(entry)
        report.new_entries.append(entry)

    with trace_span("fuzz.corpus", tier=tier, budget=budget,
                    jobs=jobs):
        # Seed phase: deterministic baseline population.  Already-known
        # cases (from a restored corpus) are not re-evaluated.
        seed_batch = [
            (case, "seed")
            for case in (seed_case(number, ops, inputs)
                         for number in
                         range(1, tier_cfg.init_seeds + 1))
            if case.key not in known_keys
        ]
        results, failures = _evaluate_batch(
            [case for case, _ in seed_batch], jobs, timeout_s)
        report.task_failures.extend(failures)
        for (case, found_by), result in zip(seed_batch, results):
            fold(case, result, found_by, None)

        # Mutation phase, batched for parallelism; candidate
        # generation only reads the population between batches, so
        # the evolution is deterministic for fixed (seed, jobs).
        batch_size = 1 if jobs <= 1 else jobs * 2
        while report.mutations < budget:
            if deadline is not None and time.monotonic() > deadline:
                registry.counter("fuzz.corpus.deadline").inc()
                break
            parent_pool = (
                [entry.case for entry in population]
                or [seed_case(number, ops, inputs)
                    for number in range(1, tier_cfg.init_seeds + 1)]
            )
            batch: list[tuple[CorpusCase, str, str | None]] = []
            while (len(batch) < batch_size
                   and report.mutations + len(batch) < budget):
                parent = parent_pool[rng.below(len(parent_pool))]
                mutator, candidate = mutate_case(
                    parent, rng.next(), parent_pool
                )
                if candidate.recipe.op_count > tier_cfg.max_ops:
                    mutator, candidate = "shrink", _with_recipe(
                        candidate,
                        _delete_op(candidate.recipe,
                                   candidate.recipe.op_count - 1),
                    )
                batch.append((candidate, mutator, parent.key))
            report.mutations += len(batch)
            registry.counter("fuzz.corpus.mutations").inc(len(batch))
            results, failures = _evaluate_batch(
                [case for case, _, _ in batch], jobs, timeout_s)
            report.task_failures.extend(failures)
            for (case, mutator, parent_key), result in zip(batch,
                                                           results):
                fold(case, result, mutator, parent_key)

    report.corpus_size = len(population)
    registry.gauge("fuzz.corpus.entries").set(len(population))
    return report


# ----------------------------------------------------------------------
# Replay and minimization
# ----------------------------------------------------------------------


@dataclass
class ReplayRow:
    """One corpus entry's replay outcome."""

    key: str
    ok: bool
    summary: str
    stored_fingerprint: str
    fingerprint: str

    @property
    def drifted(self) -> bool:
        return self.fingerprint != self.stored_fingerprint

    def render(self) -> str:
        status = "ok" if self.ok else "FAIL"
        drift = "" if not self.drifted else (
            f" (fingerprint drift {self.stored_fingerprint} -> "
            f"{self.fingerprint})"
        )
        detail = f": {self.summary}" if self.summary else ""
        return f"  {status:<5} {self.key}{drift}{detail}"


@dataclass
class ReplayReport:
    """Outcome of replaying every corpus entry."""

    rows: list[ReplayRow] = field(default_factory=list)
    task_failures: list[TaskFailure] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return (all(row.ok for row in self.rows)
                and not self.task_failures)

    @property
    def fingerprints(self) -> set[str]:
        return {row.fingerprint for row in self.rows}

    def render(self) -> str:
        verdict = "PASS" if self.ok else "FAIL"
        failing = sum(1 for row in self.rows if not row.ok)
        drifted = sum(1 for row in self.rows if row.drifted)
        lines = [
            f"corpus replay: {verdict} ({len(self.rows)} entries, "
            f"{failing} failing, {drifted} drifted)"
        ]
        lines.extend(row.render() for row in self.rows)
        lines.extend(
            f"  case {failure.label}: worker {failure.kind}: "
            f"{failure.message}"
            for failure in self.task_failures
        )
        return "\n".join(lines)


def replay_corpus(
    corpus_dir: "str | os.PathLike",
    *,
    jobs: int = 1,
    timeout_s: float | None = None,
) -> ReplayReport:
    """Re-run every corpus entry; every one must synthesize clean.

    Fingerprint drift (the entry now lights different coverage —
    normal after pipeline changes) is reported but not fatal; a
    failing entry is.  Replay of an unchanged tree is hermetic: the
    fingerprints equal the stored ones bit-for-bit.
    """
    entries = Corpus(corpus_dir).load()
    report = ReplayReport()
    with trace_span("fuzz.corpus.replay", entries=len(entries)):
        results, failures = _evaluate_batch(
            [entry.case for entry in entries], jobs, timeout_s)
        report.task_failures.extend(failures)
        for entry, result in zip(entries, results):
            if result is None:
                continue
            metrics().counter("fuzz.corpus.replayed").inc()
            report.rows.append(ReplayRow(
                key=entry.key,
                ok=result.ok,
                summary=result.summary,
                stored_fingerprint=entry.fingerprint,
                fingerprint=result.fingerprint,
            ))
    return report


@dataclass
class MinimizeReport:
    """Outcome of corpus minimization."""

    kept: list[str] = field(default_factory=list)
    removed: list[str] = field(default_factory=list)
    fingerprints: set[str] = field(default_factory=set)

    def render(self) -> str:
        return (
            f"corpus minimize: kept {len(self.kept)} of "
            f"{len(self.kept) + len(self.removed)} entries "
            f"({len(self.fingerprints)} fingerprints preserved)"
        )


def minimize_corpus(
    corpus_dir: "str | os.PathLike",
    *,
    jobs: int = 1,
    timeout_s: float | None = None,
) -> MinimizeReport:
    """Drop corpus entries that no longer add coverage.

    Re-evaluates every entry, groups by *current* fingerprint and
    keeps exactly one entry per fingerprint — the smallest recipe,
    ties broken by key.  By construction no fingerprint present
    before minimization is lost.  Kept entries whose stored
    fingerprint drifted are rewritten in place; entries whose replay
    crashed are conservatively kept untouched.
    """
    corpus = Corpus(corpus_dir)
    entries = corpus.load()
    report = MinimizeReport()
    results, _failures = _evaluate_batch(
        [entry.case for entry in entries], jobs, timeout_s)
    groups: dict[str, list[tuple[CorpusEntry, "CaseResult"]]] = {}
    for entry, result in zip(entries, results):
        if result is None:
            report.kept.append(entry.key)
            continue
        groups.setdefault(result.fingerprint, []).append(
            (entry, result)
        )
    for fingerprint in sorted(groups):
        members = sorted(
            groups[fingerprint],
            key=lambda pair: (pair[0].case.recipe.op_count,
                              pair[0].key),
        )
        keeper, keeper_result = members[0]
        report.fingerprints.add(fingerprint)
        report.kept.append(keeper.key)
        if keeper.fingerprint != keeper_result.fingerprint:
            corpus.add(replace(keeper,
                               fingerprint=keeper_result.fingerprint))
        for entry, _result in members[1:]:
            corpus.remove(entry.key)
            report.removed.append(entry.key)
            metrics().counter("fuzz.corpus.minimized").inc()
    return report
