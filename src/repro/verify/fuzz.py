"""Differential fuzzing: random DFGs through the full combo matrix.

Each seed deterministically generates one DFG recipe, synthesizes it
through every scheduler × allocator combination, and checks all stage
contracts plus behavioral/RTL agreement.  A failing seed is shrunk to
a locally-minimal recipe and a standalone repro script is written to
the artifacts directory.

Seeds are independent, so they parallelize across processes the same
way design-space exploration does (``jobs > 1``); shrinking always
happens in the parent process so injected in-process bugs (tests
monkeypatching a scheduler) shrink correctly with ``jobs=1``.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Sequence

from ..core.engine import ALLOCATORS, SCHEDULERS
from ..obs import metrics, trace_span
from ..workloads.random_dfg import (
    DFGRecipe,
    RandomDFGSpec,
    build_dfg,
    dfg_recipe,
)
from .differential import run_differential
from .shrink import (
    describe_failure,
    recipe_fails,
    shrink_failure,
    write_repro_script,
)


@dataclass
class FuzzFailure:
    """One failing seed, after optional shrinking."""

    seed: int
    recipe: DFGRecipe
    summary: str
    shrunk: DFGRecipe | None = None
    script_path: str | None = None

    @property
    def minimal(self) -> DFGRecipe:
        return self.shrunk if self.shrunk is not None else self.recipe

    def render(self) -> str:
        line = f"  seed {self.seed}: {self.summary}"
        if self.shrunk is not None:
            line += (
                f" (shrunk {self.recipe.op_count} -> "
                f"{self.shrunk.op_count} ops)"
            )
        if self.script_path is not None:
            line += f" repro: {self.script_path}"
        return line


@dataclass
class FuzzReport:
    """Outcome of one fuzzing run."""

    seeds: list[int] = field(default_factory=list)
    failures: list[FuzzFailure] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.failures

    def render(self) -> str:
        verdict = "PASS" if self.ok else "FAIL"
        lines = [
            f"fuzz: {verdict} ({len(self.seeds)} seeds, "
            f"{len(self.failures)} failing)"
        ]
        lines.extend(failure.render() for failure in self.failures)
        return "\n".join(lines)


def _spec(seed: int, ops: int, inputs: int) -> RandomDFGSpec:
    return RandomDFGSpec(ops=ops, inputs=inputs, seed=seed)


def check_seed(
    seed: int,
    ops: int = 12,
    inputs: int = 4,
    schedulers: Sequence[str] | None = None,
    allocators: Sequence[str] | None = None,
) -> tuple[bool, str]:
    """Differentially check one seed; returns (ok, failure summary)."""
    recipe = dfg_recipe(_spec(seed, ops, inputs))
    report = run_differential(
        lambda: build_dfg(recipe),
        schedulers=schedulers,
        allocators=allocators,
        label=recipe.name,
    )
    if report.ok:
        return True, ""
    return False, describe_failure(report)


def _fuzz_worker(payload: tuple) -> tuple[int, bool, str]:
    """Process-pool entry point: check one seed in a worker."""
    seed, ops, inputs, schedulers, allocators = payload
    ok, summary = check_seed(seed, ops, inputs, schedulers, allocators)
    return seed, ok, summary


def _run_seeds(payloads: list[tuple], jobs: int) -> list[tuple]:
    if jobs <= 1 or len(payloads) <= 1:
        return [_fuzz_worker(payload) for payload in payloads]
    try:
        from concurrent.futures import ProcessPoolExecutor

        with ProcessPoolExecutor(max_workers=jobs) as pool:
            return list(pool.map(_fuzz_worker, payloads))
    except (ImportError, OSError, PermissionError):
        # No process support in this environment — degrade to serial,
        # same policy as explore.parallel.
        return [_fuzz_worker(payload) for payload in payloads]


def fuzz_seeds(
    seeds: int | Sequence[int],
    *,
    ops: int = 12,
    inputs: int = 4,
    schedulers: Sequence[str] | None = None,
    allocators: Sequence[str] | None = None,
    jobs: int = 1,
    artifacts_dir: str = "artifacts",
    shrink: bool = True,
) -> FuzzReport:
    """Fuzz the differential matrix over many seeds.

    Args:
        seeds: either a seed count (runs seeds ``1..N``) or an explicit
            seed sequence.
        ops / inputs: generated DFG shape.
        schedulers / allocators: combo matrix (default: all registered).
        jobs: worker processes; seed checking parallelizes, shrinking
            stays in the parent.
        artifacts_dir: where repro scripts for shrunk failures go.
        shrink: disable to keep raw failing recipes (faster).
    """
    seed_list = (
        list(range(1, seeds + 1)) if isinstance(seeds, int)
        else list(seeds)
    )
    scheduler_names = sorted(schedulers if schedulers is not None
                             else SCHEDULERS)
    allocator_names = sorted(allocators if allocators is not None
                             else ALLOCATORS)
    payloads = [
        (seed, ops, inputs, tuple(scheduler_names),
         tuple(allocator_names))
        for seed in seed_list
    ]
    report = FuzzReport(seeds=seed_list)
    registry = metrics()
    with trace_span("fuzz", seeds=len(seed_list), jobs=jobs):
        results = _run_seeds(payloads, jobs)
    for seed, ok, summary in results:
        registry.counter("fuzz.seeds.checked").inc()
        if ok:
            continue
        registry.counter("fuzz.seeds.failing").inc()
        recipe = dfg_recipe(_spec(seed, ops, inputs))
        failure = FuzzFailure(seed, recipe, summary)
        report.failures.append(failure)
        if shrink:
            result = shrink_failure(
                recipe,
                lambda candidate: recipe_fails(
                    candidate, scheduler_names, allocator_names
                ),
            )
            failure.shrunk = result.shrunk
        failure.script_path = write_repro_script(
            failure.minimal,
            scheduler_names,
            allocator_names,
            os.path.join(artifacts_dir, f"repro_seed{seed}.py"),
            notes=f"Seed {seed}: {summary}",
        )
    return report
