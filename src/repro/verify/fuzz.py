"""Differential fuzzing: random DFGs through the full combo matrix.

Each seed deterministically generates one DFG recipe, synthesizes it
through every scheduler × allocator combination, and checks all stage
contracts plus behavioral/RTL agreement.  A failing seed is shrunk to
a locally-minimal recipe and a standalone repro script is written to
the artifacts directory.

Seeds are independent, so they parallelize across processes the same
way design-space exploration does (``jobs > 1``); shrinking always
happens in the parent process so injected in-process bugs (tests
monkeypatching a scheduler) shrink correctly with ``jobs=1``.

Parallel seed checking goes through the fault-tolerant
:mod:`repro.exec` runtime: each seed is submitted individually, so a
worker crash (``BrokenProcessPool``) costs exactly the seed that
crashed — already-completed seeds keep their results and the crashed
seed is reported on the :class:`FuzzReport` as a
:class:`~repro.exec.TaskFailure` carrying its seed number.  A
crashed seed is itself a finding (the pipeline died), so it is never
silently retried into a serial full rerun.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Sequence

from ..core.engine import ALLOCATORS, SCHEDULERS
from ..exec import TaskFailure, default_timeout_s, run_tasks
from ..obs import metrics, trace_span
from ..workloads.random_dfg import (
    DFGRecipe,
    RandomDFGSpec,
    build_dfg,
    dfg_recipe,
)
from .differential import run_differential
from .shrink import (
    describe_failure,
    recipe_fails,
    shrink_failure,
    write_repro_script,
)


@dataclass
class FuzzFailure:
    """One failing seed, after optional shrinking."""

    seed: int
    recipe: DFGRecipe
    summary: str
    shrunk: DFGRecipe | None = None
    script_path: str | None = None

    @property
    def minimal(self) -> DFGRecipe:
        return self.shrunk if self.shrunk is not None else self.recipe

    def render(self) -> str:
        line = f"  seed {self.seed}: {self.summary}"
        if self.shrunk is not None:
            line += (
                f" (shrunk {self.recipe.op_count} -> "
                f"{self.shrunk.op_count} ops)"
            )
        if self.script_path is not None:
            line += f" repro: {self.script_path}"
        return line


@dataclass
class FuzzReport:
    """Outcome of one fuzzing run."""

    seeds: list[int] = field(default_factory=list)
    failures: list[FuzzFailure] = field(default_factory=list)
    #: Seeds whose *check itself* could not run to completion (worker
    #: crash, timeout): :class:`~repro.exec.TaskFailure` records with
    #: the seed number as label.  Distinct from ``failures`` — those
    #: are seeds that ran and found a differential bug.
    task_failures: list[TaskFailure] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.failures and not self.task_failures

    def render(self) -> str:
        verdict = "PASS" if self.ok else "FAIL"
        header = (
            f"fuzz: {verdict} ({len(self.seeds)} seeds, "
            f"{len(self.failures)} failing"
        )
        if self.task_failures:
            header += f", {len(self.task_failures)} crashed"
        lines = [header + ")"]
        lines.extend(failure.render() for failure in self.failures)
        lines.extend(
            f"  seed {failure.label}: worker {failure.kind}: "
            f"{failure.message}"
            for failure in self.task_failures
        )
        return "\n".join(lines)


def _spec(seed: int, ops: int, inputs: int) -> RandomDFGSpec:
    return RandomDFGSpec(ops=ops, inputs=inputs, seed=seed)


def check_seed(
    seed: int,
    ops: int = 12,
    inputs: int = 4,
    schedulers: Sequence[str] | None = None,
    allocators: Sequence[str] | None = None,
) -> tuple[bool, str]:
    """Differentially check one seed; returns (ok, failure summary)."""
    recipe = dfg_recipe(_spec(seed, ops, inputs))
    report = run_differential(
        lambda: build_dfg(recipe),
        schedulers=schedulers,
        allocators=allocators,
        label=recipe.name,
    )
    if report.ok:
        return True, ""
    return False, describe_failure(report)


def _fuzz_worker(payload: tuple) -> tuple[int, bool, str]:
    """Process-pool entry point: check one seed in a worker."""
    seed, ops, inputs, schedulers, allocators = payload
    ok, summary = check_seed(seed, ops, inputs, schedulers, allocators)
    return seed, ok, summary


def _run_seeds(payloads: list[tuple], jobs: int,
               timeout_s: float | None = None,
               ) -> tuple[list[tuple], list[TaskFailure]]:
    """Check every seed; returns ``(results, task_failures)``.

    With ``jobs > 1`` each seed is submitted individually to the
    fault-tolerant runtime, so a ``BrokenProcessPool`` from one seed
    cannot erase the results of already-completed seeds.  There is
    deliberately no serial fallback: a seed whose worker crashed or
    hung is reported as a failure with its seed number (crashing the
    pipeline is a bug worth a report, and re-running a crasher
    in-process would take the parent down with it).  Environments
    without subprocess support still degrade to an in-parent serial
    run, same policy as before.
    """
    if jobs <= 1 or len(payloads) <= 1:
        return [_fuzz_worker(payload) for payload in payloads], []
    batch = run_tasks(
        _fuzz_worker,
        payloads,
        labels=[str(payload[0]) for payload in payloads],
        max_workers=jobs,
        timeout_s=(timeout_s if timeout_s is not None
                   else default_timeout_s()),
        fallback=None,
    )
    results = [o.value for o in batch.outcomes if o.ok]
    return results, batch.failures


def fuzz_seeds(
    seeds: int | Sequence[int],
    *,
    ops: int = 12,
    inputs: int = 4,
    schedulers: Sequence[str] | None = None,
    allocators: Sequence[str] | None = None,
    jobs: int = 1,
    artifacts_dir: str = "artifacts",
    shrink: bool = True,
    timeout_s: float | None = None,
) -> FuzzReport:
    """Fuzz the differential matrix over many seeds.

    Args:
        seeds: either a seed count (runs seeds ``1..N``) or an explicit
            seed sequence.
        ops / inputs: generated DFG shape.
        schedulers / allocators: combo matrix (default: all registered).
        jobs: worker processes; seed checking parallelizes, shrinking
            stays in the parent.  A crashed or hung worker costs only
            its own seed — it is reported in
            ``report.task_failures``, completed seeds are kept.
        artifacts_dir: where repro scripts for shrunk failures go.
        shrink: disable to keep raw failing recipes (faster).
        timeout_s: per-seed wall-clock budget for parallel runs
            (default: env ``REPRO_TASK_TIMEOUT_S``, else none).
    """
    seed_list = (
        list(range(1, seeds + 1)) if isinstance(seeds, int)
        else list(seeds)
    )
    scheduler_names = sorted(schedulers if schedulers is not None
                             else SCHEDULERS)
    allocator_names = sorted(allocators if allocators is not None
                             else ALLOCATORS)
    payloads = [
        (seed, ops, inputs, tuple(scheduler_names),
         tuple(allocator_names))
        for seed in seed_list
    ]
    report = FuzzReport(seeds=seed_list)
    registry = metrics()
    with trace_span("fuzz", seeds=len(seed_list), jobs=jobs):
        results, task_failures = _run_seeds(payloads, jobs, timeout_s)
    report.task_failures.extend(task_failures)
    for failure in task_failures:
        registry.counter("fuzz.seeds.crashed").inc()
    for seed, ok, summary in results:
        registry.counter("fuzz.seeds.checked").inc()
        if ok:
            continue
        registry.counter("fuzz.seeds.failing").inc()
        recipe = dfg_recipe(_spec(seed, ops, inputs))
        failure = FuzzFailure(seed, recipe, summary)
        report.failures.append(failure)
        if shrink:
            result = shrink_failure(
                recipe,
                lambda candidate: recipe_fails(
                    candidate, scheduler_names, allocator_names
                ),
            )
            failure.shrunk = result.shrunk
        failure.script_path = write_repro_script(
            failure.minimal,
            scheduler_names,
            allocator_names,
            os.path.join(artifacts_dir, f"repro_seed{seed}.py"),
            notes=f"Seed {seed}: {summary}",
        )
    return report
