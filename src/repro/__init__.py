"""repro — a high-level synthesis library.

A from-scratch reproduction of the complete HLS flow described in
McFarland, Parker & Camposano, "Tutorial on High-Level Synthesis"
(DAC 1988): behavioral compilation, high-level transformations,
scheduling, datapath allocation, module binding, controller synthesis
and RTL generation, plus behavioral/RTL co-simulation for verification.

Quickstart::

    from repro import synthesize
    from repro.scheduling import ResourceConstraints
    from repro.workloads import SQRT_SOURCE

    design = synthesize(
        SQRT_SOURCE, constraints=ResourceConstraints({"fu": 2})
    )
    print(design.report())
"""

__version__ = "1.0.0"

from .core import (  # noqa: E402  (re-exports form the public API)
    SynthesisOptions,
    SynthesizedDesign,
    synthesize,
    synthesize_cdfg,
)
from .lang import compile_source  # noqa: E402

__all__ = [
    "SynthesisOptions",
    "SynthesizedDesign",
    "compile_source",
    "synthesize",
    "synthesize_cdfg",
]
