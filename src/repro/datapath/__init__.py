"""Datapath: storage planning, micro-operations, structural netlist."""

from .netlist import (
    DatapathNetlist,
    Net,
    NetComponent,
    Pin,
    build_netlist,
)
from .plan import BlockPlan, Latch, MemoryWrite, StorageRef, plan_block

__all__ = [
    "BlockPlan",
    "DatapathNetlist",
    "Latch",
    "MemoryWrite",
    "Net",
    "NetComponent",
    "Pin",
    "StorageRef",
    "build_netlist",
    "plan_block",
]
