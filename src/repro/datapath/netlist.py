"""Structural datapath netlist.

§1.1: "Structure refers to the set of interconnected components that
make up the system — something like a netlist."  This module makes that
structure explicit: registers, functional units, multiplexers, memories
and constant drivers as component instances, with nets connecting
source pins to sink pins.  The netlist is derived from a complete
:class:`~repro.core.design.SynthesizedDesign` and is what the wiring
estimator and the datapath DOT renderer consume.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from ..allocation.interconnect import estimate_interconnect

if TYPE_CHECKING:  # pragma: no cover
    from ..core.design import SynthesizedDesign


@dataclass(frozen=True)
class NetComponent:
    """One physical component instance.

    ``kind`` is one of "register", "fu", "mux", "memory", "const";
    ``name`` is unique within the netlist; ``width`` is in bits.
    """

    kind: str
    name: str
    width: int = 1

    def __str__(self) -> str:
        return self.name


@dataclass(frozen=True)
class Pin:
    """A connection point: a component plus a port label."""

    component: NetComponent
    port: str

    def __str__(self) -> str:
        return f"{self.component.name}.{self.port}"


@dataclass
class Net:
    """One net: a single driver pin fanning out to sink pins.

    ``width`` is the number of bits the net carries (the widest value
    ever transferred along it).
    """

    driver: Pin
    sinks: list[Pin] = field(default_factory=list)
    width: int = 1

    @property
    def fanout(self) -> int:
        return len(self.sinks)


@dataclass
class DatapathNetlist:
    """The derived structure of one synthesized design."""

    components: dict[str, NetComponent] = field(default_factory=dict)
    nets: list[Net] = field(default_factory=list)

    def add_component(self, component: NetComponent) -> NetComponent:
        existing = self.components.get(component.name)
        if existing is not None:
            return existing
        self.components[component.name] = component
        return component

    def components_of_kind(self, kind: str) -> list[NetComponent]:
        return sorted(
            (c for c in self.components.values() if c.kind == kind),
            key=lambda c: c.name,
        )

    # Summary -----------------------------------------------------------

    @property
    def register_count(self) -> int:
        return len(self.components_of_kind("register"))

    @property
    def fu_count(self) -> int:
        return len(self.components_of_kind("fu"))

    @property
    def mux_count(self) -> int:
        return len(self.components_of_kind("mux"))

    @property
    def net_count(self) -> int:
        return len(self.nets)

    def stats(self) -> str:
        return (
            f"netlist: {self.fu_count} FUs, {self.register_count} "
            f"registers, {self.mux_count} muxes, "
            f"{len(self.components_of_kind('memory'))} memories, "
            f"{self.net_count} nets"
        )

    # Rendering ----------------------------------------------------------

    def dot(self) -> str:
        """Graphviz rendering of the datapath structure (the right half
        of the paper's Fig. 6)."""
        shapes = {
            "register": "box",
            "fu": "trapezium",
            "mux": "invtriangle",
            "memory": "box3d",
            "const": "plaintext",
        }
        lines = ["digraph datapath {", "  rankdir=TB;"]
        for component in sorted(self.components.values(),
                                key=lambda c: c.name):
            shape = shapes.get(component.kind, "ellipse")
            lines.append(
                f'  "{component.name}" [shape={shape}, '
                f'label="{component.name}\\n{component.width}b"];'
            )
        for net in self.nets:
            for sink in net.sinks:
                lines.append(
                    f'  "{net.driver.component.name}" -> '
                    f'"{sink.component.name}" '
                    f'[taillabel="{net.driver.port}", '
                    f'headlabel="{sink.port}"];'
                )
        lines.append("}")
        return "\n".join(lines)


def _source_component(netlist: DatapathNetlist, source: tuple,
                      width: int) -> NetComponent:
    if source[0] == "reg":
        return netlist.add_component(
            NetComponent("register", f"r{source[1]}", width)
        )
    if source[0] == "const":
        return netlist.add_component(
            NetComponent("const", f"const_{abs(hash(source[1])) % 10_000}",
                         width)
        )
    if source[0] == "fu":
        return netlist.add_component(
            NetComponent("fu", f"{source[1]}{source[2]}", width)
        )
    # ("logic", op id): chained free logic — modelled as a small FU.
    return netlist.add_component(
        NetComponent("fu", f"logic{source[1]}", width)
    )


def build_netlist(design: "SynthesizedDesign") -> DatapathNetlist:
    """Derive the structural netlist of a synthesized design.

    Components are the union over all blocks (the same physical
    datapath executes every block); multiplexers appear wherever a
    destination port has more than one source.  Registers are modelled
    at *allocation* granularity (`r<k>` = allocation register k), the
    level the paper's interconnect discussion works at; each register
    is as wide as the widest value ever assigned to it.  Chained free
    logic (``logic<op>`` components) gets its operand input nets too,
    so every combinational path through the datapath is a real path in
    the netlist.
    """
    from ..ir.types import bit_width

    netlist = DatapathNetlist()
    for name, array_type in design.cdfg.memories.items():
        netlist.add_component(
            NetComponent("memory", f"mem_{name}",
                         bit_width(array_type.element))
        )
    if design.binding is not None:
        for fu, component in design.binding.components.items():
            netlist.add_component(
                NetComponent("fu", f"{fu.cls}{fu.index}",
                             design.binding.widths[fu])
            )

    # FU widths from every allocation's op mapping.  The binding only
    # covers instances that execute real component kinds; an FU whose
    # ops are all pass-through moves (bare VAR_WRITE) never gets bound
    # but still appears as a datapath destination, so its width comes
    # from the values routed through it.
    fu_widths: dict[tuple[str, int], int] = {}
    for allocation in design.allocations.values():
        problem = allocation.schedule.problem
        for op_id, fu in allocation.fu_map.items():
            op = problem.op(op_id)
            widths = [bit_width(v.type) for v in op.operands]
            if op.result is not None:
                widths.append(bit_width(op.result.type))
            key = (fu.cls, fu.index)
            fu_widths[key] = max(
                fu_widths.get(key, 1), max(widths, default=1)
            )

    # Physical register widths: the widest value each allocation
    # register ever holds, across every block.
    register_widths: dict[int, int] = {}
    for allocation in design.allocations.values():
        for op in allocation.schedule.problem.ops:
            if op.result is None:
                continue
            register = allocation.register_map.get(op.result.id)
            if register is None:
                continue
            register_widths[register] = max(
                register_widths.get(register, 1),
                bit_width(op.result.type),
            )
    for index, width in sorted(register_widths.items()):
        netlist.add_component(NetComponent("register", f"r{index}", width))

    # Merge per-block port→sources maps (and transfer widths), and
    # remember which allocation can resolve each chained-logic op.
    port_sources: dict[tuple, list] = {}
    edge_widths: dict[tuple, int] = {}
    logic_home: dict[int, "object"] = {}  # op id → Allocation
    for allocation in design.allocations.values():
        estimate = estimate_interconnect(allocation)
        for port, sources in estimate.port_sources.items():
            known = port_sources.setdefault(port, [])
            for source in sorted(sources, key=str):
                if source not in known:
                    known.append(source)
                if source[0] == "logic":
                    logic_home[source[1]] = allocation
        for edge, width in estimate.widths.items():
            edge_widths[edge] = max(edge_widths.get(edge, 0), width)

    def register_name(index: int) -> str:
        # Interconnect sources name allocation registers; the physical
        # mapping (var/tmp) differs per block, so the netlist models
        # the register file at allocation granularity.
        return f"r{index}"

    for port, sources in sorted(port_sources.items(), key=str):
        if port[0] == "fuport":
            _, cls, index, operand = port
            dest = netlist.add_component(
                NetComponent("fu", f"{cls}{index}",
                             fu_widths.get((cls, index), 1))
            )
            dest_pin = Pin(dest, f"in{operand}")
        else:  # ("regin", index)
            dest = netlist.add_component(
                NetComponent("register", register_name(port[1]), 1)
            )
            dest_pin = Pin(dest, "d")

        if len(sources) > 1:
            mux = netlist.add_component(
                NetComponent(
                    "mux",
                    f"mux_{'_'.join(str(p) for p in port)}",
                    dest.width,
                )
            )
            for position, source in enumerate(sources):
                width = edge_widths.get((port, source), dest.width)
                driver = _source_component(netlist, source, width)
                netlist.nets.append(
                    Net(Pin(driver, "q"), [Pin(mux, f"i{position}")],
                        width)
                )
            netlist.nets.append(Net(Pin(mux, "y"), [dest_pin], dest.width))
        else:
            width = edge_widths.get((port, sources[0]), dest.width)
            driver = _source_component(netlist, sources[0], width)
            netlist.nets.append(Net(Pin(driver, "q"), [dest_pin], width))

    _wire_logic_inputs(netlist, design, logic_home)
    return netlist


def _wire_logic_inputs(netlist: DatapathNetlist,
                       design: "SynthesizedDesign",
                       logic_home: dict) -> None:
    """Add operand input nets for every chained-logic component.

    ``estimate_interconnect`` never enumerates the inputs of free
    (zero-cost) chained ops — they do not contribute multiplexing cost.
    Structurally, though, the path *through* such an op exists, and the
    combinational-loop check needs it; this pass walks each logic
    source and wires its operands back to their drivers, following
    chains of free ops transitively.
    """
    from ..allocation.interconnect import value_source
    from ..ir.types import bit_width

    op_by_id: dict[int, tuple] = {}
    for allocation in design.allocations.values():
        for op in allocation.schedule.problem.ops:
            op_by_id[op.id] = (op, allocation)

    pending = sorted(logic_home)
    wired: set[int] = set()
    while pending:
        op_id = pending.pop()
        if op_id in wired:
            continue
        wired.add(op_id)
        entry = op_by_id.get(op_id)
        if entry is None:
            continue
        op, allocation = entry
        result_width = (
            bit_width(op.result.type) if op.result is not None else 1
        )
        logic = netlist.add_component(
            NetComponent("fu", f"logic{op_id}", result_width)
        )
        for index, operand in enumerate(op.operands):
            source = value_source(allocation, operand)
            width = bit_width(operand.type)
            driver = _source_component(netlist, source, width)
            netlist.nets.append(
                Net(Pin(driver, "q"), [Pin(logic, f"in{index}")], width)
            )
            if source[0] == "logic" and source[1] not in wired:
                pending.append(source[1])
