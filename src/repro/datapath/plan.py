"""Datapath planning: mapping scheduled/allocated values onto physical
storage, and deriving the per-step micro-operations the controller must
drive.

Physical storage model:

* every scalar **variable** owns an architectural register (the value a
  variable carries between blocks and across loop iterations lives
  there — what the paper calls assigning values to storage);
* intra-block temporaries use **temp registers**, one per allocation
  register index (the allocators already guarantee lifetime-disjoint
  sharing within a block; across blocks temps are trivially reusable
  because temporaries never cross block boundaries);
* every **memory** (array variable) is an addressable RAM.

A value written to a variable is latched straight into the variable's
register at the end of its defining step whenever that is safe (the
variable's incoming value has no later readers); otherwise it is kept
in its temp register and copied into the variable register at the end
of the block's final step — a deferred write-back.  This resolves the
read/write hazard without constraining the scheduler.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..allocation.base import Allocation
from ..allocation.lifetimes import ValueLifetime, compute_lifetimes
from ..analysis.liveness import live_out_variables
from ..errors import AllocationError
from ..ir.opcodes import OpKind
from ..ir.values import BasicBlock, Operation, Value
from ..scheduling.base import Schedule

StorageRef = tuple
# ("var", name) | ("tmp", index)


@dataclass(frozen=True)
class Latch:
    """A register load at the end of a control step.

    Attributes:
        target: destination storage.
        value: the value latched (source resolved by the simulator:
            this step's wire if freshly produced, else the value's
            storage for deferred copies).
        step: control step at whose end the load-enable fires.
    """

    target: StorageRef
    value: Value
    step: int


@dataclass(frozen=True)
class MemoryWrite:
    """A memory store committed at the end of a control step."""

    memory: str
    op: Operation  # the STORE op (operands: index, value)
    step: int


@dataclass
class BlockPlan:
    """Micro-operation table for one scheduled, allocated block."""

    block: BasicBlock
    schedule: Schedule
    allocation: Allocation
    #: value id -> physical storage, for every registered value.
    storage_of: dict[int, StorageRef] = field(default_factory=dict)
    #: ops starting at each step, topologically ordered within the step.
    starts: list[list[Operation]] = field(default_factory=list)
    latches: list[Latch] = field(default_factory=list)
    memory_writes: list[MemoryWrite] = field(default_factory=list)

    @property
    def steps(self) -> int:
        return max(len(self.starts), 1) if self.block.ops else 0

    def latches_at(self, step: int) -> list[Latch]:
        return [latch for latch in self.latches if latch.step == step]

    def memory_writes_at(self, step: int) -> list[MemoryWrite]:
        return [mw for mw in self.memory_writes if mw.step == step]


def plan_block(block: BasicBlock, schedule: Schedule,
               allocation: Allocation,
               live_out_values: set[int] | None = None) -> BlockPlan:
    """Derive the micro-operation table for one block.

    Args:
        block: the block (must be the one the schedule covers).
        schedule: a validated schedule of the block.
        allocation: a validated allocation of that schedule.
        live_out_values: ids of values the controller reads at the end
            of the block (region conditions); they are kept readable
            through the final step.
    """
    plan = BlockPlan(block, schedule, allocation)
    live_out_values = live_out_values or set()
    length = schedule.length
    if not block.ops:
        return plan

    # Step -> ops starting there, in block (topological) order.
    plan.starts = [[] for _ in range(length)]
    for op in block.ops:
        plan.starts[schedule.start[op.id]].append(op)

    live_out_vars = live_out_variables(schedule)
    lifetimes = compute_lifetimes(schedule, live_out_vars)
    by_value: dict[int, ValueLifetime] = {
        lt.value.id: lt for lt in lifetimes
    }

    # Ensure region conditions survive to the final step.
    for value_id in live_out_values:
        if value_id in by_value:
            lifetime = by_value[value_id]
            lifetime.last_use = max(lifetime.last_use, length - 1)
        else:
            value = _find_value(block, value_id)
            def_step = (
                -1
                if value.producer.kind is OpKind.VAR_READ
                else schedule.end(value.producer.id)
            )
            if def_step < length - 1:
                lifetime = ValueLifetime(value, def_step, length - 1)
                lifetimes.append(lifetime)
                by_value[value_id] = lifetime
                if value_id not in allocation.register_map:
                    # Give the condition its own register slot.
                    next_reg = (
                        max(allocation.register_map.values(), default=-1)
                        + 1
                    )
                    allocation.register_map[value_id] = next_reg

    incoming_last_use = _incoming_last_uses(block, schedule)

    # Storage assignment per registered value.
    for lifetime in lifetimes:
        value = lifetime.value
        producer = value.producer
        if producer.kind is OpKind.VAR_READ:
            plan.storage_of[value.id] = ("var", producer.attrs["var"])
            continue
        register = allocation.register_map.get(value.id)
        if register is None:
            raise AllocationError(
                f"value {value!r} needs storage but is unallocated"
            )
        plan.storage_of[value.id] = ("tmp", register)
        plan.latches.append(
            Latch(("tmp", register), value, lifetime.def_step)
        )

    # Variable write-backs.
    for op in block.ops:
        if op.kind is not OpKind.VAR_WRITE:
            continue
        var = op.attrs["var"]
        value = op.operands[0]
        avail = (
            0
            if value.producer.kind in (OpKind.VAR_READ, OpKind.CONST)
            else schedule.end(value.producer.id)
        )
        avail = max(avail, schedule.start[op.id])
        hazard_until = incoming_last_use.get(var, -1)
        write_step = max(avail, hazard_until, 0)
        write_step = min(write_step, length - 1) if length else 0
        if write_step < avail:
            raise AllocationError(
                f"variable {var!r} write cannot fit in block "
                f"{block.name}"
            )
        if write_step > avail and value.id not in plan.storage_of:
            if live_out_vars is not None and var not in live_out_vars:
                # A dead store whose deferral slot has no backing
                # register: nothing downstream reads the variable, so
                # the write-back is simply dropped.
                continue
            raise AllocationError(
                f"deferred write of {var!r} needs {value!r} stored, "
                f"but it has no register"
            )
        plan.latches.append(Latch(("var", var), value, write_step))

    # If a value's only storage purpose was carrying into its variable
    # and the variable latch happens at the same step, drop the
    # redundant temp latch (keeps the register count honest).
    plan.latches = _prune_redundant_temp_latches(plan, by_value, length)

    # Memory stores commit at the end of their step.
    for op in block.ops:
        if op.kind is OpKind.STORE:
            plan.memory_writes.append(
                MemoryWrite(op.attrs["memory"], op, schedule.end(op.id))
            )
    return plan


def _find_value(block: BasicBlock, value_id: int) -> Value:
    for op in block.ops:
        if op.result is not None and op.result.id == value_id:
            return op.result
    raise AllocationError(f"value v{value_id} not found in {block.name}")


def _incoming_last_uses(block: BasicBlock,
                        schedule: Schedule) -> dict[str, int]:
    """Per variable, the last step its *incoming* value is read at
    (from ops that consume the VAR_READ result)."""
    last_use: dict[str, int] = {}
    for op in block.ops:
        if op.kind is not OpKind.VAR_READ:
            continue
        var = op.attrs["var"]
        latest = -1
        for user, _ in op.result.uses:
            if user.kind is OpKind.VAR_WRITE:
                continue
            latest = max(latest, schedule.start[user.id])
        last_use[var] = max(last_use.get(var, -1), latest)
    return last_use


def _prune_redundant_temp_latches(
    plan: BlockPlan, by_value: dict[int, ValueLifetime], length: int
) -> list[Latch]:
    """Drop temp latches for values whose every read is served by the
    wire or by the variable register they are written back to."""
    var_latch_step: dict[int, int] = {}
    for latch in plan.latches:
        if latch.target[0] == "var":
            step = var_latch_step.get(latch.value.id)
            var_latch_step[latch.value.id] = (
                latch.step if step is None else min(step, latch.step)
            )

    kept: list[Latch] = []
    for latch in plan.latches:
        if latch.target[0] != "tmp":
            kept.append(latch)
            continue
        lifetime = by_value.get(latch.value.id)
        var_step = var_latch_step.get(latch.value.id)
        # The temp is redundant if the variable register receives the
        # value at its definition step and no in-block reader needs the
        # temp before the variable copy lands.
        if (
            lifetime is not None
            and var_step is not None
            and var_step == lifetime.def_step
            and len(var_latch_step) > 0
        ):
            # Readers can use the variable register instead.
            target_var = next(
                l.target
                for l in plan.latches
                if l.target[0] == "var" and l.value.id == latch.value.id
                and l.step == var_step
            )
            plan.storage_of[latch.value.id] = target_var
            continue
        kept.append(latch)
    return kept
