"""A fault-tolerant task runtime for process-pool fan-out.

Both design-space exploration (:mod:`repro.explore.parallel`) and
differential fuzzing (:mod:`repro.verify.fuzz`) used to hand a whole
batch to ``pool.map`` — one bad task then poisoned the batch: a
crashed worker raised ``BrokenProcessPool`` and every completed
result was discarded (and, in exploration, the *entire* sweep was
silently re-run serially, doubling wall-clock and double-executing a
genuinely failing synthesis).

:func:`run_tasks` fixes those failure semantics.  Tasks are submitted
individually and harvested as they complete, so the runtime always
knows exactly which tasks finished.  The policy, per task:

* **completed** — the result is kept, no matter what happens to any
  other task afterwards.
* **worker crash / pool breakage / unpicklable result** — retryable:
  the task is resubmitted (bounded by ``max_retries``, exponential
  backoff) onto a freshly respawned pool; when retries are exhausted
  the task is *quarantined* and redone via the caller's serial
  ``fallback`` in the parent process.
* **wall-clock timeout** — not retried in the pool (a hang is assumed
  deterministic); the hung pool is killed and respawned for the
  remaining tasks, the timed-out task is quarantined to the serial
  fallback.
* **genuine task error** — any other exception raised by the task
  function is *final*: it is never re-executed (neither in the pool
  nor serially) and surfaces exactly once as a structured
  :class:`TaskFailure` carrying the original worker traceback.

Tasks that still cannot produce a value (no fallback, or the fallback
itself raised) yield :class:`TaskFailure` records in the returned
:class:`BatchResult` — callers attach them to their own reports
instead of losing the whole batch.

Every outcome is counted in the metrics registry (``exec.tasks.*``,
``exec.pool.respawns``) and the batch and each serial fallback run
are spanned by the tracer.  Deterministic fault injection
(:mod:`repro.exec.faults`) makes all of these paths testable.
"""

from __future__ import annotations

import os
import pickle
import time
import traceback as traceback_module
from collections import deque
from concurrent.futures import (
    FIRST_COMPLETED,
    CancelledError,
    Future,
    ProcessPoolExecutor,
    TimeoutError as FutureTimeoutError,
    wait,
)
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from typing import Any, Callable, Sequence

from ..obs import metrics, trace_span
from .faults import maybe_inject, wants_unpicklable

#: Environment default for the per-task wall-clock timeout (seconds).
TIMEOUT_ENV = "REPRO_TASK_TIMEOUT_S"


def default_timeout_s() -> float | None:
    """The env-configured per-task timeout, or None (no timeout)."""
    raw = os.environ.get(TIMEOUT_ENV, "").strip()
    if not raw:
        return None
    try:
        value = float(raw)
    except ValueError:
        return None
    return value if value > 0 else None


@dataclass
class TaskFailure:
    """One task that permanently failed (structured, renderable).

    ``kind`` is one of ``error`` (the task function raised — carries
    the original traceback), ``crash`` (worker process died),
    ``timeout`` (exceeded the wall-clock budget), ``unpicklable``
    (result could not be shipped back to the parent) or
    ``pool-unavailable`` (this environment cannot spawn processes).
    """

    label: str
    index: int
    kind: str
    message: str
    attempts: int
    traceback: str | None = None

    def render(self) -> str:
        plural = "s" if self.attempts != 1 else ""
        return (
            f"task {self.label}: {self.kind} after "
            f"{self.attempts} attempt{plural}: {self.message}"
        )


@dataclass
class TaskOutcome:
    """The final state of one task: a value or a failure, never both."""

    index: int
    label: str
    value: Any = None
    failure: TaskFailure | None = None
    attempts: int = 1
    #: The value was produced by the parent-side serial fallback, not
    #: by a pool worker.
    degraded: bool = False

    @property
    def ok(self) -> bool:
        return self.failure is None


@dataclass
class BatchResult:
    """All task outcomes of one :func:`run_tasks` call, in input order."""

    outcomes: list[TaskOutcome] = field(default_factory=list)

    @property
    def failures(self) -> list[TaskFailure]:
        return [o.failure for o in self.outcomes if o.failure is not None]

    @property
    def ok(self) -> bool:
        return all(o.ok for o in self.outcomes)

    def values(self) -> list[Any]:
        """Values of the successful outcomes, in input order."""
        return [o.value for o in self.outcomes if o.ok]


class _UnpicklableResult:
    """Injected-fault wrapper whose pickling always fails."""

    def __init__(self, value: Any) -> None:
        self.value = value

    def __reduce__(self):
        raise pickle.PicklingError(
            "injected unpicklable task result"
        )


def _execute_task(item: tuple) -> Any:
    """Worker-side shim: fault hook, then the actual task function."""
    fn, payload, label, fault_spec = item
    maybe_inject(label, fault_spec)
    result = fn(payload)
    if wants_unpicklable(label, fault_spec):
        return _UnpicklableResult(result)
    return result


def _is_pickling_error(error: BaseException) -> bool:
    if isinstance(error, pickle.PickleError):
        return True
    return (
        isinstance(error, (TypeError, AttributeError))
        and "pickle" in str(error).lower()
    )


def _format_remote_traceback(error: BaseException) -> str:
    """The worker-side traceback if the pool shipped one, else ours."""
    cause = error.__cause__
    if cause is not None and type(cause).__name__ == "_RemoteTraceback":
        return f"{str(cause).strip()}\n{type(error).__name__}: {error}"
    return "".join(
        traceback_module.format_exception(type(error), error,
                                          error.__traceback__)
    )


def _kill_pool(pool: ProcessPoolExecutor) -> None:
    """Tear a (possibly hung or broken) pool down without blocking.

    ``shutdown(wait=True)`` would join a wedged worker forever, so the
    worker processes are terminated outright first.  Touching
    ``_processes`` is unavoidable — the executor API offers no kill —
    but the attribute has been stable since 3.8 and everything here is
    best-effort behind guards.
    """
    try:
        pool.shutdown(wait=False, cancel_futures=True)
    except Exception:
        pass
    processes = list((getattr(pool, "_processes", None) or {}).values())
    for process in processes:
        try:
            process.terminate()
        except Exception:
            pass
    for process in processes:
        try:
            process.join(timeout=0.5)
        except Exception:
            pass


@dataclass
class _TaskState:
    index: int
    payload: Any
    label: str
    attempts: int = 0
    started: float = 0.0
    not_before: float = 0.0


def run_tasks(
    fn: Callable[[Any], Any],
    payloads: Sequence[Any],
    *,
    labels: Sequence[Any] | None = None,
    max_workers: int | None = None,
    timeout_s: float | None = None,
    max_retries: int = 2,
    backoff_s: float = 0.05,
    fallback: Callable[[Any, int], Any] | None = None,
    fault_spec: str | None = None,
) -> BatchResult:
    """Run ``fn`` over ``payloads`` on a process pool, fault-tolerantly.

    Args:
        fn: module-level (picklable) task function of one payload.
        payloads: one picklable payload per task.
        labels: per-task display/injection labels (default: indices).
        max_workers: pool size (``None``: one per CPU).  Values below
            one are a :class:`ValueError` — the caller owns the
            decision to skip the pool entirely.
        timeout_s: per-task wall-clock budget, measured from pool
            submission (tasks are only submitted when a worker slot is
            free, so queue time does not count).  ``None``: no limit.
        max_retries: pool resubmissions allowed per task for retryable
            faults (crash / pool breakage / unpicklable result).
        backoff_s: base of the exponential retry backoff.
        fallback: ``fallback(payload, index)`` run in the *parent* for
            quarantined tasks (crash retries exhausted, timeout, pool
            unavailable).  ``None``: such tasks fail with a record.
            Never invoked for genuine task errors — those surface once.
        fault_spec: explicit fault-injection spec (default: the
            ``REPRO_FAULT`` environment variable).

    Returns:
        A :class:`BatchResult` with one :class:`TaskOutcome` per
        payload, in input order.
    """
    if max_workers is None:
        max_workers = os.cpu_count() or 1
    if max_workers < 1:
        raise ValueError(
            f"max_workers must be >= 1, got {max_workers}"
        )
    if max_retries < 0:
        raise ValueError(f"max_retries must be >= 0, got {max_retries}")

    payloads = list(payloads)
    count = len(payloads)
    if labels is None:
        labels = [str(i) for i in range(count)]
    else:
        labels = [str(label) for label in labels]
        if len(labels) != count:
            raise ValueError("labels and payloads must align")

    registry = metrics()
    outcomes: list[TaskOutcome | None] = [None] * count
    #: Quarantined tasks awaiting the parent-side serial pass.
    quarantined: list[tuple[_TaskState, TaskFailure]] = []

    with trace_span("exec.batch", tasks=count, workers=max_workers):
        _run_pool_phase(
            fn, payloads, labels, max_workers, timeout_s, max_retries,
            backoff_s, fault_spec, registry, outcomes, quarantined,
        )
        _run_serial_phase(
            fn, fallback, registry, outcomes, quarantined,
        )

    assert all(outcome is not None for outcome in outcomes)
    return BatchResult(outcomes=list(outcomes))  # type: ignore[arg-type]


def _run_pool_phase(
    fn, payloads, labels, max_workers, timeout_s, max_retries,
    backoff_s, fault_spec, registry, outcomes, quarantined,
) -> None:
    """Drive the pool until every task completed, failed finally, or
    was quarantined for the serial phase."""
    ready: deque[_TaskState] = deque(
        _TaskState(index=i, payload=payloads[i], label=labels[i])
        for i in range(len(payloads))
    )
    inflight: dict[Future, _TaskState] = {}
    pool: ProcessPoolExecutor | None = None
    pool_size = 0
    batch_started = time.monotonic()

    def update_pool_gauges() -> None:
        """Peak pool telemetry: workers, in-flight tasks, utilization.

        Gauges keep the batch maximum — the same rule the registry
        uses for cross-process merges — so a report reads "how full
        did the pool get", not whatever the last sample was.
        """
        in_flight_gauge = registry.gauge("exec.pool.in_flight")
        in_flight_gauge.set(max(in_flight_gauge.value, len(inflight)))
        if pool_size:
            utilization = registry.gauge("exec.pool.utilization")
            utilization.set(
                max(utilization.value, len(inflight) / pool_size)
            )

    def record_value(state: _TaskState, value: Any) -> None:
        outcomes[state.index] = TaskOutcome(
            index=state.index, label=state.label, value=value,
            attempts=state.attempts,
        )
        registry.counter("exec.tasks.completed").inc()

    def record_error(state: _TaskState, error: BaseException) -> None:
        registry.counter("exec.tasks.errors").inc()
        registry.counter("exec.tasks.failed").inc()
        outcomes[state.index] = TaskOutcome(
            index=state.index, label=state.label,
            attempts=state.attempts,
            failure=TaskFailure(
                label=state.label, index=state.index, kind="error",
                message=f"{type(error).__name__}: {error}",
                attempts=state.attempts,
                traceback=_format_remote_traceback(error),
            ),
        )

    def quarantine(state: _TaskState, kind: str, message: str) -> None:
        quarantined.append((state, TaskFailure(
            label=state.label, index=state.index, kind=kind,
            message=message, attempts=state.attempts,
        )))

    def retry_or_quarantine(state: _TaskState, kind: str,
                            message: str) -> None:
        if state.attempts > max_retries:
            quarantine(state, kind, message)
            return
        registry.counter("exec.tasks.retried").inc()
        state.not_before = (
            time.monotonic() + backoff_s * (2 ** (state.attempts - 1))
        )
        ready.append(state)

    def resolve(future: Future, state: _TaskState) -> bool:
        """Fold one finished future into the books.  Returns True when
        the pool must be treated as broken."""
        nonlocal stalled_respawns
        try:
            value = future.result(timeout=0)
        except CancelledError:
            state.attempts -= 1  # never ran; resubmission is free
            ready.append(state)
            return False
        except FutureTimeoutError:
            # Not actually done (drain path); treat like cancelled.
            state.attempts -= 1
            ready.append(state)
            return False
        except BrokenProcessPool as error:
            registry.counter("exec.tasks.crashed").inc()
            retry_or_quarantine(
                state, "crash",
                str(error) or "worker process died unexpectedly",
            )
            return True
        except Exception as error:
            if _is_pickling_error(error):
                registry.counter("exec.tasks.unpicklable").inc()
                retry_or_quarantine(
                    state, "unpicklable",
                    f"result could not be pickled: {error}",
                )
            else:
                record_error(state, error)
            return False
        record_value(state, value)
        stalled_respawns = 0
        return False

    #: Consecutive pool respawns without a single task completing —
    #: the backstop against an environment where every spawn breaks.
    stalled_respawns = 0

    def respawn() -> None:
        nonlocal pool, stalled_respawns
        if pool is not None:
            _kill_pool(pool)
            registry.counter("exec.pool.respawns").inc()
            stalled_respawns += 1
        pool = None

    def drain_and_respawn() -> None:
        """Harvest whatever already finished, requeue the rest (free
        of charge — they were collateral), and drop the pool."""
        for future in list(inflight):
            state = inflight.pop(future)
            if future.done():
                resolve(future, state)
            else:
                state.attempts -= 1
                ready.append(state)
        respawn()

    try:
        while ready or inflight:
            now = time.monotonic()

            # Spawn (or respawn) the pool lazily.
            if pool is None and ready:
                if stalled_respawns > max(3, max_retries + 1):
                    # Every fresh pool dies before completing anything;
                    # stop burning processes and go serial.
                    while ready:
                        state = ready.popleft()
                        quarantine(state, "pool-unavailable",
                                   "process pool keeps breaking")
                    break
                remaining = len(ready) + len(inflight)
                try:
                    pool_size = max(1, min(max_workers, remaining))
                    pool = ProcessPoolExecutor(max_workers=pool_size)
                    workers_gauge = registry.gauge("exec.pool.workers")
                    workers_gauge.set(
                        max(workers_gauge.value, pool_size)
                    )
                except (ImportError, NotImplementedError, OSError,
                        PermissionError):
                    # No subprocess support in this environment: every
                    # remaining task goes to the serial phase.
                    while ready:
                        state = ready.popleft()
                        quarantine(state, "pool-unavailable",
                                   "process pool unavailable")
                    break

            # Submit while worker slots are free (in-flight tasks are
            # therefore genuinely executing, which is what makes the
            # per-task deadline below meaningful).
            while pool is not None and len(inflight) < pool_size:
                eligible = next(
                    (i for i, s in enumerate(ready)
                     if s.not_before <= now),
                    None,
                )
                if eligible is None:
                    break
                state = ready[eligible]
                del ready[eligible]
                state.attempts += 1
                state.started = time.monotonic()
                try:
                    future = pool.submit(
                        _execute_task,
                        (fn, state.payload, state.label, fault_spec),
                    )
                except (BrokenProcessPool, RuntimeError):
                    state.attempts -= 1
                    ready.appendleft(state)
                    drain_and_respawn()
                    break
                registry.counter("exec.tasks.submitted").inc()
                inflight[future] = state
                if state.attempts == 1:
                    # Queue wait: how long the task sat ready before a
                    # worker slot freed up (first attempt only —
                    # retries wait on backoff, not on the queue).
                    wait_gauge = registry.gauge("exec.queue.wait_s")
                    wait_gauge.set(max(
                        wait_gauge.value,
                        state.started - batch_started,
                    ))
            update_pool_gauges()

            if not inflight:
                if not ready:
                    break
                # Everything is backing off; nap until the earliest.
                delay = min(s.not_before for s in ready) - time.monotonic()
                if delay > 0:
                    time.sleep(min(delay, 0.25))
                continue

            # Wait for the first completion, the nearest deadline, or
            # the earliest backoff expiry — whichever comes first.
            horizons = []
            if timeout_s is not None:
                horizons.append(
                    min(s.started for s in inflight.values())
                    + timeout_s - now
                )
            if ready:
                horizons.append(
                    min(s.not_before for s in ready) - now
                )
            wait_for = max(0.01, min(horizons)) if horizons else None
            done, _ = wait(set(inflight), timeout=wait_for,
                           return_when=FIRST_COMPLETED)

            broken = False
            for future in done:
                state = inflight.pop(future)
                broken = resolve(future, state) or broken
            if broken:
                drain_and_respawn()
                continue

            # Deadline enforcement: quarantine hung tasks, then kill
            # the pool (a wedged worker never frees its slot).
            if timeout_s is not None and inflight:
                now = time.monotonic()
                timed_out = [
                    (future, state)
                    for future, state in inflight.items()
                    if now - state.started > timeout_s
                    and not future.done()
                ]
                if timed_out:
                    for future, state in timed_out:
                        inflight.pop(future)
                        registry.counter("exec.tasks.timeout").inc()
                        quarantine(
                            state, "timeout",
                            f"exceeded {timeout_s:g}s wall-clock "
                            f"timeout",
                        )
                    drain_and_respawn()
    finally:
        if pool is not None:
            _kill_pool(pool)


def _run_serial_phase(fn, fallback, registry, outcomes,
                      quarantined) -> None:
    """Redo quarantined tasks in the parent, preserving input order."""
    for state, failure in sorted(quarantined,
                                 key=lambda pair: pair[0].index):
        runner = fallback
        if runner is None and failure.kind == "pool-unavailable":
            # The task never ran anywhere — degrading to an in-parent
            # run of the task function itself is the legacy serial
            # path, not a retry of a failed execution.
            runner = lambda payload, index: fn(payload)  # noqa: E731
        if runner is None:
            registry.counter("exec.tasks.failed").inc()
            outcomes[state.index] = TaskOutcome(
                index=state.index, label=state.label,
                failure=failure, attempts=state.attempts,
            )
            continue
        registry.counter("exec.tasks.degraded").inc()
        with trace_span("exec.serial_fallback", task=state.label,
                        cause=failure.kind):
            try:
                value = runner(state.payload, state.index)
            except Exception as error:
                registry.counter("exec.tasks.failed").inc()
                failure.message += (
                    f"; serial fallback failed: "
                    f"{type(error).__name__}: {error}"
                )
                failure.traceback = "".join(
                    traceback_module.format_exception(
                        type(error), error, error.__traceback__
                    )
                )
                outcomes[state.index] = TaskOutcome(
                    index=state.index, label=state.label,
                    failure=failure, attempts=state.attempts,
                )
            else:
                outcomes[state.index] = TaskOutcome(
                    index=state.index, label=state.label, value=value,
                    attempts=state.attempts, degraded=True,
                )
