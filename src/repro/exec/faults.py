"""Deterministic fault injection for exercising the task runtime.

Robustness code is only trustworthy if its failure paths run in CI,
so the runtime carries a built-in fault injector: a *fault spec*
names tasks that should crash, hang, error out, or return an
unpicklable result, and the worker shim consults it at task start.
The spec comes from the ``REPRO_FAULT`` environment variable (which
worker processes inherit) or is passed explicitly — e.g. via
``SynthesisOptions(fault_spec=...)`` for design-space sweeps.

Spec grammar (comma-separated entries)::

    kind[:task[:scope]]

* ``kind``  — ``crash`` (``os._exit``), ``hang`` (sleep
  ``REPRO_FAULT_HANG_S`` seconds, default 30), ``error`` (raise
  :class:`InjectedFault`), ``unpicklable`` (wrap the task's result so
  it cannot be pickled back to the parent).
* ``task``  — the task label to hit (``*`` or omitted: every task).
* ``scope`` — ``worker`` (default: only inside a pool worker
  process), ``parent`` (only in the parent), or ``any``.

The default ``worker`` scope is what makes partial-result recovery
testable: an injected crash sinks the pool attempt, while the
parent-side serial fallback for that task runs clean.
"""

from __future__ import annotations

import multiprocessing
import os
import time
from dataclasses import dataclass
from functools import lru_cache

#: Environment variable holding the active fault spec.
FAULT_ENV = "REPRO_FAULT"
#: Environment variable overriding how long a ``hang`` fault sleeps.
HANG_ENV = "REPRO_FAULT_HANG_S"

FAULT_KINDS = ("crash", "hang", "error", "unpicklable")
FAULT_SCOPES = ("worker", "parent", "any")

#: Exit status used by injected crashes, so a crashed worker is
#: distinguishable from an ordinary signal death in process tables.
CRASH_EXIT_STATUS = 32


class InjectedFault(RuntimeError):
    """The exception raised by an ``error``-kind injected fault."""


@dataclass(frozen=True)
class FaultEntry:
    """One parsed fault-spec entry."""

    kind: str
    task: str = "*"
    scope: str = "worker"

    def matches(self, label: str, *, in_worker: bool) -> bool:
        if self.task not in ("*", label):
            return False
        if self.scope == "any":
            return True
        return in_worker if self.scope == "worker" else not in_worker


@lru_cache(maxsize=64)
def parse_fault_spec(spec: str | None) -> tuple[FaultEntry, ...]:
    """Parse ``kind[:task[:scope]],…`` into :class:`FaultEntry` rows."""
    if not spec:
        return ()
    entries = []
    for part in str(spec).split(","):
        part = part.strip()
        if not part:
            continue
        bits = [bit.strip() for bit in part.split(":")]
        kind = bits[0]
        if kind not in FAULT_KINDS:
            raise ValueError(
                f"unknown fault kind {kind!r} in spec {spec!r} "
                f"(expected one of {', '.join(FAULT_KINDS)})"
            )
        task = bits[1] if len(bits) > 1 and bits[1] else "*"
        scope = bits[2] if len(bits) > 2 and bits[2] else "worker"
        if scope not in FAULT_SCOPES:
            raise ValueError(
                f"unknown fault scope {scope!r} in spec {spec!r} "
                f"(expected one of {', '.join(FAULT_SCOPES)})"
            )
        if len(bits) > 3:
            raise ValueError(f"malformed fault entry {part!r} in {spec!r}")
        entries.append(FaultEntry(kind, task, scope))
    return tuple(entries)


def in_worker_process() -> bool:
    """True inside a multiprocessing child (pool worker)."""
    return multiprocessing.parent_process() is not None


def active_entries(spec: str | None = None) -> tuple[FaultEntry, ...]:
    """The fault entries in force: the explicit spec, else the env."""
    if spec is None:
        spec = os.environ.get(FAULT_ENV, "")
    return parse_fault_spec(spec)


def hang_seconds() -> float:
    try:
        return float(os.environ.get(HANG_ENV, "30"))
    except ValueError:
        return 30.0


def maybe_inject(label: str, spec: str | None = None) -> None:
    """Fire any crash/hang/error fault registered for ``label``.

    Called by the runtime's worker shim at task start.  A no-op when
    no entry matches (the overwhelmingly common case: one env lookup
    on a cached parse).
    """
    entries = active_entries(spec)
    if not entries:
        return
    worker = in_worker_process()
    for entry in entries:
        if not entry.matches(label, in_worker=worker):
            continue
        if entry.kind == "crash":
            os._exit(CRASH_EXIT_STATUS)
        elif entry.kind == "hang":
            time.sleep(hang_seconds())
        elif entry.kind == "error":
            raise InjectedFault(f"injected error for task {label!r}")


def wants_unpicklable(label: str, spec: str | None = None) -> bool:
    """Should ``label``'s result be made unpicklable here?"""
    entries = active_entries(spec)
    if not entries:
        return False
    worker = in_worker_process()
    return any(
        entry.kind == "unpicklable"
        and entry.matches(label, in_worker=worker)
        for entry in entries
    )
