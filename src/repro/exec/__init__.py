"""Fault-tolerant task execution shared by the parallel subsystems.

The paper's §1.2 promise — "produce several designs for the same
specification in a reasonable amount of time" — only holds if one bad
design point (or fuzz seed) cannot sink a whole parallel batch.  This
package provides the runtime both :mod:`repro.explore.parallel` and
:mod:`repro.verify.fuzz` delegate to:

* :func:`run_tasks` — per-task submission with wall-clock timeouts,
  bounded retries with backoff, pool respawn on breakage, partial-
  result preservation and a parent-side serial fallback for
  quarantined tasks;
* :class:`TaskFailure` / :class:`TaskOutcome` / :class:`BatchResult`
  — structured records of what happened to each task;
* :mod:`repro.exec.faults` — deterministic fault injection
  (``REPRO_FAULT``) so every failure path above is testable.

See ``docs/resilience.md`` for the failure model and policy table.
"""

from .faults import (
    CRASH_EXIT_STATUS,
    FAULT_ENV,
    FAULT_KINDS,
    FAULT_SCOPES,
    HANG_ENV,
    FaultEntry,
    InjectedFault,
    in_worker_process,
    maybe_inject,
    parse_fault_spec,
)
from .runtime import (
    TIMEOUT_ENV,
    BatchResult,
    TaskFailure,
    TaskOutcome,
    default_timeout_s,
    run_tasks,
)

__all__ = [
    "CRASH_EXIT_STATUS",
    "FAULT_ENV",
    "FAULT_KINDS",
    "FAULT_SCOPES",
    "HANG_ENV",
    "TIMEOUT_ENV",
    "BatchResult",
    "FaultEntry",
    "InjectedFault",
    "TaskFailure",
    "TaskOutcome",
    "default_timeout_s",
    "in_worker_process",
    "maybe_inject",
    "parse_fault_spec",
    "run_tasks",
]
