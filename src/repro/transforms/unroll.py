"""Full loop unrolling for loops with known, small trip counts.

§2: "Loop unrolling can also be done in this case since the number of
iterations is fixed and small."  A loop whose ``trip_count`` is known
(from the frontend's ``for`` bounds or from
:class:`~repro.transforms.tripcount.TripCountAnalysis`) and at most
``max_trips`` is replaced by ``trip_count`` sequential copies of its
body.  The exit-condition computation is retained in each copy (its
result simply goes unused in all but name — dead-code elimination then
removes it together with the counter bookkeeping when the counter has
no other observers).

Only post-test loops (body always executes ``trip_count`` times) and
pre-test loops are both handled; for pre-test loops the trip count
already accounts for the test-first semantics, and the test block is
dropped along with the back edge.
"""

from __future__ import annotations

from ..ir.cdfg import CDFG, BlockRegion, IfRegion, LoopRegion, Region, SeqRegion
from .base import Pass
from .clone import RegionCloner

DEFAULT_MAX_TRIPS = 64


class LoopUnrolling(Pass):
    """Replace constant-trip loops with straight-line copies."""

    name = "unroll"

    def __init__(self, max_trips: int = DEFAULT_MAX_TRIPS) -> None:
        self._max_trips = max_trips

    def run(self, cdfg: CDFG) -> bool:
        return self._unroll_in(cdfg, cdfg.body)

    def _unroll_in(self, cdfg: CDFG, region: Region) -> bool:
        """Recursively unroll eligible loops under ``region``."""
        changed = False
        if isinstance(region, SeqRegion):
            for index, item in enumerate(list(region.items)):
                if isinstance(item, LoopRegion) and self._eligible(item):
                    region.items[index] = self._unrolled(cdfg, item)
                    changed = True
                else:
                    changed |= self._unroll_in(cdfg, item)
        elif isinstance(region, LoopRegion):
            changed |= self._unroll_in(cdfg, region.body)
        elif isinstance(region, IfRegion):
            changed |= self._unroll_in(cdfg, region.then_region)
            if region.else_region is not None:
                changed |= self._unroll_in(cdfg, region.else_region)
        return changed

    def _eligible(self, loop: LoopRegion) -> bool:
        if loop.trip_count is None:
            return False
        if loop.trip_count == 0:
            # A provably-zero-trip pre-test loop never runs its body,
            # and its single test evaluation only feeds the branch
            # decision — the whole loop collapses to an empty sequence.
            # A post-test body always runs at least once, so a zero
            # count there would be contradictory; leave it alone.
            return not loop.test_in_body
        if not 0 < loop.trip_count <= self._max_trips:
            return False
        # Nested loops inside the body are cloned verbatim, which is
        # fine, but we refuse if the body contains a loop without a
        # trip count (cloning explodes the later analysis for no gain).
        return True

    def _unrolled(self, cdfg: CDFG, loop: LoopRegion) -> Region:
        assert loop.trip_count is not None
        copies: list[Region] = []
        if not loop.test_in_body:
            # Pre-test loop: the test block runs before each iteration
            # and once more at exit; its computation may feed the body
            # (e.g. `for` reads the counter), so keep a copy before
            # each body copy, plus nothing at the end (the final test's
            # only consumer was the branch decision).
            for _ in range(loop.trip_count):
                cloner = RegionCloner(cdfg)
                copies.append(BlockRegion(cloner.clone_block(loop.test_block)))
                copies.append(cloner.clone_region(loop.body))
        else:
            # Post-test loop: the body (which includes the test block)
            # runs exactly trip_count times.
            for _ in range(loop.trip_count):
                cloner = RegionCloner(cdfg)
                copies.append(cloner.clone_region(loop.body))
        return SeqRegion(copies)
