"""Range-driven bitwidth narrowing.

The datapath is costed from *declared* widths (FU widths, register
bits, mux fan-in bits — see :mod:`repro.estimation.area`), yet the
values flowing through it often provably fit far fewer bits.  This pass
consumes the sound interval analysis (:mod:`repro.analysis.ranges`)
and shrinks every value type and local register to the smallest width
whose representable range still covers the value's interval, leaving
signedness, fixed-point scaling and the type class untouched — so the
shrunken type represents *exactly* the same set of reachable values
and every downstream ``coerce`` is the identity it was before.

Width conversions stay implicit: in this IR every consumer re-coerces
at its boundary (``VAR_WRITE``/``STORE`` coerce onto the destination
type, FU input nets sign-extend up to the pin width in the datapath),
so narrowing never has to materialize separate extend/trunc
operations; the proof obligation is purely that each value's interval
fits its new type (see ``docs/static-analysis.md``).

Safety rules:

* **Ports are interface contracts** — input/output types are never
  changed.
* **Bitwise operands** (`AND`/`OR`/`XOR`/`NOT`) are masked to their
  *own* declared width by ``_as_bits``, which is value-changing for
  negative values; a value consumed bitwise is only narrowed when its
  interval is provably non-negative (same bit pattern either way), and
  a variable with such a read is left alone entirely.
* **Registers** (declared variable types) narrow to the hull of every
  value the variable ever holds, including its implicit zero
  initialization.

Narrowing under an input contract (``assume``) is sound only for
executions honoring the contract; the synthesis engine verifies the
narrowed design against the behavioral reference with contract-
respecting vectors (see ``SynthesisOptions.narrow``).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Mapping

from ..analysis.ranges import Interval, RangesResult, range_analysis
from ..ir.cdfg import CDFG
from ..ir.opcodes import OpKind
from ..ir.types import FixedType, IntType, Type, intern_type
from .base import Pass

if TYPE_CHECKING:  # pragma: no cover
    from ..sim.semantics import Number

#: Bitwise kinds whose operands are consumed as masked bit patterns.
_BITWISE = (OpKind.AND, OpKind.OR, OpKind.XOR, OpKind.NOT)


def _signed_width(lo: int, hi: int) -> int:
    """Minimal signed two's-complement width covering [lo, hi]."""
    width = 1
    while lo < -(1 << (width - 1)) or hi > (1 << (width - 1)) - 1:
        width += 1
    return width


def _unsigned_width(hi: int) -> int:
    return max(1, int(hi).bit_length())


def narrowed_type(type_: Type, interval: Interval) -> Type | None:
    """The narrowest same-class type holding ``interval``, or None when
    no shrink is possible."""
    if isinstance(type_, FixedType):
        lo = round(interval.lo * type_.scale)
        hi = round(interval.hi * type_.scale)
        width = (
            _signed_width(lo, hi) if type_.signed else _unsigned_width(hi)
        )
        width = max(width, type_.frac_bits + 1)
        if width < type_.width:
            return intern_type(FixedType(width, type_.frac_bits, type_.signed))
        return None
    if isinstance(type_, IntType):
        lo, hi = int(interval.lo), int(interval.hi)
        width = (
            _signed_width(lo, hi) if type_.signed else _unsigned_width(hi)
        )
        if width < type_.width:
            return intern_type(IntType(width, type_.signed))
        return None
    return None


class RangeNarrowing(Pass):
    """Shrink value and register widths to their inferred ranges."""

    name = "range-narrow"

    def __init__(
        self, assume: Mapping[str, tuple[Number, Number]] | None = None
    ) -> None:
        self._assume = dict(assume or {})
        self.narrowed_values = 0
        self.narrowed_variables = 0
        self.bits_saved = 0

    def run(self, cdfg: CDFG) -> bool:
        self.narrowed_values = 0
        self.narrowed_variables = 0
        self.bits_saved = 0
        ranges = range_analysis(cdfg, assume=self._assume)

        pinned_values, pinned_variables = self._bitwise_pins(cdfg, ranges)

        for op in cdfg.operations():
            result = op.result
            if result is None or result.id in pinned_values:
                continue
            interval = ranges.values.get(result.id)
            if interval is None:
                continue
            narrow = narrowed_type(result.type, interval)
            if narrow is None:
                continue
            self.bits_saved += result.type.width - narrow.width
            result.type = narrow
            self.narrowed_values += 1

        ports = {port.name for port in cdfg.inputs}
        ports |= {port.name for port in cdfg.outputs}
        for var, declared in cdfg.variables.items():
            if var in ports or var in pinned_variables:
                continue
            hull = ranges.variables.get(var)
            if hull is None:
                continue
            narrow = narrowed_type(declared, hull)
            if narrow is None:
                continue
            self.bits_saved += declared.width - narrow.width
            cdfg.variables[var] = narrow
            self.narrowed_variables += 1

        changed = bool(self.narrowed_values or self.narrowed_variables)
        if changed:
            cdfg.validate()
        return changed

    def summary(self) -> str:
        return (
            f"{self.narrowed_values} value(s), "
            f"{self.narrowed_variables} register(s) narrowed, "
            f"{self.bits_saved} bit(s) saved"
        )

    # ------------------------------------------------------------------

    def _bitwise_pins(
        self, cdfg: CDFG, ranges: RangesResult
    ) -> tuple[set[int], set[str]]:
        """Values (and the variables they read) whose width must stay:
        possibly-negative operands of bitwise ops, where the operand
        width is part of the ``_as_bits`` masking semantics."""
        values: set[int] = set()
        variables: set[str] = set()
        for op in cdfg.operations():
            if op.kind not in _BITWISE:
                continue
            for value in op.operands:
                interval = ranges.values.get(value.id)
                if interval is not None and interval.lo >= 0:
                    continue  # same bit pattern at any covering width
                values.add(value.id)
                if value.producer.kind is OpKind.VAR_READ:
                    variables.add(value.producer.attrs["var"])
        return values, variables
