"""Static trip-count analysis for counter-controlled loops.

Recognizes the classic pattern of the paper's sqrt example — a counter
initialized to a constant before the loop, stepped by a constant inside
it, and compared against a constant to exit — and determines the exact
iteration count by *simulating the counter* with full wraparound
semantics.  Simulation (rather than closed-form arithmetic) makes the
analysis correct for narrowed counters such as the paper's two-bit
``I`` that exits on ``I = 0``.

The result is stored in ``LoopRegion.trip_count``, which loop unrolling
and schedule-length accounting (3 + 4x5 = 23) consume.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..ir.cdfg import CDFG, LoopRegion
from ..ir.opcodes import COMPARISONS, OpKind
from ..ir.types import IntType
from ..ir.values import Operation, Value
from ..sim.semantics import evaluate
from .base import Pass

_MAX_SIMULATED_TRIPS = 1 << 20


@dataclass
class CounterPattern:
    """A recognized loop counter.

    Attributes:
        var: the counter variable name.
        init: its constant value on loop entry.
        read_op: the VAR_READ of the counter in the loop body.
        step_op: the INC/DEC/ADD/SUB computing the next counter value.
        compare_op: the exit comparison (one side is the stepped value,
            the other a constant).
        limit: the comparison constant.
        counter_first: True when the stepped value is the comparison's
            left operand.
    """

    var: str
    init: int
    read_op: Operation
    step_op: Operation
    compare_op: Operation
    limit: int
    counter_first: bool


def _const_of(value: Value):
    if value.producer.kind is OpKind.CONST:
        return value.producer.attrs["value"]
    return None


def match_counter(cdfg: CDFG, loop: LoopRegion) -> CounterPattern | None:
    """Try to recognize a constant-stepped counter controlling ``loop``.

    Only post-test loops (``repeat``/``until``) are matched; pre-test
    loops could be added symmetrically but the paper's example is
    post-test.
    """
    if not loop.test_in_body or not loop.exit_on_true:
        return None
    compare_op = loop.cond.producer
    if compare_op.kind not in COMPARISONS:
        return None

    left, right = compare_op.operands
    if _const_of(right) is not None:
        counter_value, limit, counter_first = left, _const_of(right), True
    elif _const_of(left) is not None:
        counter_value, limit, counter_first = right, _const_of(left), False
    else:
        return None
    if not isinstance(limit, int):
        return None

    step_op = counter_value.producer
    if step_op.kind in (OpKind.INC, OpKind.DEC):
        source = step_op.operands[0]
    elif step_op.kind in (OpKind.ADD, OpKind.SUB):
        if _const_of(step_op.operands[1]) is None:
            return None
        source = step_op.operands[0]
    else:
        return None

    read_op = source.producer
    if read_op.kind is not OpKind.VAR_READ:
        return None
    var = read_op.attrs["var"]
    if not isinstance(cdfg.variables.get(var), IntType):
        return None

    # The loop body must write the stepped value back to the counter.
    write_ok = any(
        op.kind is OpKind.VAR_WRITE
        and op.attrs["var"] == var
        and op.operands[0] is counter_value
        for op in step_op.block.ops
    )
    if not write_ok:
        return None

    init = _find_entry_constant(cdfg, loop, var)
    if init is None:
        return None
    return CounterPattern(
        var=var,
        init=init,
        read_op=read_op,
        step_op=step_op,
        compare_op=compare_op,
        limit=limit,
        counter_first=counter_first,
    )


def _find_entry_constant(cdfg: CDFG, loop: LoopRegion,
                         var: str) -> int | None:
    """The constant written to ``var`` immediately before ``loop``.

    Conservative: the *last* write of ``var`` in the blocks preceding
    the loop (in execution order) must be a constant, and no other loop
    or branch may sit between that write and this loop (we require the
    write's block to appear before the loop's blocks in a straight scan
    and the variable to have no writes in other control regions before
    the loop).
    """
    loop_block_ids = {block.id for block in loop.blocks()}
    last_const: int | None = None
    for block in cdfg.blocks():
        if block.id in loop_block_ids:
            break
        for op in block.ops:
            if op.kind is OpKind.VAR_WRITE and op.attrs["var"] == var:
                last_const = _const_of(op.operands[0])
    if isinstance(last_const, int):
        return last_const
    return None


def simulate_trip_count(pattern: CounterPattern,
                        counter_type: IntType) -> int | None:
    """Execute the counter loop symbolically; return the trip count.

    Returns None if the loop does not terminate within the simulation
    bound.
    """
    value = counter_type.wrap(pattern.init)
    step_kind = pattern.step_op.kind
    step_amount = 1
    if step_kind in (OpKind.ADD, OpKind.SUB):
        step_amount = _const_of(pattern.step_op.operands[1])
    for trip in range(1, _MAX_SIMULATED_TRIPS + 1):
        if step_kind in (OpKind.INC, OpKind.ADD):
            value = counter_type.wrap(value + step_amount)
        else:
            value = counter_type.wrap(value - step_amount)
        operands = (
            [value, pattern.limit]
            if pattern.counter_first
            else [pattern.limit, value]
        )
        exited = evaluate(
            pattern.compare_op.kind,
            operands,
            [counter_type, counter_type],
            None,
        )
        if exited:
            return trip
    return None


class TripCountAnalysis(Pass):
    """Annotate counter-controlled loops with their trip counts."""

    name = "tripcount"

    def run(self, cdfg: CDFG) -> bool:
        changed = False
        for loop in cdfg.loops():
            if loop.trip_count is not None:
                continue
            pattern = match_counter(cdfg, loop)
            if pattern is None:
                continue
            counter_type = cdfg.variables[pattern.var]
            assert isinstance(counter_type, IntType)
            trips = simulate_trip_count(pattern, counter_type)
            if trips is not None:
                loop.trip_count = trips
                changed = True
        return changed
