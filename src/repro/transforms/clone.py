"""Deep-cloning of regions and blocks (used by loop unrolling).

Cloning creates fresh operations and values with new ids, remapping
intra-region value references.  Variable reads/writes keep their
variable names — the loop-carried state flows through the variables,
which is exactly what makes unrolled iterations compose sequentially.
"""

from __future__ import annotations

from ..ir.cdfg import (
    CDFG,
    BlockRegion,
    IfRegion,
    LoopRegion,
    Region,
    SeqRegion,
)
from ..ir.values import BasicBlock, Operation, Value


class RegionCloner:
    """Clones regions, remapping values.

    ``cdfg`` is the graph that owns the clones (it allocates the fresh
    op/value/block ids).  When cloning *within* one CDFG (loop
    unrolling) cloned blocks get a ``'`` name suffix; pass
    ``name_suffix=""`` to keep names, as :func:`clone_cdfg` does when
    cloning a whole procedure into a fresh CDFG.
    """

    def __init__(self, cdfg: CDFG, name_suffix: str = "'") -> None:
        self._cdfg = cdfg
        self._suffix = name_suffix
        self.value_map: dict[int, Value] = {}

    def clone_block(self, block: BasicBlock) -> BasicBlock:
        new_block = self._cdfg.new_block(f"{block.name}{self._suffix}")
        for op in block.ops:
            operands = []
            for value in op.operands:
                mapped = self.value_map.get(value.id)
                if mapped is None:
                    # Reference to a value outside the cloned region:
                    # keep it (legal only if its block executes earlier).
                    mapped = value
                operands.append(mapped)
            new_op = Operation(
                self._cdfg.next_op_id(), op.kind, operands, new_block,
                dict(op.attrs),
            )
            for index, value in enumerate(operands):
                value.uses.append((new_op, index))
            if op.result is not None:
                new_value = Value(
                    self._cdfg.next_value_id(), op.result.type, new_op,
                    op.result.name,
                )
                new_op.result = new_value
                self.value_map[op.result.id] = new_value
            new_block.ops.append(new_op)
        return new_block

    def clone_region(self, region: Region) -> Region:
        if isinstance(region, BlockRegion):
            return BlockRegion(self.clone_block(region.block))
        if isinstance(region, SeqRegion):
            return SeqRegion([self.clone_region(item) for item in region.items])
        if isinstance(region, IfRegion):
            cond_block = self.clone_block(region.cond_block)
            cond = self.value_map[region.cond.id]
            then_region = self.clone_region(region.then_region)
            else_region = (
                self.clone_region(region.else_region)
                if region.else_region is not None
                else None
            )
            return IfRegion(cond_block, cond, then_region, else_region)
        if isinstance(region, LoopRegion):
            if region.test_in_body:
                body = self.clone_region(region.body)
                # The test block was cloned as part of the body.
                test_block_id = region.test_block.id
                test_block = self._find_cloned_block(body, test_block_id,
                                                     region)
                cond = self.value_map[region.cond.id]
                return LoopRegion(
                    body=body,
                    test_block=test_block,
                    cond=cond,
                    exit_on_true=region.exit_on_true,
                    test_in_body=True,
                    trip_count=region.trip_count,
                )
            test_block = self.clone_block(region.test_block)
            cond = self.value_map[region.cond.id]
            body = self.clone_region(region.body)
            return LoopRegion(
                body=body,
                test_block=test_block,
                cond=cond,
                exit_on_true=region.exit_on_true,
                test_in_body=False,
                trip_count=region.trip_count,
            )
        raise TypeError(f"cannot clone region {region!r}")

    def _find_cloned_block(self, body: Region, original_id: int,
                           loop: LoopRegion) -> BasicBlock:
        """Locate the clone of the loop's in-body test block.

        The clone of block N is the body block that was produced while
        cloning block N; we track it through the condition value's new
        producer.
        """
        cond_clone = self.value_map[loop.cond.id]
        return cond_clone.producer.block


def clone_cdfg(cdfg: CDFG) -> CDFG:
    """Deep-clone a whole procedure into a fresh, independent CDFG.

    Synthesis mutates its input (the transform pipeline rewrites ops in
    place), so design-space exploration clones the compiled template
    once per design point instead of re-running the frontend.  The
    clone allocates ids from 1 in region execution order, so every
    clone of the same template is structurally identical — which keeps
    exploration results deterministic across points and processes.
    """
    fresh = CDFG(cdfg.name)
    for port in cdfg.inputs:
        fresh.add_input(port.name, port.type)
    for port in cdfg.outputs:
        fresh.add_output(port.name, port.type)
    declared = set(fresh.variables) | set(fresh.memories)
    for name, type_ in cdfg.variables.items():
        if name not in declared:
            fresh.add_variable(name, type_)
    for name, type_ in cdfg.memories.items():
        if name not in declared:
            fresh.add_variable(name, type_)
    cloner = RegionCloner(fresh, name_suffix="")
    fresh.body = cloner.clone_region(cdfg.body)
    return fresh
