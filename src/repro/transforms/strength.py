"""Strength reduction: replace expensive operations by cheap ones.

These are the paper's "local transformations … more specific to
hardware" (§2), illustrated on the square-root example:

* ``x * 0.5`` → ``x >> 1`` (fixed-point multiply by a power of two
  becomes a shift, which costs no functional unit);
* ``x * 2**k`` / ``x / 2**k`` → shifts, for integers too;
* ``x + 1`` → increment, ``x - 1`` → decrement (an inc/dec unit is far
  cheaper than a full adder and, on an ALU, frees the adder's slot).
"""

from __future__ import annotations

import math

from ..ir.cdfg import CDFG
from ..ir.opcodes import OpKind
from ..ir.types import FixedType, IntType
from ..ir.values import BasicBlock, Operation, Value
from .base import Pass


def _power_of_two_exponent(value) -> int | None:
    """If ``value`` equals 2**k for integer k (k may be negative for
    fixed-point fractions like 0.5), return k; else None."""
    if value <= 0:
        return None
    exponent = math.log2(value)
    rounded = round(exponent)
    if abs(exponent - rounded) < 1e-12:
        return int(rounded)
    return None


def _const_of(value: Value):
    if value.producer.kind is OpKind.CONST:
        return value.producer.attrs["value"]
    return None


class StrengthReduction(Pass):
    """Multiplications/divisions by powers of two → shifts;
    ``±1`` additions → increment/decrement."""

    name = "strength"

    def run(self, cdfg: CDFG) -> bool:
        changed = False
        for block in cdfg.blocks():
            for op in list(block.ops):
                if op.result is None:
                    continue
                if op.kind is OpKind.MUL and self._reduce_mul(block, op):
                    changed = True
                elif op.kind is OpKind.DIV and self._reduce_div(block, op):
                    changed = True
                elif op.kind is OpKind.ADD and self._reduce_add(block, op):
                    changed = True
                elif op.kind is OpKind.SUB and self._reduce_sub(block, op):
                    changed = True
        return changed

    # ------------------------------------------------------------------

    def _replace_with(self, block: BasicBlock, op: Operation,
                      kind: OpKind, operands: list[Value]) -> None:
        """Swap ``op`` for a new op of ``kind`` producing the same value."""
        assert op.result is not None
        new_op = Operation(block.cdfg.next_op_id(), kind, operands, block)
        for index, value in enumerate(operands):
            value.uses.append((new_op, index))
        new_op.result = op.result
        op.result.producer = new_op
        # Detach the old op's operand uses and splice the new op in place.
        for index, value in enumerate(op.operands):
            value.uses.remove((op, index))
        block.ops[block.ops.index(op)] = new_op
        block.retopo()

    def _shift_amount(self, block: BasicBlock, op: Operation,
                      amount: int) -> Value:
        value = block.const(amount, IntType(6, signed=False))
        const_op = value.producer
        block.ops.remove(const_op)
        block.ops.insert(block.ops.index(op), const_op)
        return value

    def _reduce_mul(self, block: BasicBlock, op: Operation) -> bool:
        """x * 2**k → shift (operand order normalized first)."""
        left, right = op.operands
        left_const, right_const = _const_of(left), _const_of(right)
        if right_const is None and left_const is not None:
            left, right = right, left
            right_const = left_const
        if right_const is None:
            return False
        exponent = _power_of_two_exponent(right_const)
        if exponent is None or exponent == 0:
            return False
        assert op.result is not None
        result_type = op.result.type
        if exponent < 0 and not isinstance(result_type, FixedType):
            return False  # fractional scaling only meaningful in fixed point
        kind = OpKind.SHL if exponent > 0 else OpKind.SHR
        amount = self._shift_amount(block, op, abs(exponent))
        self._replace_with(block, op, kind, [left, amount])
        return True

    def _reduce_div(self, block: BasicBlock, op: Operation) -> bool:
        """x / 2**k → x >> k (k > 0)."""
        divisor = _const_of(op.operands[1])
        if divisor is None:
            return False
        exponent = _power_of_two_exponent(divisor)
        if exponent is None or exponent <= 0:
            return False
        dividend = op.operands[0]
        amount = self._shift_amount(block, op, exponent)
        self._replace_with(block, op, OpKind.SHR, [dividend, amount])
        return True

    def _reduce_add(self, block: BasicBlock, op: Operation) -> bool:
        """x + 1 → INC x."""
        left, right = op.operands
        if _const_of(right) == 1:
            self._replace_with(block, op, OpKind.INC, [left])
            return True
        if _const_of(left) == 1:
            self._replace_with(block, op, OpKind.INC, [right])
            return True
        return False

    def _reduce_sub(self, block: BasicBlock, op: Operation) -> bool:
        """x - 1 → DEC x."""
        left, right = op.operands
        if _const_of(right) == 1:
            self._replace_with(block, op, OpKind.DEC, [left])
            return True
        return False
