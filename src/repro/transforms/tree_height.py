"""Tree-height reduction: balance chains of associative operations.

A left-leaning chain ``(((a+b)+c)+d)`` has critical path 3 additions;
rebalancing to ``(a+b)+(c+d)`` cuts it to 2, exposing parallelism for
the scheduler.  This is one of the "high level transformations on the
behavior" the paper discusses (§4 notes when/in-what-order to apply
such transforms is an open problem — we simply apply it greedily to
maximal single-use chains).

Only ADD and MUL chains are rebalanced, only when every intermediate
value is used exactly once (so no other consumer observes the
intermediate), and only when all values share one type (so fixed-point
rounding is unaffected by reassociation — each partial sum is quantized
to the same grid either way; exact equality of results is guaranteed
for integers and for fixed-point values that do not overflow
intermediate widths differently, which tests verify on the library's
workloads).
"""

from __future__ import annotations

from ..ir.cdfg import CDFG
from ..ir.opcodes import OpKind
from ..ir.values import BasicBlock, Operation, Value
from .base import Pass

_ASSOCIATIVE = (OpKind.ADD, OpKind.MUL)


class TreeHeightReduction(Pass):
    """Rebalance single-use ADD/MUL chains into minimal-depth trees."""

    name = "tree-height"

    def run(self, cdfg: CDFG) -> bool:
        changed = False
        for block in cdfg.blocks():
            if self._run_block(block):
                changed = True
        return changed

    def _run_block(self, block: BasicBlock) -> bool:
        changed = False
        for op in list(block.ops):
            if op not in block.ops:
                continue  # consumed by an earlier rebalance
            if op.kind not in _ASSOCIATIVE or op.result is None:
                continue
            if self._is_chain_internal(op):
                continue  # only rebalance from the root of a chain
            leaves, internals = self._collect_chain(op)
            if len(internals) < 2 or len(leaves) < 3:
                continue  # depth already minimal
            depth = self._chain_depth(op)
            balanced_depth = (len(leaves) - 1).bit_length()
            if depth <= balanced_depth:
                continue
            self._rebuild(block, op, leaves, internals)
            changed = True
        return changed

    # ------------------------------------------------------------------

    def _is_chain_internal(self, op: Operation) -> bool:
        """True when ``op`` feeds a same-kind op as a single-use value."""
        assert op.result is not None
        if len(op.result.uses) != 1:
            return False
        user, _ = op.result.uses[0]
        return user.kind is op.kind and user.block is op.block and \
            user.result is not None and user.result.type == op.result.type

    def _collect_chain(
        self, root: Operation
    ) -> tuple[list[Value], list[Operation]]:
        """Leaves and internal ops of the maximal same-kind chain rooted
        at ``root`` (internal = same kind, single use, same type)."""
        assert root.result is not None
        leaves: list[Value] = []
        internals: list[Operation] = [root]
        stack = [root]
        while stack:
            op = stack.pop()
            for value in op.operands:
                producer = value.producer
                if (
                    producer.kind is root.kind
                    and producer.block is root.block
                    and producer.result is value
                    and len(value.uses) == 1
                    and value.type == root.result.type
                ):
                    internals.append(producer)
                    stack.append(producer)
                else:
                    leaves.append(value)
        return leaves, internals[1:]  # root not counted as reusable

    def _chain_depth(self, root: Operation) -> int:
        """Height of the current chain (ops along the deepest path)."""
        assert root.result is not None

        def depth(value: Value) -> int:
            producer = value.producer
            if (
                producer.kind is root.kind
                and producer.block is root.block
                and producer.result is value
                and len(value.uses) == 1
                and value.type == root.result.type
            ):
                return 1 + max(depth(v) for v in producer.operands)
            return 0

        return 1 + max(depth(v) for v in root.operands)

    def _rebuild(self, block: BasicBlock, root: Operation,
                 leaves: list[Value], internals: list[Operation]) -> None:
        """Replace the chain with a balanced tree over ``leaves``."""
        assert root.result is not None
        result_type = root.result.type
        kind = root.kind

        # Detach the old internal ops and the root from their operands.
        for op in [root, *internals]:
            for index, value in enumerate(op.operands):
                value.uses.remove((op, index))
            op.operands = []

        # Pair leaves round by round (stable order: by value id).
        level = sorted(leaves, key=lambda v: v.id)
        while len(level) > 2:
            next_level: list[Value] = []
            for i in range(0, len(level) - 1, 2):
                op = block.emit(
                    kind, [level[i], level[i + 1]], result_type
                )
                assert op.result is not None
                next_level.append(op.result)
            if len(level) % 2:
                next_level.append(level[-1])
            level = next_level

        # The root op is reused for the final combine so its result
        # value (and every existing use of it) survives unchanged.
        root.operands = [level[0], level[1]]
        level[0].uses.append((root, 0))
        level[1].uses.append((root, 1))

        for op in internals:
            if op.result is not None and op.result.uses:
                raise AssertionError("chain internal op still has uses")
            block.ops.remove(op)
        block.retopo()
