"""Common subexpression elimination (block-local).

Pure operations computing the same function of the same values are
merged; commutative operations are canonicalized by sorting operand
ids, so ``a+b`` and ``b+a`` merge.  Memory and variable operations are
excluded — ``LOAD`` results may change between stores, and the frontend
already de-duplicates ``VAR_READ``s within a block.

The merge criterion is :func:`repro.analysis.expressions.expression_key`
— one definition shared with the available-expression analysis.
"""

from __future__ import annotations

from ..analysis.expressions import EXPRESSION_KINDS, expression_key
from ..ir.cdfg import CDFG
from ..ir.values import BasicBlock
from .base import Pass

#: Alias kept for existing importers; the analysis package owns the
#: definition of "pure expression" now.
_CSE_KINDS = EXPRESSION_KINDS


class CommonSubexpressionElimination(Pass):
    """Merge identical pure computations within each block."""

    name = "cse"

    def run(self, cdfg: CDFG) -> bool:
        changed = False
        for block in cdfg.blocks():
            if self._run_block(block):
                changed = True
        return changed

    def _run_block(self, block: BasicBlock) -> bool:
        changed = False
        seen: dict[tuple, object] = {}
        for op in list(block.ops):
            key = expression_key(op)
            if key is None:
                continue
            existing = seen.get(key)
            if existing is None:
                seen[key] = op.result
                continue
            block.replace_all_uses(op.result, existing)  # type: ignore[arg-type]
            self._replace_region_conds(block, op.result, existing)
            if not op.result.uses:
                block.remove_op(op)
                changed = True
        return changed

    @staticmethod
    def _replace_region_conds(block: BasicBlock, old, new) -> None:
        from ..ir.cdfg import IfRegion, LoopRegion

        for region in block.cdfg.body.walk():
            if isinstance(region, (IfRegion, LoopRegion)):
                if region.cond is old:
                    region.cond = new
