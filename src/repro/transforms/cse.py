"""Common subexpression elimination (block-local).

Pure operations computing the same function of the same values are
merged; commutative operations are canonicalized by sorting operand
ids, so ``a+b`` and ``b+a`` merge.  Memory and variable operations are
excluded — ``LOAD`` results may change between stores, and the frontend
already de-duplicates ``VAR_READ``s within a block.
"""

from __future__ import annotations

from ..ir.cdfg import CDFG
from ..ir.opcodes import COMMUTATIVE, OpKind
from ..ir.values import BasicBlock
from .base import Pass

_CSE_KINDS = frozenset(
    {
        OpKind.CONST,
        OpKind.ADD, OpKind.SUB, OpKind.MUL, OpKind.DIV, OpKind.MOD,
        OpKind.INC, OpKind.DEC, OpKind.NEG, OpKind.SHL, OpKind.SHR,
        OpKind.AND, OpKind.OR, OpKind.XOR, OpKind.NOT,
        OpKind.EQ, OpKind.NE, OpKind.LT, OpKind.LE, OpKind.GT, OpKind.GE,
        OpKind.MUX,
    }
)


class CommonSubexpressionElimination(Pass):
    """Merge identical pure computations within each block."""

    name = "cse"

    def run(self, cdfg: CDFG) -> bool:
        changed = False
        for block in cdfg.blocks():
            if self._run_block(block):
                changed = True
        return changed

    def _run_block(self, block: BasicBlock) -> bool:
        changed = False
        seen: dict[tuple, object] = {}
        for op in list(block.ops):
            if op.kind not in _CSE_KINDS or op.result is None:
                continue
            operand_ids = [v.id for v in op.operands]
            if op.kind in COMMUTATIVE:
                operand_ids.sort()
            attr_key = tuple(sorted(op.attrs.items()))
            key = (op.kind, tuple(operand_ids), attr_key, op.result.type)
            existing = seen.get(key)
            if existing is None:
                seen[key] = op.result
                continue
            block.replace_all_uses(op.result, existing)  # type: ignore[arg-type]
            self._replace_region_conds(block, op.result, existing)
            if not op.result.uses:
                block.remove_op(op)
                changed = True
        return changed

    @staticmethod
    def _replace_region_conds(block: BasicBlock, old, new) -> None:
        from ..ir.cdfg import IfRegion, LoopRegion

        for region in block.cdfg.body.walk():
            if isinstance(region, (IfRegion, LoopRegion)):
                if region.cond is old:
                    region.cond = new
