"""High-level transformations (the paper's §2 optimization step).

:func:`standard_pipeline` assembles the default optimizer: constant
folding, CSE, strength reduction, counter narrowing, trip-count
analysis and DCE, run to a fixpoint.  Loop unrolling and tree-height
reduction are opt-in (they trade area/register pressure for speed, a
design-space decision rather than an always-win).
"""

from .base import Pass, PassManager, PassReport
from .clone import RegionCloner, clone_cdfg
from .constprop import ConstantFolding
from .counter import CounterNarrowing
from .cse import CommonSubexpressionElimination
from .dce import DeadCodeElimination
from .if_conversion import IfConversion
from .narrow import RangeNarrowing, narrowed_type
from .strength import StrengthReduction
from .tree_height import TreeHeightReduction
from .tripcount import TripCountAnalysis, match_counter, simulate_trip_count
from .unroll import LoopUnrolling

__all__ = [
    "CommonSubexpressionElimination",
    "ConstantFolding",
    "CounterNarrowing",
    "DeadCodeElimination",
    "IfConversion",
    "LoopUnrolling",
    "Pass",
    "PassManager",
    "PassReport",
    "RangeNarrowing",
    "narrowed_type",
    "RegionCloner",
    "StrengthReduction",
    "clone_cdfg",
    "TreeHeightReduction",
    "TripCountAnalysis",
    "match_counter",
    "optimize",
    "simulate_trip_count",
    "standard_pipeline",
]


def standard_pipeline(unroll: bool = False,
                      tree_height: bool = False,
                      if_conversion: bool = False) -> PassManager:
    """The default optimization pipeline.

    Args:
        unroll: also fully unroll constant-trip loops.
        tree_height: also rebalance associative chains.
        if_conversion: also convert small branches to mux selection.
    """
    passes: list[Pass] = [
        ConstantFolding(),
        CommonSubexpressionElimination(),
        StrengthReduction(),
        CounterNarrowing(),
        TripCountAnalysis(),
        DeadCodeElimination(),
    ]
    if tree_height:
        passes.append(TreeHeightReduction())
    if if_conversion:
        passes.append(IfConversion())
    if unroll:
        passes.append(LoopUnrolling())
    return PassManager(passes)


def optimize(cdfg, unroll: bool = False,
             tree_height: bool = False,
             if_conversion: bool = False) -> PassReport:
    """Run the standard pipeline on ``cdfg`` in place."""
    from ..obs import trace_span

    with trace_span("transforms", design=cdfg.name) as span:
        report = standard_pipeline(
            unroll=unroll, tree_height=tree_height,
            if_conversion=if_conversion,
        ).run(cdfg)
        span.set(iterations=report.iterations,
                 applied=len(report.applied))
    return report
