"""Loop-counter narrowing: the paper's two-bit counter trick.

§2: "the loop-ending criterion can be changed to ``I = 0`` using a
two-bit variable for I."  A counter that runs 0,1,…,K and exits on
``I > K`` can, when ``K+1`` is a power of two, be stored in
``log2(K+1)`` bits: incrementing past K wraps to zero, so the exit test
becomes an equality comparison with zero — a cheaper comparator and a
narrower register.

Safety conditions checked before rewriting:

* the loop matches the counter pattern of
  :mod:`repro.transforms.tripcount` with step +1 and initial value 0;
* the exit test is ``counter > K`` (or ``K < counter``) with
  ``K + 1 == 2**w``;
* the counter variable is used *only* for loop control: its reads all
  feed the recognized step op and its writes are the init and the step
  write-back (otherwise observers would see the narrowed values).

After rewriting, the original and narrowed loops are verified to agree
on trip count by simulating both counters.
"""

from __future__ import annotations

from ..ir.cdfg import CDFG, LoopRegion
from ..ir.opcodes import OpKind
from ..ir.types import IntType
from ..ir.values import Operation
from .base import Pass
from .tripcount import CounterPattern, match_counter, simulate_trip_count


def _is_power_of_two(value: int) -> bool:
    return value > 0 and (value & (value - 1)) == 0


class CounterNarrowing(Pass):
    """Narrow pure loop counters and replace ``> K`` with ``= 0``."""

    name = "counter-narrow"

    def run(self, cdfg: CDFG) -> bool:
        changed = False
        for loop in cdfg.loops():
            if self._narrow(cdfg, loop):
                changed = True
        return changed

    def _narrow(self, cdfg: CDFG, loop: LoopRegion) -> bool:
        pattern = match_counter(cdfg, loop)
        if pattern is None:
            return False
        if pattern.init != 0:
            return False
        if pattern.step_op.kind not in (OpKind.INC,):
            if not (
                pattern.step_op.kind is OpKind.ADD
                and pattern.step_op.operands[1].producer.kind is OpKind.CONST
                and pattern.step_op.operands[1].producer.attrs["value"] == 1
            ):
                return False
        compare = pattern.compare_op
        # Accept `counter > K` and `K < counter` spellings.
        if pattern.counter_first and compare.kind is not OpKind.GT:
            return False
        if not pattern.counter_first and compare.kind is not OpKind.LT:
            return False
        limit = pattern.limit
        if not _is_power_of_two(limit + 1):
            return False
        width = (limit + 1).bit_length() - 1
        if width < 1:
            return False
        old_type = cdfg.variables[pattern.var]
        assert isinstance(old_type, IntType)
        if old_type.width <= width:
            return False  # nothing to gain
        if not self._only_loop_control_uses(cdfg, pattern):
            return False

        old_trips = simulate_trip_count(pattern, old_type)

        narrow = IntType(width, signed=False)
        # Retype the counter everywhere it appears.
        cdfg.variables[pattern.var] = narrow
        pattern.read_op.result.type = narrow
        pattern.step_op.result.type = narrow
        for op in self._init_writes(cdfg, loop, pattern.var):
            const_op = op.operands[0].producer
            const_op.attrs["value"] = narrow.wrap(const_op.attrs["value"])
            const_op.result.type = narrow

        # Rewrite the exit comparison to `stepped = 0`.
        block = compare.block
        zero = block.const(0, narrow)
        zero_op = zero.producer
        block.ops.remove(zero_op)
        block.ops.insert(block.ops.index(compare), zero_op)
        counter_value = (
            compare.operands[0] if pattern.counter_first
            else compare.operands[1]
        )
        old_limit_value = (
            compare.operands[1] if pattern.counter_first
            else compare.operands[0]
        )
        new_compare = Operation(
            cdfg.next_op_id(), OpKind.EQ, [counter_value, zero], block
        )
        counter_value.uses.append((new_compare, 0))
        zero.uses.append((new_compare, 1))
        new_compare.result = compare.result
        compare.result.producer = new_compare
        for index, value in enumerate(compare.operands):
            value.uses.remove((compare, index))
        block.ops[block.ops.index(compare)] = new_compare
        if not old_limit_value.uses:
            block.remove_op(old_limit_value.producer)
        block.retopo()

        # Verify the narrowed loop runs the same number of iterations.
        new_pattern = match_counter(cdfg, loop)
        assert new_pattern is not None, "narrowed loop lost its pattern"
        new_trips = simulate_trip_count(new_pattern, narrow)
        assert new_trips == old_trips, (
            f"counter narrowing changed trip count: "
            f"{old_trips} -> {new_trips}"
        )
        if loop.trip_count is None:
            loop.trip_count = new_trips
        return True

    # ------------------------------------------------------------------

    def _only_loop_control_uses(self, cdfg: CDFG,
                                pattern: CounterPattern) -> bool:
        """The counter may only be read by the step op and written by
        the init and the step write-back."""
        var = pattern.var
        if any(port.name == var for port in cdfg.outputs):
            return False
        if any(port.name == var for port in cdfg.inputs):
            return False
        init_writes = {
            op.id
            for op in cdfg.operations()
            if op.kind is OpKind.VAR_WRITE
            and op.attrs["var"] == var
            and op.operands[0].producer.kind is OpKind.CONST
            and op.block is not pattern.step_op.block
        }
        for op in cdfg.operations():
            if op.kind is OpKind.VAR_READ and op.attrs["var"] == var:
                if op is not pattern.read_op:
                    return False
                for user, _ in op.result.uses:
                    if user is not pattern.step_op:
                        return False
            if op.kind is OpKind.VAR_WRITE and op.attrs["var"] == var:
                is_step_write = (
                    op.block is pattern.step_op.block
                    and op.operands[0] is pattern.step_op.result
                )
                if not is_step_write and op.id not in init_writes:
                    return False
        return True

    @staticmethod
    def _init_writes(cdfg: CDFG, loop: LoopRegion,
                     var: str) -> list[Operation]:
        """Constant writes of ``var`` before the loop (the init)."""
        loop_blocks = {block.id for block in loop.blocks()}
        writes: list[Operation] = []
        for block in cdfg.blocks():
            if block.id in loop_blocks:
                break
            for op in block.ops:
                if (
                    op.kind is OpKind.VAR_WRITE
                    and op.attrs["var"] == var
                    and op.operands[0].producer.kind is OpKind.CONST
                ):
                    writes.append(op)
        return writes
