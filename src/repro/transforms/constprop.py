"""Constant folding, propagation and algebraic simplification.

* folding — any pure operation whose operands are all ``CONST`` is
  evaluated at compile time (using the *same* semantics module the
  simulators use, so folding can never change behaviour) and replaced
  by a ``CONST``;
* algebraic identities — ``x+0``, ``x-0``, ``x*1``, ``x/1``,
  ``x<<0``, ``x>>0``, ``x*0``, ``x&0``, ``x|0``, ``x^0`` are rewritten
  to a copy of ``x`` (or the zero constant), removing the operation.
"""

from __future__ import annotations

from ..analysis.constants import EVALUATABLE_KINDS, constant_of
from ..errors import SimulationError
from ..ir.cdfg import CDFG
from ..ir.opcodes import OpKind
from ..ir.values import BasicBlock, Operation, Value
from ..obs import metrics
from ..sim.semantics import evaluate
from .base import Pass

#: Aliases kept for existing importers; the analysis package owns the
#: foldable-kind set and the block-local constant query now.
_PURE_FOLDABLE = EVALUATABLE_KINDS
_const_of = constant_of


class ConstantFolding(Pass):
    """Fold constant subexpressions and apply algebraic identities."""

    name = "constfold"

    def run(self, cdfg: CDFG) -> bool:
        changed = False
        for block in cdfg.blocks():
            for op in list(block.ops):
                if op.result is None or op.kind not in _PURE_FOLDABLE:
                    continue
                if self._try_fold(block, op):
                    changed = True
                elif self._try_identity(block, op):
                    changed = True
        return changed

    def _try_fold(self, block: BasicBlock, op: Operation) -> bool:
        constants = [_const_of(v) for v in op.operands]
        if any(c is None for c in constants):
            return False
        assert op.result is not None
        try:
            folded = evaluate(
                op.kind,
                constants,  # type: ignore[arg-type]
                [v.type for v in op.operands],
                op.result.type,
                op.attrs,
            )
        except (SimulationError, OverflowError, ZeroDivisionError):
            # e.g. division by zero stays a runtime event.  Anything
            # else (TypeError from malformed attrs, …) is a compiler
            # bug and must propagate instead of silently not folding.
            metrics().counter("transforms.constprop.fold_aborted").inc()
            return False
        replacement = block.const(folded, op.result.type, op.result.name)
        # Keep topological order: move the new CONST before the op.
        const_op = replacement.producer
        block.ops.remove(const_op)
        block.ops.insert(block.ops.index(op), const_op)
        block.replace_all_uses(op.result, replacement)
        self._replace_region_conds(block, op.result, replacement)
        if not op.result.uses:
            block.remove_op(op)
        return True

    def _try_identity(self, block: BasicBlock, op: Operation) -> bool:
        """Rewrite x∘neutral → x and x*0-style annihilators."""
        assert op.result is not None
        if len(op.operands) != 2:
            return False
        left, right = op.operands
        left_const, right_const = _const_of(left), _const_of(right)

        def forward(source: Value) -> bool:
            if source.type != op.result.type:
                return False
            block.replace_all_uses(op.result, source)
            self._replace_region_conds(block, op.result, source)
            if not op.result.uses:
                block.remove_op(op)
            return True

        if op.kind is OpKind.ADD:
            if right_const == 0:
                return forward(left)
            if left_const == 0:
                return forward(right)
        elif op.kind is OpKind.SUB:
            if right_const == 0:
                return forward(left)
        elif op.kind is OpKind.MUL:
            if right_const == 1:
                return forward(left)
            if left_const == 1:
                return forward(right)
            if right_const == 0 or left_const == 0:
                zero = block.const(0, op.result.type)
                zero_op = zero.producer
                block.ops.remove(zero_op)
                block.ops.insert(block.ops.index(op), zero_op)
                return forward(zero)
        elif op.kind is OpKind.DIV:
            if right_const == 1:
                return forward(left)
        elif op.kind in (OpKind.SHL, OpKind.SHR):
            if right_const == 0:
                return forward(left)
        elif op.kind in (OpKind.OR, OpKind.XOR):
            if right_const == 0:
                return forward(left)
            if left_const == 0:
                return forward(right)
        elif op.kind is OpKind.AND:
            if right_const == 0 or left_const == 0:
                zero = block.const(0, op.result.type)
                zero_op = zero.producer
                block.ops.remove(zero_op)
                block.ops.insert(block.ops.index(op), zero_op)
                return forward(zero)
        return False

    @staticmethod
    def _replace_region_conds(block: BasicBlock, old: Value,
                              new: Value) -> None:
        """Regions reference condition values directly; keep them live."""
        from ..ir.cdfg import IfRegion, LoopRegion

        for region in block.cdfg.body.walk():
            if isinstance(region, (IfRegion, LoopRegion)):
                if region.cond is old:
                    region.cond = new
