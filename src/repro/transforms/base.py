"""Pass infrastructure for high-level transformations.

The tutorial's §2 lists the standard menu — dead code elimination,
constant propagation, common subexpression elimination, inline
expansion, loop unrolling, plus hardware-specific local transformations
(strength reduction, counter narrowing).  Each is a :class:`Pass`; the
:class:`PassManager` runs a pipeline to a fixpoint and records what
fired, which is also the library's "self-documenting design process"
hook (§1.2).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..ir.cdfg import CDFG
from ..obs import metrics, trace_span


class Pass:
    """One rewrite over a CDFG.

    Subclasses implement :meth:`run` and return True when they changed
    the graph.  Passes must leave the CDFG valid (``cdfg.validate()``)
    after every run; the manager checks this in debug mode.
    """

    #: Stable name used in reports and pipeline specs.
    name: str = "pass"

    def run(self, cdfg: CDFG) -> bool:
        raise NotImplementedError


@dataclass
class PassReport:
    """What happened during one pipeline execution."""

    applied: list[str] = field(default_factory=list)
    iterations: int = 0

    def count(self, name: str) -> int:
        return self.applied.count(name)

    def __str__(self) -> str:
        if not self.applied:
            return "no transformations applied"
        return (
            f"{self.iterations} iteration(s): " + ", ".join(self.applied)
        )


class PassManager:
    """Runs a list of passes repeatedly until none makes progress.

    Args:
        passes: pipeline, in order.
        max_iterations: fixpoint bound (guards against oscillation).
        validate: re-validate the CDFG after every pass that fired.
    """

    def __init__(self, passes: list[Pass], max_iterations: int = 20,
                 validate: bool = True) -> None:
        self._passes = list(passes)
        self._max_iterations = max_iterations
        self._validate = validate

    def run(self, cdfg: CDFG) -> PassReport:
        report = PassReport()
        for _ in range(self._max_iterations):
            changed = False
            for pass_ in self._passes:
                with trace_span(f"pass.{pass_.name}") as span:
                    fired = pass_.run(cdfg)
                    span.set(fired=fired)
                if fired:
                    changed = True
                    report.applied.append(pass_.name)
                    metrics().counter(
                        "transforms.applied", transform=pass_.name
                    ).inc()
                    if self._validate:
                        cdfg.validate()
            report.iterations += 1
            if not changed:
                break
        return report
