"""If-conversion: turn small branches into multiplexed dataflow.

The paper's §4 lists "trading off complexity between the control and
the data paths" as an open system-level issue.  If-conversion is the
canonical instance: a two-way branch whose arms are short, pure,
straight-line blocks can be folded into the condition's block, with
each conditionally-assigned variable selected by a MUX.  The controller
loses two states and a branch; the datapath gains multiplexers and
executes both arms' operations unconditionally.

Applicability (checked conservatively):

* both arms are single basic blocks (or absent);
* arms contain only pure operations and variable writes — no memory
  traffic (a store must not execute on the untaken path);
* each arm has at most ``max_ops`` resource-consuming operations.
"""

from __future__ import annotations

from ..ir.cdfg import (
    CDFG,
    BlockRegion,
    IfRegion,
    LoopRegion,
    Region,
    SeqRegion,
)
from ..ir.opcodes import OpKind
from ..ir.values import BasicBlock, Value
from .base import Pass

_FORBIDDEN = (OpKind.LOAD, OpKind.STORE, OpKind.NOP)


class IfConversion(Pass):
    """Fold small, pure branches into MUX dataflow."""

    name = "if-convert"

    def __init__(self, max_ops: int = 8) -> None:
        self._max_ops = max_ops

    def run(self, cdfg: CDFG) -> bool:
        new_body, changed = self._rewrite(cdfg, cdfg.body)
        cdfg.body = new_body
        if changed:
            cdfg.validate()
        return changed

    # ------------------------------------------------------------------

    def _rewrite(self, cdfg: CDFG, region: Region) -> tuple[Region, bool]:
        """Return the (possibly replaced) region and whether anything
        changed.  Conversion is bottom-up so nested branches fold
        first, which can make the outer branch eligible too."""
        changed = False
        if isinstance(region, SeqRegion):
            for index, item in enumerate(list(region.items)):
                region.items[index], item_changed = self._rewrite(
                    cdfg, item
                )
                changed |= item_changed
            return region, changed
        if isinstance(region, LoopRegion):
            region.body, changed = self._rewrite(cdfg, region.body)
            return region, changed
        if isinstance(region, IfRegion):
            region.then_region, then_changed = self._rewrite(
                cdfg, region.then_region
            )
            changed |= then_changed
            if region.else_region is not None:
                region.else_region, else_changed = self._rewrite(
                    cdfg, region.else_region
                )
                changed |= else_changed
            if self._eligible(region):
                return BlockRegion(self._convert(cdfg, region)), True
            return region, changed
        return region, changed

    def _eligible(self, region: IfRegion) -> bool:
        arms = [region.then_region]
        if region.else_region is not None:
            arms.append(region.else_region)
        for arm in arms:
            if not isinstance(arm, BlockRegion):
                return False
            block = arm.block
            if any(op.kind in _FORBIDDEN for op in block.ops):
                return False
            if len(block.compute_ops()) > self._max_ops:
                return False
        return True

    def _convert(self, cdfg: CDFG, region: IfRegion) -> BasicBlock:
        target = region.cond_block
        cond = region.cond

        # The condition block's pending writes become plain defs the
        # arms can read; the writes themselves stay (they remain the
        # values of those variables when an arm doesn't assign them).
        cond_defs = {
            op.attrs["var"]: op.operands[0]
            for op in target.var_writes().values()
        }
        existing_reads = {
            op.attrs["var"]: op.result
            for op in target.ops
            if op.kind is OpKind.VAR_READ
        }

        def current_value(var: str) -> Value:
            if var in cond_defs:
                return cond_defs[var]
            if var in existing_reads:
                return existing_reads[var]
            value = target.read(var, cdfg.variables[var])
            existing_reads[var] = value
            return value

        def absorb(block: BasicBlock) -> dict[str, Value]:
            """Move a branch arm's ops into the target block; return
            the values it assigns per variable."""
            writes: dict[str, Value] = {}
            for op in list(block.ops):
                if op.kind is OpKind.VAR_READ:
                    var = op.attrs["var"]
                    replacement = current_value(var)
                    block.replace_all_uses(op.result, replacement)
                    if region.cond is op.result:  # pragma: no cover
                        region.cond = replacement
                    block.remove_op(op)
                elif op.kind is OpKind.VAR_WRITE:
                    writes[op.attrs["var"]] = op.operands[0]
                    block.remove_op(op)
                else:
                    block.ops.remove(op)
                    op.block = target
                    target.ops.append(op)
            return writes

        then_writes = absorb(region.then_region.block)
        else_writes = (
            absorb(region.else_region.block)
            if region.else_region is not None
            else {}
        )

        for var in sorted(set(then_writes) | set(else_writes)):
            taken = then_writes.get(var)
            not_taken = else_writes.get(var)
            if taken is None:
                taken = current_value(var)
            if not_taken is None:
                not_taken = current_value(var)
            mux = target.emit(
                OpKind.MUX, [cond, taken, not_taken],
                cdfg.variables[var],
            )
            assert mux.result is not None
            mux.result.name = var
            # Replace (or add) the variable's write in the merged block.
            old_write = target.var_writes().get(var)
            if old_write is not None:
                target.remove_op(old_write)
            target.write(var, mux.result)

        target.retopo()
        return target
