"""Dead code elimination.

Two flavours, both from the paper's §2 list:

* *dead operation elimination* — a pure operation whose result has no
  uses is deleted (iteratively, so whole dead expression trees vanish);
* *dead store elimination* — a ``VAR_WRITE`` to a variable that is
  never read anywhere in the procedure and is not an output port is
  deleted (conservative whole-procedure liveness).
"""

from __future__ import annotations

from ..ir.cdfg import CDFG
from ..ir.opcodes import OpKind, op_info
from .base import Pass

_SIDE_EFFECT_KINDS = frozenset(
    {OpKind.VAR_WRITE, OpKind.STORE, OpKind.NOP}
)


class DeadCodeElimination(Pass):
    """Remove unused pure operations and dead variable writes."""

    name = "dce"

    def run(self, cdfg: CDFG) -> bool:
        changed = False
        changed |= self._remove_dead_writes(cdfg)
        changed |= self._remove_dead_ops(cdfg)
        return changed

    def _remove_dead_ops(self, cdfg: CDFG) -> bool:
        """Delete pure ops with unused results, to a fixpoint."""
        live_conds = self._region_condition_values(cdfg)
        changed = False
        while True:
            removed = False
            for block in cdfg.blocks():
                for op in list(block.ops):
                    if op.kind in _SIDE_EFFECT_KINDS:
                        continue
                    if op.result is None:
                        continue
                    if op.result.uses or op.result.id in live_conds:
                        continue
                    block.remove_op(op)
                    removed = True
                    changed = True
            if not removed:
                return changed

    def _remove_dead_writes(self, cdfg: CDFG) -> bool:
        output_names = {port.name for port in cdfg.outputs}
        read_names = {
            op.attrs["var"]
            for op in cdfg.operations()
            if op.kind is OpKind.VAR_READ
        }
        live = output_names | read_names
        changed = False
        for block in cdfg.blocks():
            for op in list(block.ops):
                if op.kind is OpKind.VAR_WRITE and op.attrs["var"] not in live:
                    block.remove_op(op)
                    changed = True
        return changed

    @staticmethod
    def _region_condition_values(cdfg: CDFG) -> set[int]:
        """Value ids used as region conditions (live even if no op uses
        them)."""
        from ..ir.cdfg import IfRegion, LoopRegion

        conds: set[int] = set()
        for region in cdfg.body.walk():
            if isinstance(region, (IfRegion, LoopRegion)):
                conds.add(region.cond.id)
        return conds
