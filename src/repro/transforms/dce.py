"""Dead code elimination.

Two flavours, both from the paper's §2 list:

* *dead operation elimination* — a pure operation whose result has no
  uses is deleted (iteratively, so whole dead expression trees vanish);
* *dead store elimination* — a ``VAR_WRITE`` to a variable that is
  never read anywhere in the procedure and is not an output port is
  deleted (conservative whole-procedure liveness).

Both queries come from :mod:`repro.analysis.usage` — the transform
only performs the mutations; the analysis package owns the "what is
dead" computation (and the lint rules reuse it unchanged).
"""

from __future__ import annotations

from ..analysis.usage import (
    SIDE_EFFECT_KINDS,
    transitively_dead_ops,
    variable_usage,
)
from ..ir.cdfg import CDFG
from ..ir.opcodes import OpKind
from .base import Pass


class DeadCodeElimination(Pass):
    """Remove unused pure operations and dead variable writes."""

    name = "dce"

    def run(self, cdfg: CDFG) -> bool:
        changed = False
        changed |= self._remove_dead_writes(cdfg)
        changed |= self._remove_dead_ops(cdfg)
        return changed

    def _remove_dead_ops(self, cdfg: CDFG) -> bool:
        """Delete the transitively-dead op set the analysis computes.

        Removal happens in sweeps because :meth:`BasicBlock.remove_op`
        insists on a use-free result: each sweep peels the currently
        leaf-dead ops, exposing their operands for the next one.
        """
        remaining = set(transitively_dead_ops(cdfg))
        if not remaining:
            return False
        while remaining:
            removed = False
            for block in cdfg.blocks():
                for op in list(block.ops):
                    if op.id not in remaining:
                        continue
                    if op.result is not None and op.result.uses:
                        continue
                    block.remove_op(op)
                    remaining.discard(op.id)
                    removed = True
            if not removed:  # pragma: no cover - analysis/IR disagree
                break
        return True

    def _remove_dead_writes(self, cdfg: CDFG) -> bool:
        live = variable_usage(cdfg).live
        changed = False
        for block in cdfg.blocks():
            for op in list(block.ops):
                if op.kind is OpKind.VAR_WRITE and op.attrs["var"] not in live:
                    block.remove_op(op)
                    changed = True
        return changed


#: Re-exported for backward compatibility with existing importers.
_SIDE_EFFECT_KINDS = SIDE_EFFECT_KINDS
