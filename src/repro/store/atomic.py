"""The atomic temp-then-rename publish used by every on-disk artifact.

Both the persistent design store (:class:`~repro.store.DesignStore`)
and the fuzz corpus (:mod:`repro.verify.corpus`) persist
content-addressed files that concurrent writers may race on.  The
protocol is identical in both places, so it lives here once:

1. write the full payload to a *uniquely named* temp file in the
   final directory (pid + uuid keeps racing writers apart);
2. optionally fire the ``fault_label`` fault-injection hook — a
   deterministic crash point between temp-write and publish;
3. ``os.replace`` the temp file onto the final path.

The rename is the only point of contention and it is atomic on POSIX:
readers either see the old file, the complete new file, or nothing —
never a torn write.  A writer that dies mid-protocol leaves only a
temp file for a later gc to reclaim.
"""

from __future__ import annotations

import os
import uuid
from pathlib import Path

from ..exec.faults import maybe_inject

#: Prefix shared by every in-flight temp file (gc scans for it).
TMP_PREFIX = ".tmp-"


def atomic_write_bytes(
    path: str | os.PathLike,
    blob: bytes,
    fault_label: str | None = None,
    fault_spec: str | None = None,
) -> bool:
    """Atomically publish ``blob`` at ``path``; True on success.

    Creates parent directories on demand.  Filesystem errors are
    swallowed into the False return — callers treat persistence as an
    optimization that must never fail the surrounding computation —
    but an :class:`~repro.exec.faults.InjectedFault` from the
    ``fault_label`` hook propagates (that is the point of injection).
    """
    final = Path(path)
    tmp = final.parent / (
        f"{TMP_PREFIX}{final.stem[:8]}-{os.getpid()}-{uuid.uuid4().hex}"
    )
    try:
        final.parent.mkdir(parents=True, exist_ok=True)
        tmp.write_bytes(blob)
    except OSError:
        return False
    if fault_label is not None:
        maybe_inject(fault_label, fault_spec)
    try:
        os.replace(tmp, final)
    except OSError:
        try:
            tmp.unlink()
        except OSError:
            pass
        return False
    return True
