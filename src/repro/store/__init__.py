"""Persistent content-addressed design store (``repro.store``).

The second tier behind the process-global in-memory
:class:`~repro.core.engine.SynthesisCache`: designs are pickled to
disk under a content address (source digest + entry procedure +
value-level options token + schema version, see
:mod:`~repro.store.keys`) so sweeps survive process restarts — the
CLI, parallel :mod:`repro.exec` workers and a future synthesis
service all warm-start from the same directory.

The store is **off by default**.  It activates when either

* :func:`configure_store` is called (the CLI's ``--store`` /
  ``--no-store`` flags and tests use this), or
* env ``REPRO_STORE_DIR`` names a directory (``REPRO_STORE=0``
  force-disables even then).

``active_store()`` returns the store in force, or None; callers in
:mod:`repro.core.engine` treat None as "memory tier only".  See
``docs/performance.md`` for the two-tier protocol and invalidation
rules, and ``repro cache stats|gc|clear`` for maintenance.
"""

from __future__ import annotations

import os

from .atomic import TMP_PREFIX, atomic_write_bytes
from .keys import STORE_SCHEMA_VERSION, options_token, store_key
from .store import DEFAULT_TMP_GRACE_S, DesignStore

STORE_DIR_ENV = "REPRO_STORE_DIR"
STORE_ENV = "REPRO_STORE"

_EXPLICIT: DesignStore | None = None
_EXPLICIT_SET = False
_ENV_MEMO: tuple[str, DesignStore] | None = None


def default_store_dir() -> str:
    """Where ``--store`` puts designs absent an explicit directory."""
    return os.environ.get(STORE_DIR_ENV) or os.path.join(
        os.path.expanduser("~"), ".cache", "repro", "designs"
    )


def configure_store(root: str | os.PathLike | None) -> DesignStore | None:
    """Explicitly set the process-global store (None disables it).

    An explicit configuration always wins over the environment — in
    particular ``configure_store(None)`` turns the store off even when
    ``REPRO_STORE_DIR`` is set (the CLI's ``--no-store``).
    """
    global _EXPLICIT, _EXPLICIT_SET
    _EXPLICIT = DesignStore(root) if root is not None else None
    _EXPLICIT_SET = True
    return _EXPLICIT


def reset_store() -> None:
    """Forget any explicit configuration; fall back to the env."""
    global _EXPLICIT, _EXPLICIT_SET, _ENV_MEMO
    _EXPLICIT = None
    _EXPLICIT_SET = False
    _ENV_MEMO = None


def active_store() -> DesignStore | None:
    """The store in force for this process, or None."""
    global _ENV_MEMO
    if _EXPLICIT_SET:
        return _EXPLICIT
    if os.environ.get(STORE_ENV, "").strip().lower() in (
        "0", "off", "false", "no",
    ):
        return None
    root = os.environ.get(STORE_DIR_ENV)
    if not root:
        return None
    if _ENV_MEMO is None or _ENV_MEMO[0] != root:
        _ENV_MEMO = (root, DesignStore(root))
    return _ENV_MEMO[1]


__all__ = [
    "DEFAULT_TMP_GRACE_S",
    "STORE_DIR_ENV",
    "STORE_ENV",
    "STORE_SCHEMA_VERSION",
    "TMP_PREFIX",
    "DesignStore",
    "active_store",
    "atomic_write_bytes",
    "configure_store",
    "default_store_dir",
    "options_token",
    "reset_store",
    "store_key",
]
