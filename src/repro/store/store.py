"""The disk-backed design store: atomic, sharded, corruption-tolerant.

Layout (two-level sharding keeps directories small at scale)::

    <root>/v<SCHEMA>/<key[:2]>/<key>.pkl

Writes are atomic: the pickle goes to a uniquely named temp file in
the final directory, then ``os.replace`` publishes it.  Concurrent
writers of the same key (parallel :mod:`repro.exec` workers racing on
a popular design point) each publish a complete file and the last
rename wins — both wrote identical bytes, the content address *is*
the content.  A writer that dies between temp-write and rename leaves
only a temp file, which ``gc()`` reclaims; readers never see a
partial entry.  The ``store.persist`` fault-injection hook
(:func:`repro.exec.faults.maybe_inject`) sits exactly in that window
so the crash-mid-persist path is deterministically testable.

Reads treat any undecodable entry as a miss, count it under
``store.corrupt`` and unlink it best-effort — a truncated file from a
torn filesystem can cost a resynthesis, never an error.

Observability: ``store.hits`` / ``store.misses`` / ``store.persists``
/ ``store.corrupt`` / ``store.errors`` counters, ``store.load_ms`` /
``store.persist_ms`` histograms, and ``store.load`` /
``store.persist`` spans.
"""

from __future__ import annotations

import os
import pickle
import re
import shutil
import time
from pathlib import Path
from typing import TYPE_CHECKING

from ..obs import metrics, trace_span
from .atomic import TMP_PREFIX as _TMP_PREFIX
from .atomic import atomic_write_bytes
from .keys import STORE_SCHEMA_VERSION

if TYPE_CHECKING:  # pragma: no cover
    from ..core.design import SynthesizedDesign

_VERSION_DIR_RE = re.compile(r"^v\d+$")

#: Temp files younger than this are presumed to belong to a live
#: writer; ``gc()`` only reclaims older ones (override per call).
DEFAULT_TMP_GRACE_S = 60.0


class DesignStore:
    """A content-addressed store of pickled designs under ``root``.

    Instances are cheap views over a directory — workers open their
    own against the same path.  All methods swallow filesystem errors
    into ``store.errors``: the store is an optimization tier and must
    never be able to fail a synthesis.
    """

    def __init__(self, root: str | os.PathLike) -> None:
        self.root = Path(root).expanduser()

    @property
    def version_dir(self) -> Path:
        return self.root / f"v{STORE_SCHEMA_VERSION}"

    def _path(self, key: str) -> Path:
        return self.version_dir / key[:2] / f"{key}.pkl"

    # Lookup ------------------------------------------------------------

    def get(self, key: str) -> "SynthesizedDesign | None":
        registry = metrics()
        path = self._path(key)
        with trace_span("store.load", key=key[:12]) as span:
            started = time.perf_counter()
            try:
                blob = path.read_bytes()
            except OSError:
                registry.counter("store.misses").inc()
                span.set(hit=False)
                return None
            try:
                design = pickle.loads(blob)
            except Exception:
                # Torn write survivor or a foreign file: treat as a
                # miss and reclaim the slot.
                registry.counter("store.corrupt").inc()
                registry.counter("store.misses").inc()
                try:
                    path.unlink()
                except OSError:
                    pass
                span.set(hit=False, corrupt=True)
                return None
            elapsed_ms = (time.perf_counter() - started) * 1e3
            registry.counter("store.hits").inc()
            registry.histogram("store.load_ms").observe(elapsed_ms)
            span.set(hit=True, bytes=len(blob))
        return design

    # Persistence -------------------------------------------------------

    def put(self, key: str, design: "SynthesizedDesign",
            fault_spec: str | None = None) -> bool:
        """Atomically persist ``design``; True when it was published."""
        registry = metrics()
        with trace_span("store.persist", key=key[:12]) as span:
            started = time.perf_counter()
            try:
                blob = pickle.dumps(design,
                                    protocol=pickle.HIGHEST_PROTOCOL)
            except Exception:
                # Designs built from CDFG factories can close over
                # unpicklable state; they simply stay memory-only.
                registry.counter("store.errors").inc()
                span.set(ok=False)
                return False
            # Shared temp-then-rename publish; the "store.persist"
            # fault hook fires between temp-write and rename
            # (docs/resilience.md).
            if not atomic_write_bytes(self._path(key), blob,
                                      fault_label="store.persist",
                                      fault_spec=fault_spec):
                registry.counter("store.errors").inc()
                span.set(ok=False)
                return False
            elapsed_ms = (time.perf_counter() - started) * 1e3
            registry.counter("store.persists").inc()
            registry.histogram("store.persist_ms").observe(elapsed_ms)
            span.set(ok=True, bytes=len(blob))
        return True

    # Maintenance -------------------------------------------------------

    def _entries(self) -> list[Path]:
        if not self.version_dir.is_dir():
            return []
        return sorted(self.version_dir.glob("*/*.pkl"))

    def _temp_files(self) -> list[Path]:
        if not self.root.is_dir():
            return []
        return sorted(self.root.glob(f"v*/*/{_TMP_PREFIX}*"))

    def stats(self) -> dict:
        entries = self._entries()
        return {
            "root": str(self.root),
            "schema_version": STORE_SCHEMA_VERSION,
            "entries": len(entries),
            "bytes": sum(p.stat().st_size for p in entries
                         if p.is_file()),
            "temp_files": len(self._temp_files()),
        }

    def gc(self, max_entries: int | None = None,
           max_age_s: float | None = None,
           tmp_grace_s: float = DEFAULT_TMP_GRACE_S) -> dict:
        """Reclaim dead weight; returns what was removed.

        Removes: version directories of *other* schema versions
        (unreachable by construction), orphaned temp files older than
        ``tmp_grace_s``, entries older than ``max_age_s``, and — after
        that — the oldest entries beyond ``max_entries``.
        """
        now = time.time()
        removed = {"entries": 0, "temp_files": 0, "stale_versions": 0}
        if self.root.is_dir():
            for child in self.root.iterdir():
                if (child.is_dir() and _VERSION_DIR_RE.match(child.name)
                        and child != self.version_dir):
                    shutil.rmtree(child, ignore_errors=True)
                    removed["stale_versions"] += 1
        for tmp in self._temp_files():
            try:
                if now - tmp.stat().st_mtime >= tmp_grace_s:
                    tmp.unlink()
                    removed["temp_files"] += 1
            except OSError:
                continue
        entries = []
        for path in self._entries():
            try:
                entries.append((path.stat().st_mtime, path))
            except OSError:
                continue
        entries.sort()
        survivors = []
        for mtime, path in entries:
            if max_age_s is not None and now - mtime > max_age_s:
                try:
                    path.unlink()
                    removed["entries"] += 1
                except OSError:
                    pass
            else:
                survivors.append(path)
        if max_entries is not None and len(survivors) > max_entries:
            for path in survivors[:len(survivors) - max_entries]:
                try:
                    path.unlink()
                    removed["entries"] += 1
                except OSError:
                    pass
        return removed

    def clear(self) -> None:
        """Remove every entry, temp file and version directory."""
        if not self.root.is_dir():
            return
        for child in self.root.iterdir():
            if child.is_dir() and _VERSION_DIR_RE.match(child.name):
                shutil.rmtree(child, ignore_errors=True)
