"""Stable content-addressed keys for the persistent design store.

The in-memory :class:`~repro.core.engine.SynthesisCache` keys model and
library objects by *identity* — correct within one process, meaningless
on disk.  The store instead derives a key from value-level tokens:
every behavior-relevant knob of :class:`SynthesisOptions` is rendered
to plain data (``cache_token()`` on the model and library), combined
with the source digest, the entry procedure and
:data:`STORE_SCHEMA_VERSION`, and hashed.  Options whose model or
library cannot produce a stable token (a custom
:class:`~repro.scheduling.ResourceModel` subclass that does not
override ``cache_token``) are simply *unstorable*: :func:`store_key`
returns None and the store tier is bypassed — never a wrong hit.

Invalidation is entirely key-side: changing any knob, the source text,
or the schema version changes the key, so stale entries are never
*read*; they are only ever reclaimed by ``repro cache gc``.
"""

from __future__ import annotations

import hashlib
from typing import TYPE_CHECKING, Hashable

if TYPE_CHECKING:  # pragma: no cover
    from ..core.engine import SynthesisOptions

#: Bump whenever the pickled :class:`SynthesizedDesign` layout, the
#: pipeline's deterministic behavior, or this key derivation changes
#: incompatibly.  Old entries become unreachable (each version writes
#: under its own ``v<N>/`` directory) and are reclaimed by gc.
STORE_SCHEMA_VERSION = 3  # v3: if_conversion joined the key


def options_token(options: "SynthesisOptions") -> tuple[Hashable, ...] | None:
    """``options`` as plain data, or None when not stably keyable.

    Mirrors :meth:`SynthesisOptions.cache_key` field for field, with
    the identity-keyed model/library replaced by their value-level
    ``cache_token()``.  ``trace`` and ``fault_spec`` stay excluded for
    the same reason they are excluded from the in-memory key: they
    never change what is synthesized.
    """
    model = options.model
    model_token: tuple | None = (
        ("default-universal",) if model is None else model.cache_token()
    )
    if model_token is None:
        return None
    library = options.library
    library_token: tuple | None = (
        ("default-library",) if library is None else library.cache_token()
    )
    if library_token is None:
        return None
    limits = (
        None
        if options.constraints is None
        else tuple(sorted(options.constraints.limits.items()))
    )
    return (
        options.scheduler,
        options.allocator,
        model_token,
        limits,
        options.optimize_ir,
        options.unroll,
        options.tree_height,
        options.if_conversion,
        options.narrow,
        options.assume_ranges,
        library_token,
        options.verify,
    )


def store_key(source_digest: str, procedure: str | None,
              options: "SynthesisOptions") -> str | None:
    """The design's content address: a sha256 hex digest, or None when
    these options cannot be keyed stably (store bypassed)."""
    token = options_token(options)
    if token is None:
        return None
    payload = repr(
        (STORE_SCHEMA_VERSION, source_digest, procedure, token)
    )
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()
