"""Command-line interface: ``python -m repro <command> …``.

Commands:

* ``synth FILE``    — synthesize a BSL file; print the design report
  and the decision log; optionally verify and emit Verilog.
* ``simulate FILE`` — synthesize, then run one activation with inputs
  given as ``name=value`` pairs; print outputs and cycle count.
* ``explore FILE``  — sweep a functional-unit budget and print the
  area/latency trade-off table.
* ``verify FILE``   — synthesize, run every stage contract, and
  optionally the full scheduler × allocator differential matrix.
* ``fuzz``          — differentially fuzz random DFGs; shrink failures
  and write repro scripts to ``artifacts/``.  Without a corpus this is
  the fixed-seed sweep (replay one seed from a CI log with ``--seed``);
  with ``--corpus DIR`` it runs the mutational, coverage-guided loop
  (``fuzz run``), re-checks every stored entry (``fuzz replay``) or
  drops entries that no longer add coverage (``fuzz minimize``).
  ``--tier smoke|standard|deep`` picks the budget profile.
* ``lint FILE``     — run the whole-pipeline linter (source, schedule,
  allocation, netlist, controller rules); exit 2 on errors, 1 on
  warnings, 0 when clean.
* ``profile FILE``  — synthesize with tracing on and print the
  per-stage time/percentage table (``--format json`` for the
  machine-readable breakdown with latency percentiles).
* ``trace FILE``    — synthesize with tracing on and write a Chrome
  ``trace_event`` JSON (open in ``chrome://tracing`` or Perfetto).
* ``cache VERB``    — inspect or maintain the persistent design store
  (``stats``, ``gc``, ``clear``).
* ``history``       — list the QoR run ledger (filter by workload or
  kind, ``--format json`` for tooling).
* ``report``        — compare each group's latest ledger run against
  its median-of-N baseline; exit 0 clean, 1 warnings, 2 regression.

Any synthesis-running command accepts ``--ledger [DIR]`` to append its
run to the persistent QoR ledger (default directory when DIR is
omitted; ``REPRO_LEDGER_DIR`` works without the flag).

Examples::

    python -m repro synth design.bsl --fu 2 --verify -o design.v
    python -m repro synth design.bsl --narrow --assume X=0.0625:1.0
    python -m repro synth design.bsl --store --fu 2
    python -m repro synth design.bsl --ledger .repro-ledger
    python -m repro simulate design.bsl X=0.5 --fu 2
    python -m repro explore design.bsl --limits 1,2,3,4 --report
    python -m repro verify design.bsl --differential
    python -m repro fuzz --seeds 50 --jobs 4 --ops 14
    python -m repro fuzz --seed 17
    python -m repro fuzz run --corpus .repro-corpus --tier smoke
    python -m repro fuzz replay --corpus tests/corpus
    python -m repro fuzz minimize --corpus .repro-corpus
    python -m repro lint examples/lint_demo.hls --format json
    python -m repro lint examples/range_demo.hls --format sarif
    python -m repro lint --workloads
    python -m repro profile examples/sqrt.hls --fu 2
    python -m repro profile examples/sqrt.hls --fu 2 --format json
    python -m repro trace examples/sqrt.hls --out trace.json
    python -m repro cache stats --json
    python -m repro cache gc --max-entries 256 --max-age-days 30
    python -m repro history --ledger .repro-ledger --limit 10
    python -m repro report --ledger .repro-ledger --format markdown
"""

from __future__ import annotations

import argparse
import sys
import time

from . import obs
from .core import SynthesisOptions, synthesize
from .errors import HLSError
from .explore import explore_fu_range
from .rtl import emit_verilog
from .scheduling import ResourceConstraints
from .sim import RTLSimulator, check_equivalence, default_vectors


def _add_common(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("file", help="BSL source file")
    parser.add_argument(
        "--procedure", default=None,
        help="entry procedure (default: last defined)",
    )
    parser.add_argument(
        "--scheduler", default="list",
        help="scheduler name (asap, list, force-directed, "
        "freedom-based, branch-and-bound, ysc)",
    )
    parser.add_argument(
        "--allocator", default="left-edge",
        help="allocator name (clique, left-edge, greedy, coloring)",
    )
    parser.add_argument(
        "--fu", type=int, default=None,
        help="universal functional-unit limit (default: unlimited)",
    )
    parser.add_argument(
        "--no-optimize", action="store_true",
        help="skip the high-level transformation pipeline",
    )
    parser.add_argument(
        "--unroll", action="store_true",
        help="fully unroll constant-trip loops",
    )
    parser.add_argument(
        "--tree-height", action="store_true",
        help="rebalance associative operator chains (tree-height "
        "reduction)",
    )
    parser.add_argument(
        "--if-convert", action="store_true",
        help="convert small branches into predicated straight-line "
        "code (if-conversion)",
    )
    parser.add_argument(
        "--narrow", action="store_true",
        help="narrow value/register bitwidths to their proven ranges "
        "(sound interval analysis; see --assume for input contracts)",
    )
    parser.add_argument(
        "--assume", action="append", default=None, metavar="NAME=LO:HI",
        help="trusted input range contract for --narrow (repeatable, "
        "e.g. --assume X=0.0625:1.0); narrowing is only valid for "
        "executions honoring the contract",
    )
    parser.add_argument(
        "--store", action=argparse.BooleanOptionalAction, default=None,
        help="use the persistent design store (--store forces it on at "
        "the default directory, --no-store forces it off; default: "
        "honor REPRO_STORE_DIR / REPRO_STORE)",
    )
    _add_ledger_flag(parser)
    parser.add_argument(
        "--memory", action="store_true",
        help="record per-stage heap-peak gauges (tracemalloc) for "
        "this run",
    )


def _add_ledger_flag(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--ledger", nargs="?", const="", default=None, metavar="DIR",
        help="append this run to the persistent QoR ledger (DIR, or "
        "the default ledger directory when omitted; default: honor "
        "REPRO_LEDGER_DIR / REPRO_LEDGER)",
    )


def _parse_assume(specs: list[str] | None) -> tuple:
    """``NAME=LO:HI`` flags → ``SynthesisOptions.assume_ranges``."""
    ranges = []
    for spec in specs or []:
        name, eq, bounds = spec.partition("=")
        lo, colon, hi = bounds.partition(":")
        if not eq or not colon or not name:
            raise HLSError(f"assume {spec!r} is not NAME=LO:HI")
        try:
            ranges.append((name, _parse_value(lo), _parse_value(hi)))
        except ValueError:
            raise HLSError(f"assume {spec!r} has non-numeric bounds")
    return tuple(ranges)


def _options(args: argparse.Namespace) -> SynthesisOptions:
    constraints = (
        ResourceConstraints({"fu": args.fu})
        if args.fu is not None
        else None
    )
    return SynthesisOptions(
        scheduler=args.scheduler,
        allocator=args.allocator,
        constraints=constraints,
        optimize_ir=not args.no_optimize,
        unroll=args.unroll,
        tree_height=getattr(args, "tree_height", False),
        if_conversion=getattr(args, "if_convert", False),
        narrow=getattr(args, "narrow", False),
        assume_ranges=_parse_assume(getattr(args, "assume", None)),
        memory=getattr(args, "memory", False),
    )


def _read_source(path: str) -> str:
    with open(path) as handle:
        return handle.read()


def _parse_value(text: str) -> float | int:
    try:
        return int(text)
    except ValueError:
        return float(text)


def _use_cache() -> bool:
    """Serve synth/simulate from the two-tier cache when a persistent
    store is active (profile/trace/verify always run the real pipeline
    — a cache hit would leave them nothing to measure)."""
    from .store import active_store

    return active_store() is not None


def cmd_synth(args: argparse.Namespace) -> int:
    source = _read_source(args.file)
    design = synthesize(source, args.procedure, _options(args),
                        use_cache=_use_cache())
    print(design.report())
    print()
    print("design process log:")
    for line in design.log:
        print(f"  {line}")
    if args.verify:
        # A narrowed design is only equivalent for inputs inside the
        # trusted --assume contract; verification vectors must respect
        # it or the narrowed loop registers wrap (and may never exit).
        contracts = _parse_assume(getattr(args, "assume", None))
        vectors = None
        if contracts:
            vectors = default_vectors(
                design.cdfg,
                assume={name: (lo, hi) for name, lo, hi in contracts},
            )
        report = check_equivalence(design, vectors=vectors)
        status = "PASS" if report.equivalent else "FAIL"
        print(f"\nco-simulation on {report.vectors} vectors: {status}")
        if not report.equivalent:
            return 1
    if args.output:
        with open(args.output, "w") as handle:
            handle.write(emit_verilog(design))
        print(f"\nVerilog written to {args.output}")
    return 0


def cmd_simulate(args: argparse.Namespace) -> int:
    source = _read_source(args.file)
    design = synthesize(source, args.procedure, _options(args),
                        use_cache=_use_cache())
    inputs = {}
    for pair in args.inputs:
        if "=" not in pair:
            raise HLSError(f"input {pair!r} is not name=value")
        name, _, value = pair.partition("=")
        inputs[name] = _parse_value(value)
    simulator = RTLSimulator(design)
    outputs = simulator.run(inputs)
    for name, value in outputs.items():
        print(f"{name} = {value}")
    print(f"cycles = {simulator.cycles}")
    return 0


def cmd_explore(args: argparse.Namespace) -> int:
    source = _read_source(args.file)
    limits = [int(x) for x in args.limits.split(",")]
    if args.directives:
        from .explore import default_directive_space, explore_directives

        configs = default_directive_space(
            schedulers=args.schedulers.split(","),
            allocators=args.allocators.split(","),
        )
        result = explore_directives(
            source, limits, configs=configs, options=_options(args),
            n_jobs=args.jobs, report=args.report,
            task_timeout_s=args.timeout,
            prune_margin=args.prune_margin,
        )
    else:
        result = explore_fu_range(source, limits,
                                  options=_options(args),
                                  n_jobs=args.jobs, report=args.report,
                                  task_timeout_s=args.timeout)
    print(result.table())
    return 1 if result.failures else 0


def _traced_run(args: argparse.Namespace):
    """Synthesize ``args.file`` with tracing on; returns (design,
    spans, latency-histogram deltas)."""
    source = _read_source(args.file)
    obs.tracer().clear()
    before = obs.metrics().snapshot()
    with obs.tracing(True):
        design = synthesize(source, args.procedure, _options(args))
    deltas = obs.histogram_deltas(before, obs.metrics().snapshot())
    return design, obs.tracer().records(), deltas


def cmd_profile(args: argparse.Namespace) -> int:
    import json

    design, records, histograms = _traced_run(args)
    options = _options(args)
    if args.format == "json":
        document = obs.profile_json(
            records, histograms,
            design=design.cdfg.name,
            scheduler=options.scheduler,
            allocator=options.allocator,
        )
        print(json.dumps(document, indent=2, sort_keys=True))
    else:
        title = (
            f"pipeline profile of '{design.cdfg.name}' "
            f"(scheduler={options.scheduler}, "
            f"allocator={options.allocator}):"
        )
        print(obs.profile_table(records, title=title,
                                histograms=histograms))
    if args.out:
        obs.write_chrome_trace(args.out, records,
                               process_name=f"repro {design.cdfg.name}")
        print(f"trace written to {args.out}")
    return 0


def cmd_trace(args: argparse.Namespace) -> int:
    design, records, _ = _traced_run(args)
    obs.write_chrome_trace(args.out, records,
                           process_name=f"repro {design.cdfg.name}")
    print(f"{len(records)} spans written to {args.out}")
    return 0


def _append_cli_record(kind: str, workload: str, started: float,
                       metrics_before: dict | None = None,
                       design=None, source_digest=None, options=None,
                       **extra) -> None:
    """One summary ledger record for a multi-run CLI command."""
    from .obs import ledger

    active = ledger.active_ledger()
    if active is None:
        return
    active.append(ledger.build_record(
        kind, workload,
        design=design,
        source_digest=source_digest,
        options=options,
        metrics_before=metrics_before,
        wall_s=time.perf_counter() - started,
        extra=extra,
    ))


def cmd_verify(args: argparse.Namespace) -> int:
    from .core.engine import source_digest
    from .obs import ledger
    from .verify import run_differential, verify_design

    source = _read_source(args.file)
    started = time.perf_counter()
    metrics_before = obs.metrics().snapshot()
    with ledger.ledger_scope():
        design = synthesize(source, args.procedure, _options(args))
        report = verify_design(design)
        print(report.render())
        failed = not report.ok
        if args.differential:
            print()
            diff = run_differential(source, options=_options(args))
            print(diff.render())
            failed = failed or not diff.ok
    _append_cli_record(
        "verify", design.cdfg.name, started,
        metrics_before=metrics_before,
        design=design,
        source_digest=source_digest(source),
        options=_options(args),
        ok=not failed,
        differential=args.differential,
    )
    return 1 if failed else 0


def cmd_lint(args: argparse.Namespace) -> int:
    import json

    from .analysis.lint import LintOptions, lint_source, sarif_document
    from .obs import ledger
    from .workloads import DIFFEQ_SOURCE, SQRT_SOURCE, fir_source

    options = LintOptions(
        procedure=args.procedure,
        scheduler=args.scheduler,
        allocator=args.allocator,
        model=args.model,
        optimize=not args.no_optimize,
    )

    sources: list[str] = []
    if args.file is not None:
        sources.append(_read_source(args.file))
    if args.workloads:
        sources.extend([SQRT_SOURCE, DIFFEQ_SOURCE, fir_source(4)])
    if not sources:
        raise HLSError("nothing to lint: give a FILE or --workloads")

    started = time.perf_counter()
    metrics_before = obs.metrics().snapshot()
    with ledger.ledger_scope():
        reports = [lint_source(source, options) for source in sources]
    if args.format == "json":
        payload = [report.to_dict() for report in reports]
        print(json.dumps(payload[0] if len(payload) == 1 else payload,
                         indent=2))
    elif args.format == "sarif":
        print(json.dumps(sarif_document(reports, uri=args.file),
                         indent=2))
    else:
        print("\n\n".join(report.render() for report in reports))
    exit_code = max(report.exit_code for report in reports)
    rule_counts: dict[str, int] = {}
    for report in reports:
        for rule, count in report.rule_counts().items():
            rule_counts[rule] = rule_counts.get(rule, 0) + count
    _append_cli_record(
        "lint", args.file or "workloads", started,
        metrics_before=metrics_before,
        exit_code=exit_code,
        sources=len(sources),
        findings=sum(len(report.diagnostics) for report in reports),
        errors=sum(report.count("error") for report in reports),
        rule_counts=dict(sorted(rule_counts.items())),
    )
    return exit_code


def cmd_fuzz(args: argparse.Namespace) -> int:
    from .obs import ledger

    started = time.perf_counter()
    metrics_before = obs.metrics().snapshot()
    with ledger.ledger_scope():
        exit_code = _run_fuzz(args)
    _append_cli_record(
        "fuzz", f"{args.mode}:{args.tier}", started,
        metrics_before=metrics_before,
        ok=exit_code == 0,
        mode=args.mode,
        tier=args.tier,
        jobs=args.jobs,
    )
    return exit_code


def _run_fuzz(args: argparse.Namespace) -> int:
    from .verify import (
        TIERS,
        fuzz_corpus,
        fuzz_seeds,
        minimize_corpus,
        replay_corpus,
    )

    if args.mode == "replay":
        if args.corpus is None:
            raise HLSError("fuzz replay needs --corpus DIR")
        report = replay_corpus(args.corpus, jobs=args.jobs,
                               timeout_s=args.timeout)
        print(report.render())
        return 1 if not report.ok else 0

    if args.mode == "minimize":
        if args.corpus is None:
            raise HLSError("fuzz minimize needs --corpus DIR")
        print(minimize_corpus(args.corpus, jobs=args.jobs,
                              timeout_s=args.timeout).render())
        return 0

    if args.corpus is not None or args.budget is not None:
        report = fuzz_corpus(
            args.corpus,
            tier=args.tier,
            budget=args.budget,
            master_seed=args.master_seed,
            jobs=args.jobs,
            ops=args.ops,
            inputs=args.inputs,
            artifacts_dir=args.artifacts,
            shrink=not args.no_shrink,
            timeout_s=args.timeout,
        )
        print(report.render())
        return 1 if not report.ok else 0

    seeds = (args.seeds if args.seeds is not None
             else TIERS[args.tier].seeds)
    report = fuzz_seeds(
        [args.seed] if args.seed is not None else seeds,
        ops=args.ops,
        inputs=args.inputs,
        jobs=args.jobs,
        artifacts_dir=args.artifacts,
        shrink=not args.no_shrink,
        timeout_s=args.timeout,
    )
    print(report.render())
    return 1 if not report.ok else 0


def cmd_cache(args: argparse.Namespace) -> int:
    import json

    from .core import clear_synthesis_cache
    from .store import DesignStore, active_store, default_store_dir

    if args.dir is not None:
        store = DesignStore(args.dir)
    else:
        store = active_store() or DesignStore(default_store_dir())

    if args.verb == "stats":
        stats = store.stats()
        if args.json:
            print(json.dumps(stats, indent=2, sort_keys=True))
        else:
            for key in sorted(stats):
                print(f"{key:>16}: {stats[key]}")
        return 0

    if args.verb == "gc":
        max_age_s = (
            args.max_age_days * 86400.0
            if args.max_age_days is not None
            else None
        )
        removed = store.gc(max_entries=args.max_entries,
                           max_age_s=max_age_s)
        if args.json:
            print(json.dumps(removed, indent=2, sort_keys=True))
        else:
            print(
                f"removed {removed['entries']} entries, "
                f"{removed['temp_files']} temp files, "
                f"{removed['stale_versions']} stale version dirs"
            )
        return 0

    # clear: drop the disk tier and the in-process LRU together so a
    # following run starts genuinely cold.
    store.clear()
    clear_synthesis_cache()
    if args.json:
        print(json.dumps({"cleared": str(store.root)}))
    else:
        print(f"cleared design store at {store.root}")
    return 0


def _resolve_ledger(args: argparse.Namespace):
    """The ledger a read-only verb operates on: ``--ledger DIR``, else
    the active one, else the default directory."""
    from .obs.ledger import RunLedger, active_ledger, default_ledger_dir

    if args.ledger:
        return RunLedger(args.ledger)
    return active_ledger() or RunLedger(default_ledger_dir())


def cmd_history(args: argparse.Namespace) -> int:
    import json

    ledger = _resolve_ledger(args)
    records = ledger.records()
    if args.workload is not None:
        records = [r for r in records if r.workload == args.workload]
    if args.kind is not None:
        records = [r for r in records if r.kind == args.kind]
    if args.limit is not None and args.limit >= 0:
        records = records[-args.limit:] if args.limit else []

    if args.format == "json":
        print(json.dumps([r.to_dict() for r in records], indent=2,
                         sort_keys=True))
        return 0
    if not records:
        print(f"history: no runs in {ledger.root}")
        return 0
    print(f"  {'when':<20} {'run':<16} {'kind':<8} {'workload':<12} "
          f"{'lat':>5} {'fu':>3} {'reg':>4} {'wall_s':>8}")
    for record in records:
        qor = record.qor
        print(
            f"  {record.created_at:<20} {record.run_id:<16} "
            f"{record.kind:<8} {record.workload:<12} "
            f"{_qor_cell(qor.get('latency_csteps')):>5} "
            f"{_qor_cell(qor.get('fu_total')):>3} "
            f"{_qor_cell(qor.get('registers')):>4} "
            f"{record.wall_s:>8.3f}"
        )
    return 0


def _qor_cell(value) -> str:
    return "-" if value is None else str(value)


def cmd_report(args: argparse.Namespace) -> int:
    import json

    from .obs.regression import compare, parse_threshold

    thresholds = {}
    for spec in args.threshold or []:
        try:
            family, threshold = parse_threshold(spec)
        except ValueError as error:
            raise HLSError(str(error))
        thresholds[family] = threshold

    ledger = _resolve_ledger(args)
    report = compare(
        ledger.records(),
        window=args.window,
        thresholds=thresholds,
        workload=args.workload,
        kind=args.kind,
    )
    if args.format == "json":
        print(json.dumps(report.to_dict(), indent=2, sort_keys=True))
    elif args.format == "markdown":
        print(report.to_markdown(), end="")
    else:
        print(report.render())
    return report.exit_code


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="High-level synthesis (DAC'88 tutorial flow)",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    synth = subparsers.add_parser("synth", help="synthesize a design")
    _add_common(synth)
    synth.add_argument("--verify", action="store_true",
                       help="co-simulate RTL against the specification")
    synth.add_argument("-o", "--output", default=None,
                       help="write Verilog to this file")
    synth.set_defaults(handler=cmd_synth)

    simulate = subparsers.add_parser(
        "simulate", help="synthesize and run one activation"
    )
    _add_common(simulate)
    simulate.add_argument(
        "inputs", nargs="*",
        help="input values as name=value pairs",
    )
    simulate.set_defaults(handler=cmd_simulate)

    explore = subparsers.add_parser(
        "explore", help="sweep an FU budget and print the trade-offs"
    )
    _add_common(explore)
    explore.add_argument(
        "--limits", default="1,2,3",
        help="comma-separated FU limits to try (default 1,2,3)",
    )
    explore.add_argument(
        "--jobs", type=int, default=1,
        help="worker processes for the sweep (default 1 = serial)",
    )
    explore.add_argument(
        "--report", action="store_true",
        help="append sweep telemetry (wall time, counter deltas)",
    )
    explore.add_argument(
        "--timeout", type=float, default=None,
        help="per-point wall-clock budget in seconds for parallel "
        "sweeps (default: env REPRO_TASK_TIMEOUT_S, else none)",
    )
    explore.add_argument(
        "--directives", action="store_true",
        help="search the directive space (transform switches x "
        "scheduler x allocator) x FU limits through the "
        "estimator-pruned funnel instead of the plain FU sweep; the "
        "table ends with the per-level pruning accounting",
    )
    explore.add_argument(
        "--schedulers", default="list,force-directed",
        help="comma-separated schedulers for --directives "
        "(default list,force-directed)",
    )
    explore.add_argument(
        "--allocators", default="left-edge",
        help="comma-separated allocators for --directives "
        "(default left-edge)",
    )
    explore.add_argument(
        "--prune-margin", type=float, default=0.0,
        help="estimate-dominance slack for --directives: prune a cell "
        "only when another beats it by this relative margin on both "
        "axes (default 0.0)",
    )
    explore.set_defaults(handler=cmd_explore)

    verify = subparsers.add_parser(
        "verify", help="run stage contracts on a synthesized design"
    )
    _add_common(verify)
    verify.add_argument(
        "--differential", action="store_true",
        help="also run the full scheduler x allocator matrix",
    )
    verify.set_defaults(handler=cmd_verify)

    fuzz = subparsers.add_parser(
        "fuzz", help="differentially fuzz random DFGs"
    )
    fuzz.add_argument(
        "mode", nargs="?", choices=("run", "replay", "minimize"),
        default="run",
        help="run: fuzz (fixed-seed, or coverage-guided with "
        "--corpus/--budget); replay: re-check every corpus entry; "
        "minimize: drop corpus entries that no longer add coverage "
        "(default run)",
    )
    fuzz.add_argument(
        "--corpus", default=None,
        help="corpus directory for coverage-guided fuzzing "
        "(entries persist and accumulate across runs)",
    )
    fuzz.add_argument(
        "--tier", choices=("smoke", "standard", "deep"),
        default="standard",
        help="budget profile: seed/mutation counts and wall-clock "
        "cap (default standard)",
    )
    fuzz.add_argument(
        "--budget", type=int, default=None,
        help="mutation budget for a coverage-guided run (default: "
        "the tier's; implies corpus mode, in-memory if no --corpus)",
    )
    fuzz.add_argument(
        "--master-seed", type=int, default=1,
        help="seed of the mutational loop (default 1)",
    )
    fuzz.add_argument(
        "--seeds", type=int, default=None,
        help="fixed-seed sweep size (default: the tier's)",
    )
    fuzz.add_argument(
        "--seed", type=int, default=None,
        help="replay exactly this one seed (e.g. a failure from a CI "
        "log) instead of sweeping --seeds",
    )
    fuzz.add_argument(
        "--jobs", type=int, default=1,
        help="worker processes (default 1 = serial)",
    )
    fuzz.add_argument(
        "--ops", type=int, default=12,
        help="operations per generated DFG (default 12)",
    )
    fuzz.add_argument(
        "--inputs", type=int, default=4,
        help="inputs per generated DFG (default 4)",
    )
    fuzz.add_argument(
        "--artifacts", default="artifacts",
        help="directory for repro scripts (default artifacts/)",
    )
    fuzz.add_argument(
        "--no-shrink", action="store_true",
        help="keep raw failing recipes instead of shrinking",
    )
    fuzz.add_argument(
        "--timeout", type=float, default=None,
        help="per-seed wall-clock budget in seconds for parallel "
        "runs (default: env REPRO_TASK_TIMEOUT_S, else none)",
    )
    _add_ledger_flag(fuzz)
    fuzz.set_defaults(handler=cmd_fuzz)

    lint = subparsers.add_parser(
        "lint", help="run the whole-pipeline linter"
    )
    lint.add_argument("file", nargs="?", default=None,
                      help="BSL source file")
    lint.add_argument(
        "--procedure", default=None,
        help="entry procedure (default: last defined)",
    )
    lint.add_argument(
        "--scheduler", default="list",
        help="scheduler used for the design-level rules (default list)",
    )
    lint.add_argument(
        "--allocator", default="left-edge",
        help="allocator used for the design-level rules "
        "(default left-edge)",
    )
    lint.add_argument(
        "--model", choices=("typed", "universal"), default="typed",
        help="resource model for the design-level rules "
        "(default typed: distinct single-cycle FU classes)",
    )
    lint.add_argument(
        "--no-optimize", action="store_true",
        help="lint the design without the transform pipeline",
    )
    lint.add_argument(
        "--format", choices=("text", "json", "sarif"), default="text",
        help="report format (default text; sarif emits one SARIF "
        "2.1.0 document covering every linted source)",
    )
    lint.add_argument(
        "--workloads", action="store_true",
        help="also lint the built-in workloads (sqrt, diffeq, fir)",
    )
    _add_ledger_flag(lint)
    lint.set_defaults(handler=cmd_lint)

    profile = subparsers.add_parser(
        "profile", help="trace a synthesis and print per-stage timings"
    )
    _add_common(profile)
    profile.add_argument(
        "--out", default=None,
        help="also write the Chrome trace JSON to this file",
    )
    profile.add_argument(
        "--format", choices=("text", "json"), default="text",
        help="stage breakdown format (default text; json adds "
        "latency percentiles)",
    )
    profile.set_defaults(handler=cmd_profile)

    trace = subparsers.add_parser(
        "trace", help="trace a synthesis to Chrome trace-event JSON"
    )
    _add_common(trace)
    trace.add_argument(
        "--out", default="trace.json",
        help="output path for the trace JSON (default trace.json)",
    )
    trace.set_defaults(handler=cmd_trace)

    cache = subparsers.add_parser(
        "cache", help="inspect or maintain the persistent design store"
    )
    cache.add_argument(
        "verb", choices=("stats", "gc", "clear"),
        help="stats: entry/byte counts; gc: prune old or excess "
        "entries and stale temp/version dirs; clear: remove everything",
    )
    cache.add_argument(
        "--dir", default=None,
        help="store directory (default: the active store, else the "
        "default directory)",
    )
    cache.add_argument(
        "--json", action="store_true",
        help="machine-readable output",
    )
    cache.add_argument(
        "--max-entries", type=int, default=None,
        help="gc: keep at most this many newest entries",
    )
    cache.add_argument(
        "--max-age-days", type=float, default=None,
        help="gc: drop entries older than this many days",
    )
    cache.set_defaults(handler=cmd_cache)

    history = subparsers.add_parser(
        "history", help="list the QoR run ledger"
    )
    history.add_argument(
        "--ledger", default=None, metavar="DIR",
        help="ledger directory (default: the active ledger, else the "
        "default directory)",
    )
    history.add_argument(
        "--workload", default=None,
        help="only runs of this workload",
    )
    history.add_argument(
        "--kind", default=None,
        help="only runs of this kind (synth, explore, fuzz, lint, ...)",
    )
    history.add_argument(
        "--limit", type=int, default=20,
        help="show at most the newest N runs (default 20; -1 = all)",
    )
    history.add_argument(
        "--format", choices=("text", "json"), default="text",
        help="output format (default text)",
    )
    history.set_defaults(handler=cmd_history)

    report = subparsers.add_parser(
        "report",
        help="compare the latest ledger runs against their baselines",
    )
    report.add_argument(
        "--ledger", default=None, metavar="DIR",
        help="ledger directory (default: the active ledger, else the "
        "default directory)",
    )
    report.add_argument(
        "--workload", default=None,
        help="only report on this workload",
    )
    report.add_argument(
        "--kind", default=None,
        help="only report on this run kind",
    )
    report.add_argument(
        "--window", type=int, default=5,
        help="baseline window: median of up to N prior runs "
        "(default 5)",
    )
    report.add_argument(
        "--threshold", action="append", default=None,
        metavar="FAMILY=WARN,FAIL",
        help="override a family's warn/fail percentages (either may "
        "be '-' to disable); repeatable",
    )
    report.add_argument(
        "--format", choices=("text", "json", "markdown"),
        default="text",
        help="output format (default text)",
    )
    report.set_defaults(handler=cmd_report)

    args = parser.parse_args(argv)
    store_flag = getattr(args, "store", None)
    if store_flag is not None:
        from .store import configure_store, default_store_dir

        configure_store(default_store_dir() if store_flag else None)
    if args.command not in ("history", "report"):
        ledger_flag = getattr(args, "ledger", None)
        if ledger_flag is not None:
            from .obs.ledger import configure_ledger, default_ledger_dir

            configure_ledger(ledger_flag or default_ledger_dir())
    try:
        return args.handler(args)
    except HLSError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    sys.exit(main())
