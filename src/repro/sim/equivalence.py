"""Behavior ↔ RTL equivalence checking by co-simulation.

§4 names design verification — "the proof that a detailed design
implements the exact design stated in the specification" — as an open
problem.  The practical instrument this library provides is exhaustive
co-simulation over supplied (or generated) input vectors: the
behavioral interpreter executes the *specification semantics*, the RTL
simulator executes the *synthesized design*, and both share one
arithmetic semantics module, so any divergence indicts the synthesis
steps (schedule, allocation, storage plan or controller), not the
number system.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..core.design import SynthesizedDesign
from ..errors import EquivalenceError
from ..ir.cdfg import CDFG
from ..ir.types import FixedType, IntType
from .behavior import BehavioralSimulator
from .rtl_sim import RTLSimulator
from .semantics import Number


@dataclass
class VectorResult:
    """Outcome of one co-simulated input vector."""

    inputs: dict[str, Number]
    behavioral: dict[str, Number]
    rtl: dict[str, Number]
    cycles: int

    @property
    def matches(self) -> bool:
        return self.behavioral == self.rtl


@dataclass
class EquivalenceReport:
    """All co-simulation results plus summary statistics."""

    results: list[VectorResult] = field(default_factory=list)

    @property
    def vectors(self) -> int:
        return len(self.results)

    @property
    def mismatches(self) -> list[VectorResult]:
        return [result for result in self.results if not result.matches]

    @property
    def equivalent(self) -> bool:
        return not self.mismatches

    @property
    def max_cycles(self) -> int:
        return max((result.cycles for result in self.results), default=0)


def default_vectors(cdfg: CDFG, count: int = 8,
                    seed: int = 12345,
                    assume: dict[str, tuple] | None = None,
                    ) -> list[dict[str, Number]]:
    """Deterministic corner-plus-pseudorandom input vectors.

    Corners: all-zero (when legal), all-min, all-max, all-one.  The
    remainder are linear-congruential pseudorandom values inside each
    input's representable range (no ``random`` module — determinism is
    part of the library's contract).

    ``assume`` maps input names to trusted ``(lo, hi)`` operating
    ranges (the shape of ``SynthesisOptions.assume_ranges``): corners
    clamp into and samples draw from the contract, so a design
    narrowed under it is only exercised where its equivalence
    guarantee holds (docs/static-analysis.md).
    """
    state = seed
    bounds = dict(assume or {})

    def next_unit() -> float:
        nonlocal state
        state = (state * 1103515245 + 12345) % (1 << 31)
        return state / float(1 << 31)

    def clamp(name: str, value: Number) -> Number:
        if name not in bounds:
            return value
        lo, hi = bounds[name]
        return min(max(value, lo), hi)

    def sample(port) -> Number:
        type_ = port.type
        if port.name in bounds:
            lo, hi = bounds[port.name]
            if isinstance(type_, IntType):
                return int(lo) + int(next_unit() * (int(hi) - int(lo) + 1))
            return lo + next_unit() * (hi - lo)
        if isinstance(type_, IntType):
            low, high = type_.min_value, type_.max_value
            return low + int(next_unit() * (high - low + 1))
        assert isinstance(type_, FixedType)
        as_int = IntType(type_.width, type_.signed)
        stored = (
            as_int.min_value
            + int(next_unit() * (as_int.max_value - as_int.min_value + 1))
        )
        return stored / type_.scale

    vectors: list[dict[str, Number]] = []
    corners: list[Number | str] = ["zero", "one", "min", "max"]
    for corner in corners[: min(count, 4)]:
        vector: dict[str, Number] = {}
        for port in cdfg.inputs:
            type_ = port.type
            if corner == "zero":
                vector[port.name] = clamp(port.name, 0)
            elif corner == "one":
                vector[port.name] = clamp(port.name, 1)
            elif corner == "min":
                if isinstance(type_, IntType):
                    vector[port.name] = clamp(port.name, type_.min_value)
                else:
                    assert isinstance(type_, FixedType)
                    as_int = IntType(type_.width, type_.signed)
                    vector[port.name] = clamp(
                        port.name, as_int.min_value / type_.scale
                    )
            else:
                if isinstance(type_, IntType):
                    vector[port.name] = clamp(port.name, type_.max_value)
                else:
                    assert isinstance(type_, FixedType)
                    as_int = IntType(type_.width, type_.signed)
                    vector[port.name] = clamp(
                        port.name, as_int.max_value / type_.scale
                    )
        vectors.append(vector)
    while len(vectors) < count:
        vectors.append(
            {port.name: sample(port) for port in cdfg.inputs}
        )
    return vectors


def check_behavioral_equivalence(
    before: CDFG,
    after: CDFG,
    vectors: list[dict[str, Number]] | None = None,
    memories: dict[str, list[Number]] | None = None,
) -> EquivalenceReport:
    """Compare two CDFGs behaviorally (the §4 'each step in the
    synthesis process preserves the behavior' check, instrumented as
    co-simulation).

    Used by the transform test-suite: the pre-transformation graph is
    the specification, the post-transformation graph the implementation.
    Inputs/outputs must agree by name.
    """
    if {p.name for p in before.inputs} != {p.name for p in after.inputs}:
        raise EquivalenceError("input ports differ between CDFGs")
    if {p.name for p in before.outputs} != {
        p.name for p in after.outputs
    }:
        raise EquivalenceError("output ports differ between CDFGs")
    if vectors is None:
        vectors = default_vectors(before)
    report = EquivalenceReport()
    for inputs in vectors:
        reference = BehavioralSimulator(before).run(inputs, memories)
        candidate = BehavioralSimulator(after).run(inputs, memories)
        result = VectorResult(inputs, reference, candidate, 0)
        report.results.append(result)
        if not result.matches:
            raise EquivalenceError(
                f"transformed {after.name} diverges on {inputs}: "
                f"before={reference} after={candidate}"
            )
    return report


def check_equivalence(design: SynthesizedDesign,
                      vectors: list[dict[str, Number]] | None = None,
                      memories: dict[str, list[Number]] | None = None,
                      raise_on_mismatch: bool = True
                      ) -> EquivalenceReport:
    """Co-simulate the design against its own CDFG's behavior.

    Note: the design's CDFG is the *optimized* IR; transformation
    correctness is checked separately (tests co-simulate pre- vs
    post-optimization CDFGs behaviorally).

    Args:
        design: the synthesized design.
        vectors: input vectors; defaults to :func:`default_vectors`.
        memories: optional initial memory contents used for all runs.
        raise_on_mismatch: raise :class:`EquivalenceError` on the first
            diverging vector (default) instead of just recording it.
    """
    cdfg = design.cdfg
    if vectors is None:
        vectors = default_vectors(cdfg)
    report = EquivalenceReport()
    for inputs in vectors:
        behavioral = BehavioralSimulator(cdfg).run(inputs, memories)
        rtl_sim = RTLSimulator(design)
        rtl = rtl_sim.run(inputs, memories)
        result = VectorResult(inputs, behavioral, rtl, rtl_sim.cycles)
        report.results.append(result)
        if raise_on_mismatch and not result.matches:
            raise EquivalenceError(
                f"design {cdfg.name} diverges on {inputs}: "
                f"behavioral={behavioral} rtl={rtl}"
            )
    return report
