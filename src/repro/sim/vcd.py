"""VCD (Value Change Dump) emission of a recorded RTL simulation.

Turns a traced :class:`~repro.sim.rtl_sim.RTLSimulator` run into a
standard VCD file viewable in GTKWave and friends: one signal per
physical register (variables and temps, raw bit patterns in the
design's Q-format), plus the controller state register.
"""

from __future__ import annotations

from typing import Iterable

from ..core.design import SynthesizedDesign
from ..errors import SimulationError
from ..ir.types import FixedType, IntType
from .rtl_sim import TraceEntry

_ID_ALPHABET = "".join(chr(c) for c in range(33, 127))


def _identifier(index: int) -> str:
    """Short printable VCD identifier for signal ``index``."""
    if index < len(_ID_ALPHABET):
        return _ID_ALPHABET[index]
    head, tail = divmod(index, len(_ID_ALPHABET))
    return _ID_ALPHABET[head - 1] + _ID_ALPHABET[tail]


def _signal_name(ref: tuple) -> str:
    if ref[0] == "var":
        return str(ref[1])
    return f"tmp{ref[1]}"


def _bits(value, type_) -> str:
    if isinstance(type_, FixedType):
        stored = int(round(float(value) * type_.scale))
        width = type_.width
    else:
        assert isinstance(type_, IntType)
        stored = int(value)
        width = type_.width
    return format(stored & ((1 << width) - 1), f"0{width}b")


def write_vcd(design: SynthesizedDesign,
              trace: Iterable[TraceEntry],
              module_name: str | None = None) -> str:
    """Render a recorded trace as VCD text.

    Args:
        design: the simulated design (provides register types/widths).
        trace: ``RTLSimulator(..., trace=True).trace`` after a run.
        module_name: VCD scope name (default: the procedure name).
    """
    trace = list(trace)
    if not trace:
        raise SimulationError(
            "empty trace — construct RTLSimulator(design, trace=True) "
            "and run it first"
        )
    cdfg = design.cdfg
    registers = sorted(design.storage_registers(), key=str)

    def type_of(ref: tuple):
        if ref[0] == "var":
            return cdfg.variables[ref[1]]
        width = design.storage_registers()[ref]
        return IntType(max(width, 1), signed=False)

    state_bits = max(design.state_count.bit_length(), 1)

    lines: list[str] = []
    out = lines.append
    out("$date repro-hls simulation $end")
    out("$version repro 1.0 $end")
    out("$timescale 1ns $end")
    out(f"$scope module {module_name or cdfg.name} $end")
    identifiers: dict[tuple, str] = {}
    state_id = _identifier(0)
    out(f"$var wire {state_bits} {state_id} fsm_state $end")
    for index, ref in enumerate(registers, start=1):
        identifier = _identifier(index)
        identifiers[ref] = identifier
        width = design.storage_registers()[ref]
        out(f"$var wire {width} {identifier} {_signal_name(ref)} $end")
    out("$upscope $end")
    out("$enddefinitions $end")

    previous: dict[tuple, str] = {}
    previous_state: str | None = None
    for entry in trace:
        changes: list[str] = []
        state_bits_value = format(entry.state_id, f"0{state_bits}b")
        if state_bits_value != previous_state:
            changes.append(f"b{state_bits_value} {state_id}")
            previous_state = state_bits_value
        for ref in registers:
            if ref not in entry.registers:
                continue
            rendered = _bits(entry.registers[ref], type_of(ref))
            if previous.get(ref) != rendered:
                changes.append(f"b{rendered} {identifiers[ref]}")
                previous[ref] = rendered
        if changes:
            out(f"#{entry.cycle * 10}")
            lines.extend(changes)
    out(f"#{(trace[-1].cycle + 1) * 10}")
    return "\n".join(lines) + "\n"
