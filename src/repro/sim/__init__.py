"""Simulation: behavioral interpreter, RTL simulator, equivalence."""

from .behavior import BehavioralSimulator, ExecutionStats, run_behavior
from .equivalence import (
    EquivalenceReport,
    VectorResult,
    check_behavioral_equivalence,
    check_equivalence,
    default_vectors,
)
from .rtl_sim import RTLSimulator, TraceEntry, run_rtl
from .semantics import coerce, evaluate
from .vcd import write_vcd

__all__ = [
    "BehavioralSimulator",
    "EquivalenceReport",
    "ExecutionStats",
    "RTLSimulator",
    "TraceEntry",
    "VectorResult",
    "write_vcd",
    "check_behavioral_equivalence",
    "check_equivalence",
    "coerce",
    "default_vectors",
    "evaluate",
    "run_behavior",
    "run_rtl",
]
