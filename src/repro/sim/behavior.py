"""Behavioral (algorithm-level) interpreter for CDFGs.

This executes the IR directly — the reference semantics of a design
before any scheduling or allocation has happened.  It is the golden
model the RTL simulator is checked against (the paper's §4 "design
verification": showing each synthesis step preserves the behavior of
the initial specification).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..errors import SimulationError
from ..ir.cdfg import (
    CDFG,
    BlockRegion,
    IfRegion,
    LoopRegion,
    Region,
    SeqRegion,
)
from ..ir.opcodes import OpKind
from ..ir.values import BasicBlock
from .semantics import Number, coerce, evaluate

DEFAULT_MAX_ITERATIONS = 1_000_000


@dataclass
class ExecutionStats:
    """Dynamic execution counts gathered during a behavioral run."""

    blocks_executed: int = 0
    ops_executed: int = 0
    op_histogram: dict[OpKind, int] = field(default_factory=dict)
    loop_iterations: dict[int, int] = field(default_factory=dict)

    def count(self, kind: OpKind) -> None:
        self.ops_executed += 1
        self.op_histogram[kind] = self.op_histogram.get(kind, 0) + 1


class BehavioralSimulator:
    """Executes a CDFG over concrete inputs.

    Example::

        sim = BehavioralSimulator(cdfg)
        outputs = sim.run({"X": 0.5})
        print(outputs["Y"])
    """

    def __init__(self, cdfg: CDFG,
                 max_iterations: int = DEFAULT_MAX_ITERATIONS) -> None:
        self._cdfg = cdfg
        self._max_iterations = max_iterations
        self.stats = ExecutionStats()
        self._env: dict[str, Number] = {}
        self._memories: dict[str, list[Number]] = {}
        self._values: dict[int, Number] = {}

    # ------------------------------------------------------------------

    def run(self, inputs: dict[str, Number],
            memories: dict[str, list[Number]] | None = None
            ) -> dict[str, Number]:
        """Execute the procedure once.

        Args:
            inputs: value for every input port (coerced to port types).
            memories: optional initial contents per memory; missing
                memories start zero-filled.

        Returns:
            A dict with the final value of every output port.
        """
        self.stats = ExecutionStats()
        self._values = {}
        self._env = {
            name: coerce(0, type_)
            for name, type_ in self._cdfg.variables.items()
        }
        for port in self._cdfg.inputs:
            if port.name not in inputs:
                raise SimulationError(f"missing input {port.name!r}")
            self._env[port.name] = coerce(inputs[port.name], port.type)
        unknown = set(inputs) - {p.name for p in self._cdfg.inputs}
        if unknown:
            raise SimulationError(f"unknown inputs: {sorted(unknown)}")

        self._memories = {}
        memories = memories or {}
        for name, array_type in self._cdfg.memories.items():
            if name in memories:
                contents = [
                    coerce(v, array_type.element) for v in memories[name]
                ]
                if len(contents) != array_type.length:
                    raise SimulationError(
                        f"memory {name!r} expects {array_type.length} "
                        f"elements, got {len(contents)}"
                    )
            else:
                contents = [coerce(0, array_type.element)] * array_type.length
            self._memories[name] = contents

        self._exec_region(self._cdfg.body)
        return {
            port.name: self._env[port.name] for port in self._cdfg.outputs
        }

    def memory_contents(self, name: str) -> list[Number]:
        """Final contents of a memory after :meth:`run`."""
        return list(self._memories[name])

    # ------------------------------------------------------------------

    def _exec_region(self, region: Region) -> None:
        if isinstance(region, BlockRegion):
            self._exec_block(region.block)
        elif isinstance(region, SeqRegion):
            for item in region.items:
                self._exec_region(item)
        elif isinstance(region, IfRegion):
            self._exec_block(region.cond_block)
            if self._values[region.cond.id]:
                self._exec_region(region.then_region)
            elif region.else_region is not None:
                self._exec_region(region.else_region)
        elif isinstance(region, LoopRegion):
            self._exec_loop(region)
        else:  # pragma: no cover
            raise SimulationError(f"unknown region {region!r}")

    def _exec_loop(self, region: LoopRegion) -> None:
        iterations = 0
        region_key = id(region)
        while True:
            if iterations >= self._max_iterations:
                raise SimulationError(
                    f"loop exceeded {self._max_iterations} iterations"
                )
            if region.test_in_body:
                # Post-test: body (which computes the condition) first.
                self._exec_region(region.body)
                iterations += 1
                exit_now = bool(self._values[region.cond.id]) == \
                    region.exit_on_true
                if exit_now:
                    break
            else:
                self._exec_block(region.test_block)
                exit_now = bool(self._values[region.cond.id]) == \
                    region.exit_on_true
                if exit_now:
                    break
                self._exec_region(region.body)
                iterations += 1
        self.stats.loop_iterations[region_key] = (
            self.stats.loop_iterations.get(region_key, 0) + iterations
        )

    def _exec_block(self, block: BasicBlock) -> None:
        self.stats.blocks_executed += 1
        for op in block.ops:
            self.stats.count(op.kind)
            if op.kind is OpKind.VAR_READ:
                assert op.result is not None
                self._values[op.result.id] = self._env[op.attrs["var"]]
            elif op.kind is OpKind.VAR_WRITE:
                var = op.attrs["var"]
                value = self._values[op.operands[0].id]
                self._env[var] = coerce(value, self._cdfg.variables[var])
            elif op.kind is OpKind.LOAD:
                memory = self._memories[op.attrs["memory"]]
                index = int(self._values[op.operands[0].id])
                if not 0 <= index < len(memory):
                    raise SimulationError(
                        f"load index {index} out of range for "
                        f"{op.attrs['memory']!r}"
                    )
                assert op.result is not None
                self._values[op.result.id] = memory[index]
            elif op.kind is OpKind.STORE:
                memory = self._memories[op.attrs["memory"]]
                index = int(self._values[op.operands[0].id])
                if not 0 <= index < len(memory):
                    raise SimulationError(
                        f"store index {index} out of range for "
                        f"{op.attrs['memory']!r}"
                    )
                element = self._cdfg.memories[op.attrs["memory"]].element
                memory[index] = coerce(
                    self._values[op.operands[1].id], element
                )
            elif op.kind is OpKind.NOP:
                continue
            else:
                operands = [self._values[v.id] for v in op.operands]
                types = [v.type for v in op.operands]
                result_type = op.result.type if op.result else None
                result = evaluate(
                    op.kind, operands, types, result_type, op.attrs
                )
                if op.result is not None:
                    self._values[op.result.id] = result


def run_behavior(cdfg: CDFG, inputs: dict[str, Number],
                 memories: dict[str, list[Number]] | None = None
                 ) -> dict[str, Number]:
    """One-shot helper: simulate ``cdfg`` and return its outputs."""
    return BehavioralSimulator(cdfg).run(inputs, memories)
