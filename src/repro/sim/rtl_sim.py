"""Cycle-accurate simulation of a synthesized design (FSM + datapath).

The simulator executes the controller state by state.  Within a state
it evaluates exactly the operations the schedule started there, reading
operands from this cycle's wires (chained values), from physical
registers (stored values) or from hardwired constants; at the end of
the state it commits register latches and memory writes, then follows
the FSM transition.  Values are computed by the *same* semantics module
as the behavioral interpreter, so any output divergence observed by the
equivalence checker is a scheduling/allocation/control bug, never an
arithmetic modelling difference.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.design import SynthesizedDesign
from ..errors import SimulationError
from ..ir.opcodes import OpKind
from ..ir.types import Type
from .semantics import Number, coerce, evaluate

DEFAULT_MAX_CYCLES = 10_000_000


@dataclass(frozen=True)
class TraceEntry:
    """One cycle of a recorded execution: the state just executed and
    the post-edge register file contents."""

    cycle: int
    state_id: int
    registers: dict


class RTLSimulator:
    """Executes a :class:`SynthesizedDesign` cycle by cycle.

    After :meth:`run`, ``cycles`` holds the number of control steps the
    activation took — directly comparable to the paper's step counts.
    With ``trace=True``, ``trace`` records per-cycle register snapshots
    (consumed by :func:`repro.sim.vcd.write_vcd`).
    """

    def __init__(self, design: SynthesizedDesign,
                 max_cycles: int = DEFAULT_MAX_CYCLES,
                 trace: bool = False) -> None:
        if design.fsm is None:
            raise SimulationError("design has no controller")
        self._design = design
        self._max_cycles = max_cycles
        self._tracing = trace
        self.trace: list[TraceEntry] = []
        self.cycles = 0
        self._registers: dict[tuple, Number] = {}
        self._memories: dict[str, list[Number]] = {}

    # ------------------------------------------------------------------

    def run(self, inputs: dict[str, Number],
            memories: dict[str, list[Number]] | None = None
            ) -> dict[str, Number]:
        """One activation: load inputs, run to halt, return outputs."""
        design = self._design
        cdfg = design.cdfg
        self.cycles = 0

        self._registers = {}
        for name, type_ in cdfg.variables.items():
            self._registers[("var", name)] = coerce(0, type_)
        for ref in design.storage_registers():
            if ref[0] == "tmp":
                self._registers[ref] = 0
        for port in cdfg.inputs:
            if port.name not in inputs:
                raise SimulationError(f"missing input {port.name!r}")
            self._registers[("var", port.name)] = coerce(
                inputs[port.name], port.type
            )

        self._memories = {}
        memories = memories or {}
        for name, array_type in cdfg.memories.items():
            if name in memories:
                contents = [
                    coerce(v, array_type.element) for v in memories[name]
                ]
            else:
                contents = [coerce(0, array_type.element)] * array_type.length
            if len(contents) != array_type.length:
                raise SimulationError(
                    f"memory {name!r} expects {array_type.length} entries"
                )
            self._memories[name] = contents

        fsm = design.fsm
        assert fsm is not None
        state_id = fsm.entry
        pending: dict[int, list[tuple[int, Number]]] = {}

        self.trace = []
        while state_id is not None:
            if self.cycles >= self._max_cycles:
                raise SimulationError(
                    f"exceeded {self._max_cycles} cycles (runaway FSM?)"
                )
            state = fsm.state(state_id)
            state_id = self._execute_state(state, pending)
            self.cycles += 1
            if self._tracing:
                self.trace.append(
                    TraceEntry(
                        cycle=self.cycles,
                        state_id=state.id,
                        registers=dict(self._registers),
                    )
                )

        return {
            port.name: self._registers[("var", port.name)]
            for port in cdfg.outputs
        }

    def memory_contents(self, name: str) -> list[Number]:
        return list(self._memories[name])

    # ------------------------------------------------------------------

    def _execute_state(self, state, pending) -> int | None:
        plan = state.plan
        step = state.step
        schedule = plan.schedule
        wires: dict[int, Number] = {}

        # Multicycle results maturing this cycle.
        for value_id, number in pending.pop(self.cycles, []):
            wires[value_id] = number

        def read_value(value) -> Number:
            if value.id in wires:
                return wires[value.id]
            storage = plan.storage_of.get(value.id)
            if storage is not None:
                return self._registers[storage]
            if value.producer.kind is OpKind.CONST:
                return coerce(
                    value.producer.attrs["value"], value.type
                )
            raise SimulationError(
                f"value {value!r} not available in state S{state.id} "
                f"({plan.block.name}#{step}) — allocation or control bug"
            )

        for op in plan.starts[step] if step < len(plan.starts) else []:
            if op.kind is OpKind.VAR_READ:
                assert op.result is not None
                wires[op.result.id] = self._registers[
                    ("var", op.attrs["var"])
                ]
            elif op.kind in (OpKind.VAR_WRITE, OpKind.NOP, OpKind.STORE):
                continue  # handled at commit time
            elif op.kind is OpKind.CONST:
                assert op.result is not None
                wires[op.result.id] = coerce(
                    op.attrs["value"], op.result.type
                )
            elif op.kind is OpKind.LOAD:
                memory = self._memories[op.attrs["memory"]]
                index = int(read_value(op.operands[0]))
                if not 0 <= index < len(memory):
                    raise SimulationError(
                        f"load index {index} out of range for "
                        f"{op.attrs['memory']!r}"
                    )
                self._deliver(op, memory[index], schedule, wires, pending)
            else:
                operands = [read_value(v) for v in op.operands]
                types = [v.type for v in op.operands]
                result_type = op.result.type if op.result else None
                number = evaluate(
                    op.kind, operands, types, result_type, op.attrs
                )
                if op.result is not None:
                    self._deliver(op, number, schedule, wires, pending)

        # Commit phase.  Everything latched or stored on this clock
        # edge samples its *pre-edge* value first — registers update
        # simultaneously in hardware, so no commit may observe another
        # commit of the same cycle.
        sampled_latches = [
            (latch, read_value(latch.value))
            for latch in plan.latches_at(step)
        ]
        sampled_stores = []
        for memory_write in plan.memory_writes_at(step):
            store = memory_write.op
            sampled_stores.append(
                (
                    memory_write,
                    int(read_value(store.operands[0])),
                    read_value(store.operands[1]),
                )
            )
        transition = state.transition
        if transition.unconditional:
            next_state = transition.if_true
        else:
            assert transition.cond is not None
            taken = bool(read_value(transition.cond))
            next_state = (
                transition.if_true if taken else transition.if_false
            )

        for latch, number in sampled_latches:
            target_type = self._target_type(latch.target, latch.value.type)
            self._registers[latch.target] = coerce(number, target_type)
        for memory_write, index, number in sampled_stores:
            memory = self._memories[memory_write.memory]
            if not 0 <= index < len(memory):
                raise SimulationError(
                    f"store index {index} out of range for "
                    f"{memory_write.memory!r}"
                )
            element = self._design.cdfg.memories[memory_write.memory].element
            memory[index] = coerce(number, element)
        return next_state

    def _deliver(self, op, number: Number, schedule, wires,
                 pending) -> None:
        """Publish a result now (delay ≤ 1) or when it matures."""
        assert op.result is not None
        delay = schedule.problem.delay(op.id)
        if delay <= 1:
            wires[op.result.id] = number
        else:
            due = self.cycles + delay - 1
            pending.setdefault(due, []).append((op.result.id, number))

    def _target_type(self, target: tuple, value_type: Type) -> Type:
        if target[0] == "var":
            return self._design.cdfg.variables[target[1]]
        return value_type


def run_rtl(design: SynthesizedDesign, inputs: dict[str, Number],
            memories: dict[str, list[Number]] | None = None
            ) -> dict[str, Number]:
    """One-shot helper: simulate the design and return its outputs."""
    return RTLSimulator(design).run(inputs, memories)
