"""Shared evaluation semantics for IR operations.

Both the behavioral interpreter and the cycle-accurate RTL simulator
evaluate operations through this single module, so the equivalence
checker compares two *schedules* of the same arithmetic — not two
arithmetic implementations.  Integer values wrap like hardware
registers; fixed-point values are quantized to their type's grid after
every operation (modelling a datapath whose registers all carry the
declared format).
"""

from __future__ import annotations

from typing import Any

from ..errors import SimulationError
from ..ir.opcodes import OpKind
from ..ir.types import FixedType, IntType, Type

Number = int | float


def coerce(value: Number, type_: Type) -> Number:
    """Clamp ``value`` onto the representable grid of ``type_``."""
    if isinstance(type_, IntType):
        return type_.wrap(int(value))
    if isinstance(type_, FixedType):
        return type_.quantize(float(value))
    raise SimulationError(f"cannot coerce to non-scalar type {type_}")


def _as_bits(value: Number, type_: Type) -> int:
    """Bit pattern of a value (for bitwise operations)."""
    if isinstance(type_, IntType):
        return int(value) & ((1 << type_.width) - 1)
    if isinstance(type_, FixedType):
        return int(round(float(value) * type_.scale)) & ((1 << type_.width) - 1)
    raise SimulationError(f"no bit pattern for type {type_}")


def evaluate(kind: OpKind, operands: list[Number],
             operand_types: list[Type], result_type: Type | None,
             attrs: dict[str, Any] | None = None) -> Number:
    """Evaluate one operation.

    Args:
        kind: the operation kind (must be a pure computation — variable,
            memory and control kinds are handled by the simulators).
        operands: operand values.
        operand_types: their types (needed for bit-pattern operations).
        result_type: the type the result is coerced to.
        attrs: operation attributes (``value`` for CONST).

    Returns:
        The result value, coerced onto ``result_type``.
    """
    attrs = attrs or {}
    if kind is OpKind.CONST:
        assert result_type is not None
        return coerce(attrs["value"], result_type)

    if kind is OpKind.ADD:
        raw: Number = operands[0] + operands[1]
    elif kind is OpKind.SUB:
        raw = operands[0] - operands[1]
    elif kind is OpKind.MUL:
        raw = operands[0] * operands[1]
    elif kind is OpKind.DIV:
        if operands[1] == 0:
            raise SimulationError("division by zero")
        if isinstance(result_type, IntType):
            # Hardware-style truncating division (toward zero).
            quotient = abs(int(operands[0])) // abs(int(operands[1]))
            negative = (operands[0] < 0) != (operands[1] < 0)
            raw = -quotient if negative else quotient
        else:
            raw = operands[0] / operands[1]
    elif kind is OpKind.MOD:
        if operands[1] == 0:
            raise SimulationError("modulo by zero")
        quotient = abs(int(operands[0])) // abs(int(operands[1]))
        negative = (operands[0] < 0) != (operands[1] < 0)
        quotient = -quotient if negative else quotient
        raw = int(operands[0]) - quotient * int(operands[1])
    elif kind is OpKind.INC:
        raw = operands[0] + 1
    elif kind is OpKind.DEC:
        raw = operands[0] - 1
    elif kind is OpKind.NEG:
        raw = -operands[0]
    elif kind is OpKind.SHL:
        amount = int(operands[1])
        if amount < 0:
            raise SimulationError(f"negative shift amount {amount}")
        raw = operands[0] * (1 << amount)
    elif kind is OpKind.SHR:
        amount = int(operands[1])
        if amount < 0:
            raise SimulationError(f"negative shift amount {amount}")
        if isinstance(operand_types[0], FixedType):
            raw = operands[0] / (1 << amount)
        else:
            raw = int(operands[0]) >> amount
    elif kind in (OpKind.AND, OpKind.OR, OpKind.XOR):
        left = _as_bits(operands[0], operand_types[0])
        right = _as_bits(operands[1], operand_types[1])
        if kind is OpKind.AND:
            raw = left & right
        elif kind is OpKind.OR:
            raw = left | right
        else:
            raw = left ^ right
        assert isinstance(result_type, IntType)
        return result_type.wrap(raw)
    elif kind is OpKind.NOT:
        bits = _as_bits(operands[0], operand_types[0])
        assert isinstance(result_type, IntType)
        return result_type.wrap(~bits)
    elif kind is OpKind.EQ:
        return int(operands[0] == operands[1])
    elif kind is OpKind.NE:
        return int(operands[0] != operands[1])
    elif kind is OpKind.LT:
        return int(operands[0] < operands[1])
    elif kind is OpKind.LE:
        return int(operands[0] <= operands[1])
    elif kind is OpKind.GT:
        return int(operands[0] > operands[1])
    elif kind is OpKind.GE:
        return int(operands[0] >= operands[1])
    elif kind is OpKind.MUX:
        raw = operands[1] if operands[0] else operands[2]
    else:
        raise SimulationError(f"evaluate() cannot execute {kind}")

    assert result_type is not None
    return coerce(raw, result_type)
