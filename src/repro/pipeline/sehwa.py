"""Pipeline synthesis in the style of Sehwa (Park & Parker).

§3.3: "Synthesis of pipelined data paths is a design domain which has
now been characterized by a foundation of theory and implemented by the
program Sehwa."  Sehwa explores the cost/performance space of pipelined
datapaths: successive task initiations are launched every *initiation
interval* (II) cycles, so operations from different activations overlap
and two operations conflict on a functional unit iff they occupy the
same control step *modulo II*.

Provided here:

* :class:`PipelineSchedule` — a schedule plus its II, with a modulo
  resource checker;
* :class:`ModuloScheduler` — list scheduling with modulo reservation
  (resource-constrained, finds a schedule for a given II or fails);
* :func:`minimum_initiation_interval` — the classic resource lower
  bound ``ceil(Σ delay / units)`` per class;
* :func:`find_best_pipeline` — smallest feasible II for the given
  resources (the Sehwa performance-first search);
* :func:`explore_pipeline` — the cost/performance table (FU budget →
  II, latency, throughput) reproducing Sehwa's trade-off curves.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..errors import SchedulingError
from ..scheduling.base import Schedule, SchedulingProblem
from ..scheduling.list_scheduler import path_length_priority


class PipelineSchedule(Schedule):
    """A schedule executed with overlapped activations every II cycles."""

    def __init__(self, problem: SchedulingProblem, start,
                 initiation_interval: int,
                 scheduler: str = "modulo") -> None:
        super().__init__(problem, start, scheduler)
        self.initiation_interval = initiation_interval

    @property
    def throughput(self) -> float:
        """Task initiations per cycle."""
        return 1.0 / self.initiation_interval

    def modulo_usage(self) -> dict[tuple[int, str], int]:
        """Units busy per (step mod II, class) across all activations."""
        usage: dict[tuple[int, str], int] = {}
        problem = self.problem
        for op in problem.ops:
            cls = problem.op_class(op.id)
            if cls is None:
                continue
            begin = self.start[op.id]
            for k in range(problem.occupancy(op.id)):
                slot = ((begin + k) % self.initiation_interval, cls)
                usage[slot] = usage.get(slot, 0) + 1
        return usage

    def validate(self) -> None:
        """Base legality plus the modulo resource constraint (which
        subsumes the base per-step usage check)."""
        super().validate()
        for (slot, cls), used in sorted(self.modulo_usage().items()):
            limit = self.problem.constraints.limit(cls)
            if limit is not None and used > limit:
                raise SchedulingError(
                    f"[{self.scheduler}] modulo slot {slot} uses {used} "
                    f"{cls!r} units, limit {limit} "
                    f"(II={self.initiation_interval})"
                )


def minimum_initiation_interval(problem: SchedulingProblem) -> int:
    """Resource-constrained II lower bound: per class,
    ceil(total busy steps / units)."""
    busy: dict[str, int] = {}
    for op in problem.ops:
        cls = problem.op_class(op.id)
        if cls is None:
            continue
        busy[cls] = busy.get(cls, 0) + problem.occupancy(op.id)
    bound = 1
    for cls, total in busy.items():
        limit = problem.constraints.limit(cls)
        if limit is not None:
            bound = max(bound, math.ceil(total / limit))
    return bound


class ModuloScheduler:
    """List scheduling with a modulo reservation table.

    Args:
        problem: the region to pipeline (acyclic — loop-carried
            dependences are the caller's responsibility, e.g. via
            unrolled or feed-forward workloads like filters).
        initiation_interval: II to schedule against.
    """

    name = "modulo"

    def __init__(self, problem: SchedulingProblem,
                 initiation_interval: int) -> None:
        self.problem = problem
        self.initiation_interval = initiation_interval

    def schedule(self) -> PipelineSchedule:
        problem = self.problem
        interval = self.initiation_interval
        priority = path_length_priority(problem)
        # Pick the highest-priority ready op each round (standard
        # modulo list scheduling).
        ready_preds = {
            op_id: set(problem.graph.predecessors(op_id))
            for op_id in problem.graph.nodes
        }
        start: dict[int, int] = {}
        usage: dict[tuple[int, str], int] = {}
        pending = set(problem.graph.nodes)

        while pending:
            candidates = [
                op_id for op_id in pending if not ready_preds[op_id]
            ]
            if not candidates:
                raise SchedulingError("cyclic dependence in pipeline region")
            candidates.sort(key=lambda op_id: (-priority[op_id], op_id))
            op_id = candidates[0]
            earliest = 0
            for pred in problem.graph.predecessors(op_id):
                offset = problem.edge_offset(pred, op_id)
                earliest = max(earliest, start[pred] + offset)
            step = self._place(op_id, earliest, usage)
            if step is None:
                raise SchedulingError(
                    f"no modulo slot for op{op_id} at II="
                    f"{interval}"
                )
            start[op_id] = step
            pending.discard(op_id)
            for succ in problem.graph.successors(op_id):
                ready_preds[succ].discard(op_id)

        return PipelineSchedule(problem, start, interval,
                                scheduler=self.name)

    def _place(self, op_id: int, earliest: int,
               usage: dict[tuple[int, str], int]) -> int | None:
        problem = self.problem
        interval = self.initiation_interval
        cls = problem.op_class(op_id)
        if cls is None:
            return earliest
        limit = problem.constraints.limit(cls)
        busy = problem.occupancy(op_id)
        if limit is not None and busy > 0:
            # Trying II consecutive starts covers every residue class.
            for offset in range(interval):
                step = earliest + offset
                slots = [((step + k) % interval, cls) for k in range(busy)]
                if all(usage.get(slot, 0) < limit for slot in slots):
                    for slot in slots:
                        usage[slot] = usage.get(slot, 0) + 1
                    return step
            return None
        return earliest


def find_best_pipeline(problem: SchedulingProblem,
                       max_interval: int | None = None
                       ) -> PipelineSchedule:
    """Smallest feasible II under the problem's resource constraints."""
    lower = minimum_initiation_interval(problem)
    upper = max_interval or max(lower, problem.critical_path(), 1) + len(
        problem.ops
    )
    for interval in range(lower, upper + 1):
        try:
            schedule = ModuloScheduler(problem, interval).schedule()
            schedule.validate()
            return schedule
        except SchedulingError:
            continue
    raise SchedulingError(
        f"no feasible pipeline up to II={upper}"
    )


@dataclass
class PipelinePoint:
    """One row of the Sehwa cost/performance table."""

    fu_limits: dict[str, int]
    initiation_interval: int
    latency: int
    throughput: float

    def row(self) -> str:
        limits = ", ".join(
            f"{cls}={n}" for cls, n in sorted(self.fu_limits.items())
        )
        return (
            f"{limits:>24}  II={self.initiation_interval:3d}  "
            f"latency={self.latency:3d}  "
            f"throughput={self.throughput:6.3f}/cycle"
        )


def explore_pipeline(problem_factory, limit_sets) -> list[PipelinePoint]:
    """Sehwa's exploration: one pipeline per resource budget.

    Args:
        problem_factory: callable(ResourceConstraints) → problem.
        limit_sets: iterable of per-class limit dicts.
    """
    from ..scheduling.base import ResourceConstraints

    points = []
    for limits in limit_sets:
        problem = problem_factory(ResourceConstraints(dict(limits)))
        schedule = find_best_pipeline(problem)
        points.append(
            PipelinePoint(
                fu_limits=dict(limits),
                initiation_interval=schedule.initiation_interval,
                latency=schedule.length,
                throughput=schedule.throughput,
            )
        )
    return points
