"""Pipeline synthesis (Sehwa, paper §3.3/§4)."""

from .sehwa import (
    ModuloScheduler,
    PipelinePoint,
    PipelineSchedule,
    explore_pipeline,
    find_best_pipeline,
    minimum_initiation_interval,
)

__all__ = [
    "ModuloScheduler",
    "PipelinePoint",
    "PipelineSchedule",
    "explore_pipeline",
    "find_best_pipeline",
    "minimum_initiation_interval",
]
