"""Reaching definitions and def-use chains over the CDFG.

A *definition* is one block's ``VAR_WRITE`` of a variable (the IR emits
at most one per variable per block).  Two pseudo-definitions model the
procedure boundary: every input port is defined at ENTRY, and every
other variable carries an *uninitialized* definition at ENTRY — if that
pseudo-definition is the only one reaching a read, the read sees
garbage (the read-before-write lint).

Def-use chains link each upward-exposed ``VAR_READ`` to the set of
definitions that may reach it, and each ``VAR_WRITE`` to the reads it
may feed.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..ir.cdfg import CDFG
from ..ir.opcodes import OpKind
from ..ir.values import BasicBlock, Operation
from .cfg import ENTRY, ControlFlowGraph, build_cfg
from .dataflow import SetUnionAnalysis, solve

#: A definition: (variable name, defining block id).  Pseudo-definitions
#: use the synthetic ENTRY node as their block.
Definition = tuple[str, int]

#: Marker variable-name prefix distinguishing the two ENTRY pseudo-defs.
UNINIT = "<uninit>"
INPUT = "<input>"


def definition_is_uninitialized(definition: Definition) -> bool:
    return definition[1] == ENTRY and definition[0].startswith(UNINIT)


@dataclass
class ReachingResult:
    """Reaching definition sets per block id."""

    reach_in: dict[int, frozenset[Definition]]
    reach_out: dict[int, frozenset[Definition]]

    def reaching(self, block_id: int, var: str) -> set[Definition]:
        """Definitions of ``var`` reaching the entry of ``block_id``.

        ENTRY pseudo-definitions are reported with the marker prefix
        stripped off their variable name, e.g. ``("<uninit>", ...)``
        becomes a definition of the plain variable at ENTRY.
        """
        found = set()
        for name, block in self.reach_in.get(block_id, frozenset()):
            if name == var or name in (f"{UNINIT}{var}", f"{INPUT}{var}"):
                found.add((name, block))
        return found


class _Reaching(SetUnionAnalysis):
    direction = "forward"

    def __init__(self, cdfg: CDFG) -> None:
        inputs = {port.name for port in cdfg.inputs}
        boundary = set()
        for name in cdfg.variables:
            if name in inputs:
                boundary.add((f"{INPUT}{name}", ENTRY))
            else:
                boundary.add((f"{UNINIT}{name}", ENTRY))
        self._boundary = frozenset(boundary)

    def boundary(self) -> frozenset:
        return self._boundary

    def transfer(self, block: BasicBlock, reach_in: frozenset) -> frozenset:
        written = {
            op.attrs["var"]
            for op in block.ops
            if op.kind is OpKind.VAR_WRITE
        }
        if not written:
            return reach_in
        survivors = frozenset(
            (name, origin)
            for name, origin in reach_in
            if name not in written
            and name.removeprefix(UNINIT).removeprefix(INPUT) not in written
        )
        generated = frozenset((name, block.id) for name in written)
        return survivors | generated


def reaching_definitions(
    cdfg: CDFG, cfg: ControlFlowGraph | None = None
) -> ReachingResult:
    """Solve reaching definitions for every block of ``cdfg``."""
    cfg = cfg or build_cfg(cdfg)
    result = solve(cfg, _Reaching(cdfg))
    reach_in: dict[int, frozenset[Definition]] = {}
    reach_out: dict[int, frozenset[Definition]] = {}
    for block_id in cfg.blocks:
        reach_in[block_id] = result.entry_facts.get(block_id, frozenset())
        reach_out[block_id] = result.exit_facts.get(block_id, frozenset())
    return ReachingResult(reach_in, reach_out)


@dataclass
class DefUseChains:
    """Bidirectional def/use links derived from reaching definitions.

    ``uses_of`` maps a ``VAR_WRITE`` op id to the ``VAR_READ`` op ids it
    may feed; ``defs_of`` maps a ``VAR_READ`` op id to the ``VAR_WRITE``
    op ids that may reach it.  Reads reachable by an ENTRY pseudo-def
    additionally appear in ``boundary_reads`` (variable arrives from an
    input port or is read uninitialized).
    """

    defs_of: dict[int, frozenset[int]] = field(default_factory=dict)
    uses_of: dict[int, frozenset[int]] = field(default_factory=dict)
    boundary_reads: dict[int, str] = field(default_factory=dict)


def def_use_chains(cdfg: CDFG,
                   cfg: ControlFlowGraph | None = None) -> DefUseChains:
    """Link every upward-exposed read to its reaching writes."""
    cfg = cfg or build_cfg(cdfg)
    reaching = reaching_definitions(cdfg, cfg)

    write_op: dict[tuple[str, int], Operation] = {}
    for block in cfg.blocks.values():
        for op in block.ops:
            if op.kind is OpKind.VAR_WRITE:
                write_op[(op.attrs["var"], block.id)] = op

    chains = DefUseChains()
    uses: dict[int, set[int]] = {}
    for block in cfg.blocks.values():
        for op in block.ops:
            if op.kind is not OpKind.VAR_READ:
                continue
            var = op.attrs["var"]
            defs: set[int] = set()
            for name, origin in reaching.reaching(block.id, var):
                if origin == ENTRY:
                    marker = (
                        INPUT if name.startswith(INPUT) else UNINIT
                    )
                    chains.boundary_reads[op.id] = marker
                    continue
                writer = write_op.get((name, origin))
                if writer is not None:
                    defs.add(writer.id)
                    uses.setdefault(writer.id, set()).add(op.id)
            chains.defs_of[op.id] = frozenset(defs)
    chains.uses_of = {
        writer: frozenset(readers) for writer, readers in uses.items()
    }
    return chains
