"""Expression identity and available-expression analysis.

:func:`expression_key` is the canonical *block-local* identity of a
pure computation — the exact key CSE deduplicates on (commutative
operands sorted, attributes and result type included), factored here so
the transform and the analyses share one definition.

:func:`available_expressions` lifts identity across blocks: leaves are
variable names and constants instead of value ids, an expression is
*generated* when a block computes it and *killed* when any contributing
variable is rewritten, and the must-analysis (intersection join) yields
the expressions guaranteed to have been computed on every path.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..ir.cdfg import CDFG
from ..ir.opcodes import COMMUTATIVE, OpKind
from ..ir.values import BasicBlock, Operation, Value
from .cfg import ControlFlowGraph, build_cfg
from .dataflow import UNIVERSE, SetIntersectAnalysis, solve

#: Kinds participating in expression identity — pure computations whose
#: result depends only on operand values (no LOAD: memory may change).
EXPRESSION_KINDS = frozenset(
    {
        OpKind.CONST,
        OpKind.ADD, OpKind.SUB, OpKind.MUL, OpKind.DIV, OpKind.MOD,
        OpKind.INC, OpKind.DEC, OpKind.NEG, OpKind.SHL, OpKind.SHR,
        OpKind.AND, OpKind.OR, OpKind.XOR, OpKind.NOT,
        OpKind.EQ, OpKind.NE, OpKind.LT, OpKind.LE, OpKind.GT, OpKind.GE,
        OpKind.MUX,
    }
)


def expression_key(op: Operation) -> tuple | None:
    """Block-local identity of a pure op, or None for impure kinds.

    Two ops in the same block with equal keys compute the same value;
    this is exactly the CSE merge criterion.
    """
    if op.kind not in EXPRESSION_KINDS or op.result is None:
        return None
    operand_ids = [value.id for value in op.operands]
    if op.kind in COMMUTATIVE:
        operand_ids.sort()
    attr_key = tuple(sorted(op.attrs.items()))
    return (op.kind, tuple(operand_ids), attr_key, op.result.type)


def expression_tree(value: Value) -> tuple | None:
    """Cross-block identity of a value: a tree over variable/const
    leaves, or None when the value depends on something impure."""
    producer = value.producer
    if producer.kind is OpKind.VAR_READ:
        return ("var", producer.attrs["var"])
    if producer.kind is OpKind.CONST:
        return ("const", repr(producer.attrs["value"]), str(value.type))
    if producer.kind not in EXPRESSION_KINDS:
        return None
    leaves = []
    for operand in producer.operands:
        leaf = expression_tree(operand)
        if leaf is None:
            return None
        leaves.append(leaf)
    if producer.kind in COMMUTATIVE:
        leaves.sort()
    attr_key = tuple(sorted(producer.attrs.items()))
    return (str(producer.kind), tuple(leaves), attr_key, str(value.type))


def _tree_variables(tree: tuple) -> frozenset[str]:
    if tree[0] == "var":
        return frozenset({tree[1]})
    if tree[0] == "const":
        return frozenset()
    found: frozenset[str] = frozenset()
    for leaf in tree[1]:
        found |= _tree_variables(leaf)
    return found


@dataclass
class AvailableResult:
    """Available expression trees per block id (at block entry)."""

    available_in: dict[int, frozenset]
    available_out: dict[int, frozenset]


class _Available(SetIntersectAnalysis):
    direction = "forward"

    def boundary(self) -> frozenset:
        return frozenset()  # nothing is computed before the procedure

    def transfer(self, block: BasicBlock, fact):
        available = set() if fact is UNIVERSE else set(fact)
        written = {
            op.attrs["var"]
            for op in block.ops
            if op.kind is OpKind.VAR_WRITE
        }
        for op in block.ops:
            if op.result is None or op.kind in (OpKind.CONST,
                                                OpKind.VAR_READ):
                continue
            tree = expression_tree(op.result)
            if tree is not None and not (_tree_variables(tree) & written):
                # Survives the block: none of its variables change here
                # after it is computed (block-local renaming means all
                # writes take effect at the block end).
                available.add(tree)
        return frozenset(
            tree
            for tree in available
            if not (_tree_variables(tree) & written)
        )


def available_expressions(
    cdfg: CDFG, cfg: ControlFlowGraph | None = None
) -> AvailableResult:
    """Solve must-available expressions for every block of ``cdfg``."""
    cfg = cfg or build_cfg(cdfg)
    result = solve(cfg, _Available())
    available_in: dict[int, frozenset] = {}
    available_out: dict[int, frozenset] = {}
    for block_id in cfg.blocks:
        fact_in = result.entry_facts.get(block_id, frozenset())
        fact_out = result.exit_facts.get(block_id, frozenset())
        available_in[block_id] = (
            frozenset() if fact_in is UNIVERSE else fact_in
        )
        available_out[block_id] = (
            frozenset() if fact_out is UNIVERSE else fact_out
        )
    return AvailableResult(available_in, available_out)
