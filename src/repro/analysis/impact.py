"""Edit-impact analysis: content digests and CDFG differencing.

Incremental re-synthesis (:mod:`repro.core.incremental`) needs to know,
after a source edit, which basic blocks of the freshly compiled CDFG
are *content-identical* to blocks of a previously synthesized template
— those can replay their cached schedules — and which downstream
blocks the edit may reach through variable def-use chains.

Identity is structural, not positional: :func:`block_digest` hashes a
block's operation list with every value reference rewritten to a
process-independent coordinate (the producer's position within its
block, or ``(block name, position)`` for cross-block references), so
two compiles of the same text — in different processes, with different
id counters — digest equal.  Blocks are matched *by name*: the
frontend numbers blocks in emission order per CDFG, so unchanged
program prefixes keep their names across compiles.  A structural edit
(added/removed control flow) shifts names, which conservatively lands
blocks in ``dirty``/``added``/``removed`` — reuse degrades, soundness
does not: the hints derived from a delta are validated against the new
blocks before use and the whole pipeline still runs on the new CDFG.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field

from ..ir.cdfg import (
    CDFG,
    BlockRegion,
    IfRegion,
    LoopRegion,
    Region,
    SeqRegion,
)
from ..ir.opcodes import OpKind
from ..ir.values import BasicBlock
from .cfg import build_cfg
from .reaching import def_use_chains


def _op_positions(cdfg: CDFG) -> dict[int, tuple[str, int]]:
    """Op id → (owning block name, position in that block)."""
    positions: dict[int, tuple[str, int]] = {}
    for block in cdfg.blocks():
        for index, op in enumerate(block.ops):
            positions[op.id] = (block.name, index)
    return positions


def _block_content(block: BasicBlock,
                   positions: dict[int, tuple[str, int]]) -> tuple:
    parts = []
    for op in block.ops:
        operands = []
        for value in op.operands:
            producer = value.producer
            where = positions.get(producer.id)
            if producer.block is block:
                ref = ("local", where[1] if where else -1)
            else:
                ref = ("ext",) + (where or ("?", -1))
            operands.append(ref + (str(value.type),))
        attrs = tuple(sorted(
            (name, repr(attr)) for name, attr in op.attrs.items()
        ))
        result = None if op.result is None else str(op.result.type)
        parts.append((op.kind.value, attrs, tuple(operands), result))
    return tuple(parts)


def block_digest(block: BasicBlock,
                 positions: dict[int, tuple[str, int]] | None = None,
                 ) -> str:
    """Process-independent content digest of one basic block."""
    if positions is None:
        positions = _op_positions(block.cdfg)
    payload = repr(_block_content(block, positions))
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


def cdfg_digests(cdfg: CDFG) -> dict[str, str]:
    """Block name → content digest for every non-empty block."""
    positions = _op_positions(cdfg)
    return {
        block.name: block_digest(block, positions)
        for block in cdfg.blocks()
    }


def _region_shape(region: Region) -> tuple:
    if isinstance(region, BlockRegion):
        return ("block", region.block.name)
    if isinstance(region, SeqRegion):
        return ("seq",) + tuple(
            _region_shape(item) for item in region.items
        )
    if isinstance(region, IfRegion):
        return (
            "if",
            region.cond_block.name,
            _region_shape(region.then_region),
            None if region.else_region is None
            else _region_shape(region.else_region),
        )
    if isinstance(region, LoopRegion):
        return (
            "loop",
            region.test_block.name,
            region.exit_on_true,
            region.test_in_body,
            region.trip_count,
            _region_shape(region.body),
        )
    raise TypeError(f"unknown region {region!r}")


def structure_digest(cdfg: CDFG) -> str:
    """Digest of everything *around* the block contents: the region
    tree shape, ports, and variable/memory declarations."""
    payload = repr((
        _region_shape(cdfg.body),
        tuple((port.name, str(port.type)) for port in cdfg.inputs),
        tuple((port.name, str(port.type)) for port in cdfg.outputs),
        tuple(sorted(
            (name, str(type_)) for name, type_ in cdfg.variables.items()
        )),
        tuple(sorted(
            (name, str(type_)) for name, type_ in cdfg.memories.items()
        )),
    ))
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


@dataclass
class CDFGDelta:
    """What changed between two compiles of (nearly) the same program.

    All lists hold block *names*.  ``unchanged`` blocks exist in both
    CDFGs with equal content digests — safe to replay per-block
    results onto.  ``impacted`` is the def-use closure of the dirty
    blocks in the new CDFG: blocks whose variable reads may observe a
    value written in an edited block (the edited blocks themselves
    included).  Impact never *blocks* reuse — an unchanged block's
    replayed schedule is equally legal whatever data flows through it
    — but it tells callers (and the differential verifier) where
    changed values can propagate.
    """

    unchanged: list[str] = field(default_factory=list)
    dirty: list[str] = field(default_factory=list)
    added: list[str] = field(default_factory=list)
    removed: list[str] = field(default_factory=list)
    impacted: list[str] = field(default_factory=list)
    structure_changed: bool = False

    @property
    def is_block_local(self) -> bool:
        """True when the edit stayed inside existing blocks."""
        return (not self.structure_changed and not self.added
                and not self.removed)


def impacted_blocks(cdfg: CDFG, dirty_names: set[str]) -> list[str]:
    """Names of blocks the dirty blocks' writes may flow into."""
    if not dirty_names:
        return []
    cfg = build_cfg(cdfg)
    chains = def_use_chains(cdfg, cfg)
    owner: dict[int, str] = {}
    by_name: dict[str, BasicBlock] = {}
    for block in cdfg.blocks():
        by_name[block.name] = block
        for op in block.ops:
            owner[op.id] = block.name
    impacted = set(dirty_names) & set(by_name)
    frontier = list(impacted)
    while frontier:
        block = by_name[frontier.pop()]
        for op in block.ops:
            if op.kind is not OpKind.VAR_WRITE:
                continue
            for read_id in chains.uses_of.get(op.id, ()):
                reader = owner.get(read_id)
                if reader is not None and reader not in impacted:
                    impacted.add(reader)
                    frontier.append(reader)
    return sorted(impacted)


def diff_cdfgs(old: CDFG, new: CDFG) -> CDFGDelta:
    """Compare two compiled CDFGs block by block.

    ``old`` is typically a previously synthesized (and therefore
    already optimized) template; ``new`` the fresh compile of the
    edited source, optimized with the same pipeline so that unchanged
    program text yields byte-identical block content.
    """
    old_digests = cdfg_digests(old)
    new_digests = cdfg_digests(new)
    delta = CDFGDelta(
        structure_changed=structure_digest(old) != structure_digest(new)
    )
    for name, digest in new_digests.items():
        if name not in old_digests:
            delta.added.append(name)
        elif old_digests[name] == digest:
            delta.unchanged.append(name)
        else:
            delta.dirty.append(name)
    delta.removed = [
        name for name in old_digests if name not in new_digests
    ]
    delta.impacted = impacted_blocks(
        new, set(delta.dirty) | set(delta.added)
    )
    return delta
