"""Variable liveness over the CDFG.

The IR's arc-per-value form makes the block-local transfer trivial:
``VAR_READ`` ops are exactly the upward-exposed uses and ``VAR_WRITE``
ops are exactly the downward-exposed definitions (the frontend renames
everything in between), so ``live_in = reads ∪ (live_out − writes)``.

Consumers:

* the dead-store lint (a ``VAR_WRITE`` whose variable is not live out
  of its block);
* register lifetime analysis (:mod:`repro.allocation.lifetimes`): a
  value written to a variable only needs to survive the block when the
  variable is live out of it.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..ir.cdfg import CDFG
from ..ir.opcodes import OpKind
from ..ir.values import BasicBlock
from .cfg import ControlFlowGraph, build_cfg
from .dataflow import SetUnionAnalysis, solve


def block_uses_defs(block: BasicBlock) -> tuple[frozenset[str],
                                                frozenset[str]]:
    """(upward-exposed reads, written variables) of one block."""
    uses = frozenset(
        op.attrs["var"] for op in block.ops if op.kind is OpKind.VAR_READ
    )
    defs = frozenset(
        op.attrs["var"] for op in block.ops if op.kind is OpKind.VAR_WRITE
    )
    return uses, defs


@dataclass
class LivenessResult:
    """Live variable sets per block id."""

    live_in: dict[int, frozenset[str]]
    live_out: dict[int, frozenset[str]]


class _Liveness(SetUnionAnalysis):
    direction = "backward"

    def __init__(self, outputs: frozenset[str]) -> None:
        self._outputs = outputs

    def boundary(self) -> frozenset:
        return self._outputs

    def transfer(self, block: BasicBlock, live_out: frozenset) -> frozenset:
        uses, defs = block_uses_defs(block)
        return uses | (live_out - defs)


def variable_liveness(cdfg: CDFG,
                      cfg: ControlFlowGraph | None = None) -> LivenessResult:
    """Solve liveness for every block of ``cdfg``.

    Output ports are live at procedure exit.
    """
    cfg = cfg or build_cfg(cdfg)
    outputs = frozenset(port.name for port in cdfg.outputs)
    result = solve(cfg, _Liveness(outputs))
    live_in: dict[int, frozenset[str]] = {}
    live_out: dict[int, frozenset[str]] = {}
    for block_id in cfg.blocks:
        # Backward analysis: the flow-entry fact of a node is its
        # control-exit fact.
        live_out[block_id] = result.entry_facts.get(block_id, frozenset())
        live_in[block_id] = result.exit_facts.get(block_id, frozenset())
    return LivenessResult(live_in, live_out)


def live_out_variables(schedule) -> frozenset[str] | None:
    """Variables live out of the block(s) a schedule covers.

    Returns None when the scheduled ops belong to blocks outside their
    CDFG's region tree (hand-built test fixtures), in which case the
    caller must assume every written variable is live — the
    conservative pre-analysis behaviour.
    """
    blocks = {op.block for op in schedule.problem.ops}
    if not blocks:
        return None
    cdfg = next(iter(blocks)).cdfg
    attached = {block.id for block in cdfg.blocks()}
    if any(block.id not in attached for block in blocks):
        return None
    liveness = variable_liveness(cdfg)
    live: frozenset[str] = frozenset()
    for block in blocks:
        live |= liveness.live_out[block.id]
    return live
