"""Dataflow analyses and the whole-pipeline linter (``repro.analysis``).

The core of the package is a generic worklist solver
(:mod:`~repro.analysis.dataflow`) over the flattened control-flow graph
(:mod:`~repro.analysis.cfg`), with the classic analyses built on top:

* :func:`variable_liveness` / :func:`live_out_variables` — backward
  may-analysis; consumed by register lifetime computation and the
  dead-store lint;
* :func:`reaching_definitions` / :func:`def_use_chains` — forward
  may-analysis; consumed by the read-before-write lint;
* :func:`available_expressions` — forward must-analysis over
  variable-leaf expression trees;
* :func:`constant_lattice` / :func:`evaluated_conditions` — the
  three-level constant lattice, evaluated with the simulator's own
  semantics;
* :func:`range_analysis` — the sound interval lattice (widening at
  loop heads, branch-condition refinement, constant seeding); consumed
  by the bitwidth-narrowing transform and the ``range.*`` lints;
* :mod:`~repro.analysis.usage` — the flow-insensitive summaries the
  transforms share (:func:`variable_usage`,
  :func:`transitively_dead_ops`).

:mod:`repro.analysis.lint` (imported explicitly, **not** re-exported
here: it depends on the downstream pipeline packages, which themselves
import these analyses) drives every rule family over a design and
reports :class:`Diagnostic` records through a :class:`DiagnosticSink`.
"""

from .cfg import ENTRY, EXIT, ControlFlowGraph, build_cfg
from .constants import (
    BOTTOM,
    TOP,
    ConstantsResult,
    constant_lattice,
    constant_of,
    evaluated_conditions,
)
from .dataflow import (
    UNIVERSE,
    DataflowAnalysis,
    DataflowResult,
    SetIntersectAnalysis,
    SetUnionAnalysis,
    solve,
)
from .diagnostics import SEVERITIES, Diagnostic, DiagnosticSink
from .expressions import (
    EXPRESSION_KINDS,
    AvailableResult,
    available_expressions,
    expression_key,
    expression_tree,
)
from .impact import (
    CDFGDelta,
    block_digest,
    cdfg_digests,
    diff_cdfgs,
    impacted_blocks,
    structure_digest,
)
from .liveness import (
    LivenessResult,
    block_uses_defs,
    live_out_variables,
    variable_liveness,
)
from .ranges import (
    Interval,
    RangesResult,
    coerce_interval,
    fits_type,
    op_interval,
    range_analysis,
    refine_interval,
    type_interval,
)
from .reaching import (
    DefUseChains,
    ReachingResult,
    def_use_chains,
    definition_is_uninitialized,
    reaching_definitions,
)
from .usage import (
    SIDE_EFFECT_KINDS,
    VariableUsage,
    region_condition_values,
    transitively_dead_ops,
    variable_usage,
)

__all__ = [
    "ENTRY",
    "EXIT",
    "ControlFlowGraph",
    "build_cfg",
    "DataflowAnalysis",
    "DataflowResult",
    "SetUnionAnalysis",
    "SetIntersectAnalysis",
    "UNIVERSE",
    "solve",
    "LivenessResult",
    "block_uses_defs",
    "variable_liveness",
    "live_out_variables",
    "ReachingResult",
    "DefUseChains",
    "reaching_definitions",
    "def_use_chains",
    "definition_is_uninitialized",
    "AvailableResult",
    "EXPRESSION_KINDS",
    "available_expressions",
    "expression_key",
    "expression_tree",
    "CDFGDelta",
    "block_digest",
    "cdfg_digests",
    "diff_cdfgs",
    "impacted_blocks",
    "structure_digest",
    "ConstantsResult",
    "TOP",
    "BOTTOM",
    "constant_lattice",
    "constant_of",
    "evaluated_conditions",
    "Interval",
    "RangesResult",
    "range_analysis",
    "op_interval",
    "refine_interval",
    "coerce_interval",
    "type_interval",
    "fits_type",
    "VariableUsage",
    "SIDE_EFFECT_KINDS",
    "variable_usage",
    "region_condition_values",
    "transitively_dead_ops",
    "Diagnostic",
    "DiagnosticSink",
    "SEVERITIES",
]
