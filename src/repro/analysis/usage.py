"""Flow-insensitive usage facts shared by transforms and lints.

These are the whole-procedure summaries the classic transforms consume:

* :func:`variable_usage` — which variables are read / written anywhere
  (dead-store elimination keeps writes to read-or-output variables);
* :func:`region_condition_values` — value ids referenced as region
  conditions (live even when no op uses them);
* :func:`transitively_dead_ops` — the fixpoint set of pure operations
  whose results feed nothing, computed without mutating the IR (dead
  operation elimination removes exactly this set).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..ir.cdfg import CDFG, IfRegion, LoopRegion
from ..ir.opcodes import OpKind

#: Kinds that must never be treated as dead operations: they have
#: side effects (or anchor scheduling) rather than producing a value.
SIDE_EFFECT_KINDS = frozenset(
    {OpKind.VAR_WRITE, OpKind.STORE, OpKind.NOP}
)


@dataclass(frozen=True)
class VariableUsage:
    """Whole-procedure read/write summary."""

    read: frozenset[str]
    written: frozenset[str]
    outputs: frozenset[str]

    @property
    def live(self) -> frozenset[str]:
        """Variables whose writes must be kept: outputs plus anything
        read anywhere (the conservative dead-store criterion)."""
        return self.read | self.outputs


def variable_usage(cdfg: CDFG) -> VariableUsage:
    """Collect the flow-insensitive variable summary of ``cdfg``."""
    read = set()
    written = set()
    for op in cdfg.operations():
        if op.kind is OpKind.VAR_READ:
            read.add(op.attrs["var"])
        elif op.kind is OpKind.VAR_WRITE:
            written.add(op.attrs["var"])
    outputs = frozenset(port.name for port in cdfg.outputs)
    return VariableUsage(frozenset(read), frozenset(written), outputs)


def region_condition_values(cdfg: CDFG) -> set[int]:
    """Value ids used as region conditions (live even if no op uses
    them)."""
    conds: set[int] = set()
    for region in cdfg.body.walk():
        if isinstance(region, (IfRegion, LoopRegion)):
            conds.add(region.cond.id)
    return conds


def transitively_dead_ops(cdfg: CDFG,
                          extra_live: set[int] | None = None) -> set[int]:
    """Op ids of pure operations whose results transitively feed
    nothing.

    An op is dead when its result's every use is itself a dead op; the
    set is the fixpoint of that rule.  ``extra_live`` value ids (region
    conditions by default) pin their producers live.
    """
    live_values = (
        region_condition_values(cdfg) if extra_live is None else extra_live
    )
    dead: set[int] = set()
    changed = True
    while changed:
        changed = False
        for op in cdfg.operations():
            if op.id in dead or op.kind in SIDE_EFFECT_KINDS:
                continue
            if op.result is None:
                continue
            if op.result.id in live_values:
                continue
            if all(user.id in dead for user, _ in op.result.uses):
                dead.add(op.id)
                changed = True
    return dead
