"""Structured diagnostics emitted by the linter and the frontend.

A :class:`Diagnostic` is one finding: a stable rule id
(``src.dead-store``, ``net.comb-loop``, ...), a severity, a
human-readable message, and — when the finding maps back to the
source text — a :class:`~repro.errors.SourceLocation`.

:class:`DiagnosticSink` collects them.  The frontend accepts a sink so
recoverable findings (implicit truncation, for instance) become
warnings instead of silently lost detail, and the lint driver feeds
every rule family into one sink per run.  Each emitted diagnostic also
increments the ``lint.diagnostics`` counter in the observability
registry, labelled by rule and severity.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Iterator

from ..errors import SourceLocation
from ..obs.metrics import metrics

#: Severity names, mildest first.  Exit codes and sort order derive
#: from the index.
SEVERITIES = ("info", "warning", "error")


def severity_rank(severity: str) -> int:
    return SEVERITIES.index(severity)


@dataclass(frozen=True)
class Diagnostic:
    """One linter finding."""

    rule: str
    severity: str
    message: str
    location: SourceLocation | None = None
    #: Pipeline stage the finding belongs to ("source", "schedule",
    #: "allocation", "netlist", "controller").
    where: str = "source"
    #: Machine-readable subject (variable name, net name, state id...).
    subject: str | None = None

    def __post_init__(self) -> None:
        if self.severity not in SEVERITIES:
            raise ValueError(f"unknown severity: {self.severity!r}")

    def render(self) -> str:
        place = f"{self.location}: " if self.location is not None else ""
        return f"{place}{self.severity}: {self.message} [{self.rule}]"

    def to_dict(self) -> dict[str, Any]:
        return {
            "rule": self.rule,
            "severity": self.severity,
            "message": self.message,
            "line": self.location.line if self.location else None,
            "column": self.location.column if self.location else None,
            "where": self.where,
            "subject": self.subject,
        }

    @property
    def sort_key(self) -> tuple:
        return (
            self.location.line if self.location else 1 << 30,
            self.location.column if self.location else 1 << 30,
            -severity_rank(self.severity),
            self.rule,
            self.message,
        )


class DiagnosticSink:
    """Ordered collector of diagnostics.

    Exact duplicates (same rule, severity, message, location, stage and
    subject) are dropped: several rule families may rediscover the same
    finding from different pipeline stages, and a repeated record would
    both clutter the report and double-count the metric.
    """

    def __init__(self) -> None:
        self._diagnostics: list[Diagnostic] = []
        self._seen: set[Diagnostic] = set()

    def emit(self, diagnostic: Diagnostic) -> None:
        if diagnostic in self._seen:
            return
        self._seen.add(diagnostic)
        self._diagnostics.append(diagnostic)
        metrics().counter(
            "lint.diagnostics",
            rule=diagnostic.rule,
            severity=diagnostic.severity,
        ).inc()

    def warning(self, rule: str, message: str, **kwargs: Any) -> None:
        self.emit(Diagnostic(rule, "warning", message, **kwargs))

    def error(self, rule: str, message: str, **kwargs: Any) -> None:
        self.emit(Diagnostic(rule, "error", message, **kwargs))

    def __iter__(self) -> Iterator[Diagnostic]:
        return iter(self._diagnostics)

    def __len__(self) -> int:
        return len(self._diagnostics)

    def __bool__(self) -> bool:
        return bool(self._diagnostics)

    @property
    def diagnostics(self) -> list[Diagnostic]:
        return list(self._diagnostics)

    def count(self, severity: str) -> int:
        return sum(
            1 for diag in self._diagnostics if diag.severity == severity
        )

    @property
    def worst(self) -> str | None:
        if not self._diagnostics:
            return None
        return max(
            (diag.severity for diag in self._diagnostics),
            key=severity_rank,
        )
